//! Job-shop scheduling with programmable conflict resolution — the
//! motivating example from the PARULEL design: machines pick jobs, and
//! the *policy* (shortest job first) lives in a meta-rule, not in the
//! interpreter's conflict-resolution strategy.
//!
//! The example also runs the same program under the OPS5 baselines (LEX
//! and MEA) to show that (a) they need one cycle per assignment and (b)
//! their hard-wired policies pick *different* jobs than the program wants.
//!
//! ```sh
//! cargo run --example scheduling
//! ```

use parulel::prelude::*;

const SOURCE: &str = "
(literalize job id len machine)
(literalize machine id free)

(p schedule
  (job ^id <j> ^len <l> ^machine nil)
  (machine ^id <m> ^free yes)
 -->
  (modify 1 ^machine <m>)
  (modify 2 ^free no)
  (write job <j> len <l> assigned machine <m>))

(p finish
  (job ^id <j> ^len <l> ^machine { <> nil <m> })
  (machine ^id <m> ^free no)
 -->
  (remove 1)
  (modify 2 ^free yes)
  (write job <j> done on machine <m>))

; policy: shortest job first (ties: lowest job id)
(mp shortest-job-first
  (inst schedule (job ^id <j1> ^len <l1>) (machine ^id <m>))
  (inst schedule (job ^id <j2> ^len <l2>) (machine ^id <m>))
  (test (> <l1> <l2>))
 -->
  (redact 1))
(mp sjf-tie-break
  (inst schedule (job ^id <j1> ^len <l1>) (machine ^id <m>))
  (inst schedule (job ^id <j2> ^len <l2>) (machine ^id <m>))
  (test (= <l1> <l2>))
  (test (> <j1> <j2>))
 -->
  (redact 1))
; a job may also be wanted by two machines at once
(mp one-machine-per-job
  (inst schedule (job ^id <j>) (machine ^id <m1>))
  (inst schedule (job ^id <j>) (machine ^id <m2>))
  (test (> <m1> <m2>))
 -->
  (redact 1))
";

fn build_wm(program: &Program) -> WorkingMemory {
    let i = &program.interner;
    let mut wm = WorkingMemory::new(&program.classes);
    let job = program.classes.id_of(i.intern("job")).unwrap();
    let machine = program.classes.id_of(i.intern("machine")).unwrap();
    let yes = i.intern("yes");
    let lens = [7, 3, 9, 3, 5, 1, 8, 2];
    for (id, len) in lens.iter().enumerate() {
        wm.insert(
            job,
            vec![Value::Int(id as i64 + 1), Value::Int(*len), Value::NIL],
        );
    }
    for m in 1..=2 {
        wm.insert(machine, vec![Value::Int(m), Value::Sym(yes)]);
    }
    wm
}

fn main() {
    let program = parulel::lang::compile(SOURCE).expect("program compiles");

    println!("════ PARULEL: set-oriented firing, SJF policy via meta-rules ════");
    let mut engine = ParallelEngine::new(&program, build_wm(&program), EngineOptions::default());
    let out = engine.run().expect("run succeeds");
    for line in engine.log() {
        println!("  {line}");
    }
    println!(
        "  => {} firings in {} cycles ({} redactions)\n",
        out.firings,
        out.cycles,
        engine.stats().redacted_meta
    );

    for (name, strategy) in [("LEX", Strategy::Lex), ("MEA", Strategy::Mea)] {
        println!("════ OPS5 baseline ({name}): one firing per cycle, hard-wired policy ════");
        let mut serial = SerialEngine::new(
            &program,
            build_wm(&program),
            strategy,
            EngineOptions::default(),
        );
        let out = serial.run().expect("run succeeds");
        for line in serial.log().iter().take(4) {
            println!("  {line}");
        }
        println!(
            "  … => {} firings in {} cycles (meta-rules ignored)\n",
            out.firings, out.cycles
        );
    }
}
