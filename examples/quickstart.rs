//! Quickstart: compile a PARULEL program from source, run it, inspect
//! working memory and run statistics.
//!
//! Three support agents each own a region; tickets arrive per region.
//! Every cycle, *every* agent closes the lowest-numbered open ticket in
//! its region — simultaneously. The one-ticket-per-agent-per-cycle policy
//! is a meta-rule, not interpreter magic.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use parulel::prelude::*;

const SOURCE: &str = "
(literalize ticket id region status)
(literalize agent id region)

(p close-ticket
  (agent ^id <a> ^region <r>)
  (ticket ^id <t> ^region <r> ^status open)
 -->
  (modify 2 ^status closed)
  (write agent <a> closed ticket <t>))

; Policy, in the program: an agent handles one ticket per cycle —
; the lowest-numbered one.
(mp fifo-per-agent
  (inst close-ticket (agent ^id <a>) (ticket ^id <t1>))
  (inst close-ticket (agent ^id <a>) (ticket ^id <t2>))
  (test (> <t1> <t2>))
 -->
  (redact 1))
";

fn main() {
    let program = parulel::lang::compile(SOURCE).expect("program compiles");
    let interner = &program.interner;

    let mut wm = WorkingMemory::new(&program.classes);
    let ticket = program.classes.id_of(interner.intern("ticket")).unwrap();
    let agent = program.classes.id_of(interner.intern("agent")).unwrap();
    let open = interner.intern("open");
    // 6 tickets across 3 regions (2 each), 1 agent per region.
    for t in 1..=6i64 {
        let region = (t - 1) % 3;
        wm.insert(
            ticket,
            vec![Value::Int(t), Value::Int(region), Value::Sym(open)],
        );
    }
    for a in 0..3i64 {
        wm.insert(agent, vec![Value::Int(a + 1), Value::Int(a)]);
    }

    // `ParallelEngine::new(..)` is shorthand for the fire-all policy on
    // the unified cycle kernel; the OPS5 baseline is the same kernel
    // under `FiringPolicy::SelectOne(Strategy::Lex)`.
    let mut engine = Engine::with_policy(
        &program,
        wm,
        FiringPolicy::fire_all(),
        EngineOptions::default(),
    );
    let outcome = engine.run().expect("run succeeds");

    println!("── run log ──");
    for line in engine.log() {
        println!("  {line}");
    }
    println!("── outcome ──");
    println!("  cycles:        {}", outcome.cycles);
    println!("  firings:       {}", outcome.firings);
    println!("  redacted:      {}", engine.stats().redacted_meta);
    println!("  firings/cycle: {:.1}", engine.stats().firings_per_cycle());
    // 3 agents × one ticket per cycle, 2 tickets per region:
    // all 6 close in 2 cycles — set-oriented firing in one picture.
    assert_eq!(outcome.cycles, 2);
    assert_eq!(outcome.firings, 6);
}
