//! A miniature exchange: cross orders on many symbols in parallel, with
//! double-fill prevention written as meta-rules.
//!
//! Demonstrates driving the engine incrementally from outside: new orders
//! are injected between cycles (a live feed), which is how an embedding
//! application would use the library.
//!
//! ```sh
//! cargo run --example exchange
//! ```

use parulel::core::Delta;
use parulel::prelude::*;
use parulel::workloads::{Market, Scenario};

fn main() {
    let scenario = Market::new(30, 6, 99);
    let program = scenario.program().clone();
    let interner = &program.interner;
    let trade = program.classes.id_of(interner.intern("trade")).unwrap();
    let buy = program.classes.id_of(interner.intern("buy")).unwrap();
    let sell = program.classes.id_of(interner.intern("sell")).unwrap();

    let mut engine = ParallelEngine::new(&program, scenario.initial_wm(), EngineOptions::default());

    // Phase 1: clear the opening book.
    let out = engine.run().expect("run succeeds");
    println!(
        "opening auction: {} trades in {} cycles ({} symbols in parallel)",
        out.firings,
        out.cycles,
        scenario.symbol_count()
    );

    // Phase 2: inject a late crossing pair per symbol — straight into the
    // running engine's working memory and incremental matcher — and keep
    // matching.
    let mut delta = Delta::new();
    for sym in 0..6 {
        delta.adds.push((
            buy,
            vec![Value::Int(5000 + sym), Value::Int(sym), Value::Int(90)].into(),
        ));
        delta.adds.push((
            sell,
            vec![Value::Int(6000 + sym), Value::Int(sym), Value::Int(10)].into(),
        ));
    }
    let (_, added) = engine.inject(&delta);
    assert_eq!(added.len(), 12);
    let out = engine.run().expect("run succeeds");
    println!(
        "late flow: {} more trades in {} cycles",
        out.firings, out.cycles
    );

    let trades = engine.wm().iter_class(trade).count();
    println!("total trades on the tape: {trades}");
    scenario
        .validate(engine.wm())
        .expect_err("late orders aren't in the scenario's reference — expected mismatch");
    // The invariants that matter for the live book:
    let resting_crossable = {
        let mut best: std::collections::HashMap<i64, (i64, i64)> = Default::default();
        for w in engine.wm().iter_class(buy) {
            if let (Value::Int(s), Value::Int(p)) = (w.field(1), w.field(2)) {
                let e = best.entry(s).or_insert((i64::MIN, i64::MAX));
                e.0 = e.0.max(p);
            }
        }
        for w in engine.wm().iter_class(sell) {
            if let (Value::Int(s), Value::Int(p)) = (w.field(1), w.field(2)) {
                let e = best.entry(s).or_insert((i64::MIN, i64::MAX));
                e.1 = e.1.min(p);
            }
        }
        best.values().filter(|(b, s)| b >= s).count()
    };
    assert_eq!(resting_crossable, 0, "book fully crossed out");
    println!("book is clear: no resting buy crosses a resting sell.");
}
