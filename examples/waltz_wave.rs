//! Watching a Waltz constraint-propagation wave, cycle by cycle.
//!
//! Uses the `waltz` workload (arc-consistency label pruning on a ring of
//! junctions) and single-steps the engine, printing how many candidate
//! labelings survive after each parallel pruning cycle — deletion waves
//! radiating from the over-constrained junction are the signature
//! behaviour of the original Waltz benchmark.
//!
//! ```sh
//! cargo run --example waltz_wave
//! ```

use parulel::prelude::*;
use parulel::workloads::{Scenario, Waltz};

fn candidates_left(engine: &ParallelEngine, scenario: &Waltz) -> usize {
    let program = scenario.program();
    let jslot = program
        .classes
        .id_of(program.interner.intern("jslot"))
        .unwrap();
    // two jslot facts per surviving candidate
    engine.wm().iter_class(jslot).count() / 2
}

fn main() {
    let scenario = Waltz::new(16, 5, 21);
    println!(
        "ring of 16 junctions, {} initial candidate labelings, {} survive arc consistency\n",
        scenario.initial_candidates(),
        scenario.expected_candidates()
    );

    let mut engine = ParallelEngine::new(
        scenario.program(),
        scenario.initial_wm(),
        EngineOptions::default(),
    );
    println!("cycle  candidates  pruned-this-cycle");
    let mut prev = candidates_left(&engine, &scenario);
    println!("{:>5}  {prev:>10}  {:>17}", 0, "-");
    let mut cycle = 0;
    while engine.step().expect("step succeeds") {
        cycle += 1;
        let now = candidates_left(&engine, &scenario);
        println!("{cycle:>5}  {now:>10}  {:>17}", prev - now);
        prev = now;
    }
    scenario
        .validate(engine.wm())
        .expect("final state matches the reference AC fixpoint");
    println!("\nfixpoint reached in {cycle} cycles; validated against reference AC.");
}
