//! String interning.
//!
//! Every identifier in a PARULEL program — class names, attribute names,
//! rule names, and symbolic constants in working memory — is interned once
//! into a [`Symbol`] (a `u32` newtype). All equality tests during matching
//! are then integer compares, and WMEs store 8-byte [`Value`]s instead of
//! strings.
//!
//! [`Interner`] is cheaply clonable (an `Arc` around a
//! `parking_lot::RwLock`), so the program, the working memory, and every
//! parallel match worker can share one table. Interning is rare at runtime
//! (only `write` actions and trace formatting resolve strings), so the lock
//! is uncontended in the hot path.
//!
//! [`Value`]: crate::value::Value

use crate::hash::FxHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// An interned string handle. Two symbols from the same [`Interner`] are
/// equal iff their source strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The reserved symbol for `nil`, pre-interned at index 0 in every
    /// [`Interner`]. `nil` is OPS5's "no value" placeholder.
    pub const NIL: Symbol = Symbol(0);

    /// Raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym#{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    strings: Vec<Arc<str>>,
    ids: FxHashMap<Arc<str>, Symbol>,
}

/// A thread-safe string interner.
///
/// ```
/// use parulel_core::symbol::{Interner, Symbol};
/// let interner = Interner::new();
/// let a = interner.intern("job");
/// let b = interner.intern("job");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).as_ref(), "job");
/// assert_eq!(interner.intern("nil"), Symbol::NIL);
/// ```
#[derive(Clone)]
pub struct Interner {
    inner: Arc<RwLock<Inner>>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Creates an interner with `nil` pre-interned as [`Symbol::NIL`].
    pub fn new() -> Self {
        let this = Interner {
            inner: Arc::new(RwLock::new(Inner::default())),
        };
        let nil = this.intern("nil");
        debug_assert_eq!(nil, Symbol::NIL);
        this
    }

    /// Interns `s`, returning its stable [`Symbol`].
    pub fn intern(&self, s: &str) -> Symbol {
        // Fast path: read lock only.
        if let Some(&sym) = self.inner.read().ids.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.ids.get(s) {
            return sym; // raced with another writer
        }
        let sym =
            Symbol(u32::try_from(inner.strings.len()).expect("interner overflow: > 2^32 symbols"));
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(arc.clone());
        inner.ids.insert(arc, sym);
        sym
    }

    /// Looks up a symbol without interning. Returns `None` if `s` has never
    /// been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().ids.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        self.inner.read().strings[sym.index()].clone()
    }

    /// True when `self` and `other` are clones of one interner (shared
    /// underlying table), so symbol ids are interchangeable between them.
    /// Hot reload uses this to insist the replacement program was compiled
    /// into the running program's symbol space.
    pub fn shares_table_with(&self, other: &Interner) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of distinct symbols interned so far (≥ 1 because of `nil`).
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Always false: `nil` is pre-interned.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_symbol_zero() {
        let i = Interner::new();
        assert_eq!(i.intern("nil"), Symbol::NIL);
        assert_eq!(i.resolve(Symbol::NIL).as_ref(), "nil");
    }

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.intern("beta"), b);
        assert_eq!(i.len(), 3); // nil + 2
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("ghost"), None);
        let s = i.intern("ghost");
        assert_eq!(i.get("ghost"), Some(s));
    }

    #[test]
    fn resolve_roundtrip() {
        let i = Interner::new();
        let words = ["job", "machine", "status", "^weird-chars!?", ""];
        let syms: Vec<_> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(i.resolve(*s).as_ref(), *w);
        }
    }

    #[test]
    fn clones_share_table() {
        let i = Interner::new();
        let j = i.clone();
        let a = i.intern("shared");
        assert_eq!(j.get("shared"), Some(a));
        let b = j.intern("other");
        assert_eq!(i.get("other"), Some(b));
    }

    #[test]
    fn concurrent_intern_same_symbol() {
        let i = Interner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = i.clone();
                std::thread::spawn(move || i.intern("contended"))
            })
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
