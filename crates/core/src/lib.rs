//! # parulel-core
//!
//! Core data model for the PARULEL reproduction.
//!
//! PARULEL ("The PARULEL Parallel Rule Language", Stolfo et al., ICPP 1991)
//! is an OPS5-class forward-chaining production-rule language whose novel
//! execution semantics fire *all* instantiations surviving programmable
//! meta-rule *redaction* in parallel each cycle, instead of selecting a
//! single instantiation via a hard-wired conflict-resolution strategy.
//!
//! This crate holds everything the rest of the system shares:
//!
//! * [`symbol`] — a thread-safe string interner producing compact
//!   [`Symbol`](symbol::Symbol) handles.
//! * [`value`] — the dynamic [`Value`](value::Value) type stored in working
//!   memory fields (symbols, integers, floats).
//! * [`classes`] — WME class declarations (`literalize` in the surface
//!   language) and the attribute → field-slot mapping.
//! * [`wme`] / [`wm`] — working-memory elements, the indexed working memory,
//!   and [`Delta`](wm::Delta)s describing atomic batches of changes.
//! * [`expr`] — arithmetic/predicate expressions evaluated against a rule's
//!   variable bindings (used by `test` CEs and RHS actions).
//! * [`ir`] — the compiled intermediate representation of rules, meta-rules
//!   and whole programs. The surface parser in `parulel-lang` targets this.
//! * [`inst`] — rule instantiations, conflict sets, and refraction keys.
//! * [`hash`] — a deterministic FxHash-style hasher used for every map/set
//!   in the hot path (HashDoS resistance is irrelevant here; speed and
//!   cross-run determinism are what matter).

#![warn(missing_docs)]

pub mod classes;
pub mod expr;
pub mod hash;
pub mod inst;
pub mod ir;
pub mod symbol;
pub mod value;
pub mod wm;
pub mod wme;

pub use classes::{ClassDecl, ClassId, ClassRegistry};
pub use expr::{BinOp, Expr, PredOp, TestExpr};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use inst::{ConflictSet, CsEvent, InstKey, Instantiation};
pub use ir::{
    Action, CePattern, ConditionElement, FieldCheck, FieldTest, MetaAction, MetaCe, MetaRule,
    MetaRuleId, Polarity, Program, Rule, RuleId, VarId,
};
pub use symbol::{Interner, Symbol};
pub use value::Value;
pub use wm::{Delta, WmRestoreError, WorkingMemory};
pub use wme::{Wme, WmeId};
