//! Working-memory elements.

use crate::classes::ClassId;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Identity (and creation timestamp) of a WME. Ids increase monotonically
/// as elements are asserted, so comparing ids compares recency — which is
/// what the LEX/MEA baseline strategies order on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WmeId(pub u64);

impl WmeId {
    /// Raw timestamp.
    #[inline]
    pub fn time(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WmeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A working-memory element: a typed tuple.
///
/// Fields are stored in an `Arc<[Value]>` so that instantiations, RETE
/// tokens, and parallel fire workers can share a WME without copying its
/// payload; cloning a `Wme` is two word copies plus a refcount bump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Wme {
    /// Identity / creation timestamp.
    pub id: WmeId,
    /// Class (shape) of this element.
    pub class: ClassId,
    /// Field values, in the class's declared attribute order.
    pub fields: Arc<[Value]>,
}

impl Wme {
    /// Builds a WME. The field count must match the class arity; the
    /// working memory enforces this on insert.
    pub fn new(id: WmeId, class: ClassId, fields: impl Into<Arc<[Value]>>) -> Self {
        Wme {
            id,
            class,
            fields: fields.into(),
        }
    }

    /// Field at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range for this WME's class.
    #[inline]
    pub fn field(&self, slot: usize) -> Value {
        self.fields[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wme_ids_order_by_recency() {
        assert!(WmeId(1) < WmeId(2));
        assert_eq!(WmeId(7).time(), 7);
        assert_eq!(WmeId(3).to_string(), "w3");
    }

    #[test]
    fn cloning_shares_fields() {
        let w = Wme::new(WmeId(1), ClassId(0), vec![Value::Int(1), Value::Int(2)]);
        let w2 = w.clone();
        assert!(Arc::ptr_eq(&w.fields, &w2.fields));
        assert_eq!(w2.field(1), Value::Int(2));
    }
}
