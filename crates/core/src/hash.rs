//! A deterministic, fast, non-cryptographic hasher (the FxHash algorithm
//! used by rustc), plus map/set type aliases built on it.
//!
//! The match network and conflict set are hash-table heavy; SipHash (the
//! std default) costs measurably more per lookup than Fx for the short
//! integer keys that dominate here. We also want *cross-run determinism*
//! (std's RandomState seeds differ per process), so that engine traces and
//! bench tables are reproducible. HashDoS resistance is irrelevant for a
//! rule engine evaluating trusted programs.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative constant from the FxHash algorithm
/// (derived from the golden ratio, as in rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher. Hashes machine words by
/// rotate-xor-multiply; bytes are packed into words first.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("parulel"), hash_of("parulel"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("ab"), hash_of("ab\0"));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn word_and_byte_paths_disagree_is_ok_but_each_is_stable() {
        // write_u64 and write(&bytes) are different streams; we only
        // require each to be internally stable.
        let mut h1 = FxHasher::default();
        h1.write_u64(0xdead_beef);
        let mut h2 = FxHasher::default();
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_dedupes() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
