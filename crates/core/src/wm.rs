//! The working memory: the indexed store of all live WMEs, plus the
//! [`Delta`] type describing an atomic batch of changes.
//!
//! PARULEL's fire phase produces one delta per cycle (the merged effects of
//! every fired instantiation); the engine applies it here and feeds the
//! same delta to the match network, which updates incrementally.

use crate::classes::{ClassId, ClassRegistry};
use crate::hash::{FxHashMap, FxHashSet};
use crate::value::Value;
use crate::wme::{Wme, WmeId};
use std::fmt;
use std::sync::Arc;

/// Why [`WorkingMemory::from_parts`] rejected a restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WmRestoreError {
    /// A WME referenced a class id outside the registry.
    ClassOutOfRange {
        /// The offending WME.
        id: WmeId,
        /// Its (out-of-range) class id.
        class: ClassId,
        /// Number of declared classes.
        classes: usize,
    },
    /// Two WMEs carried the same id.
    DuplicateId(WmeId),
    /// `next_id` was not strictly greater than every live id (future
    /// inserts would collide with restored WMEs).
    NextIdNotPastMax {
        /// The proposed id counter.
        next_id: u64,
        /// The largest live WME id.
        max_id: u64,
    },
}

impl fmt::Display for WmRestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WmRestoreError::ClassOutOfRange { id, class, classes } => write!(
                f,
                "wme {} has class {} but only {classes} classes are declared",
                id.0, class.0
            ),
            WmRestoreError::DuplicateId(id) => write!(f, "duplicate wme id {}", id.0),
            WmRestoreError::NextIdNotPastMax { next_id, max_id } => write!(
                f,
                "next_id {next_id} is not past the largest live wme id {max_id}"
            ),
        }
    }
}

impl std::error::Error for WmRestoreError {}

/// An atomic batch of working-memory changes, produced by one fire phase.
///
/// Removes are applied before adds, and adds are assigned ids in order, so
/// applying a delta is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Ids to retract. Deduplicated by [`Delta::normalize`].
    pub removes: Vec<WmeId>,
    /// `(class, fields)` tuples to assert; ids are assigned at apply time.
    pub adds: Vec<(ClassId, Arc<[Value]>)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.adds.is_empty()
    }

    /// Total number of changes.
    pub fn len(&self) -> usize {
        self.removes.len() + self.adds.len()
    }

    /// Sorts and deduplicates removals (two instantiations may legally
    /// retract the same WME in one cycle; retraction is idempotent).
    /// Add order is preserved: it encodes the deterministic id assignment.
    pub fn normalize(&mut self) {
        self.removes.sort_unstable();
        self.removes.dedup();
    }

    /// Appends `other` into `self` (used when merging per-instantiation
    /// deltas in a deterministic order).
    pub fn merge(&mut self, other: Delta) {
        self.removes.extend(other.removes);
        self.adds.extend(other.adds);
    }
}

/// The working memory.
///
/// Storage is a hash map from id to WME plus a per-class id index, giving
/// O(1) insert/remove and O(class population) per-class scans (what the
/// match network's alpha layer consumes on startup).
#[derive(Clone, Debug)]
pub struct WorkingMemory {
    wmes: FxHashMap<WmeId, Wme>,
    by_class: Vec<FxHashSet<WmeId>>,
    next_id: u64,
}

impl WorkingMemory {
    /// Creates an empty working memory sized for `classes`.
    pub fn new(classes: &ClassRegistry) -> Self {
        WorkingMemory {
            wmes: FxHashMap::default(),
            by_class: vec![FxHashSet::default(); classes.len()],
            next_id: 1,
        }
    }

    /// Rebuilds a working memory from previously captured WMEs (a
    /// checkpoint restore). The WMEs keep their original ids; `next_id`
    /// must be strictly greater than every live id so future inserts
    /// cannot collide — an engine resumed from a snapshot then assigns
    /// exactly the ids the uninterrupted run would have.
    pub fn from_parts(
        classes: &ClassRegistry,
        wmes: impl IntoIterator<Item = Wme>,
        next_id: u64,
    ) -> Result<Self, WmRestoreError> {
        let mut wm = WorkingMemory::new(classes);
        let mut max_id = 0u64;
        for wme in wmes {
            if wme.class.index() >= classes.len() {
                return Err(WmRestoreError::ClassOutOfRange {
                    id: wme.id,
                    class: wme.class,
                    classes: classes.len(),
                });
            }
            max_id = max_id.max(wme.id.0);
            wm.by_class[wme.class.index()].insert(wme.id);
            if wm.wmes.insert(wme.id, wme.clone()).is_some() {
                return Err(WmRestoreError::DuplicateId(wme.id));
            }
        }
        if next_id <= max_id {
            return Err(WmRestoreError::NextIdNotPastMax { next_id, max_id });
        }
        wm.next_id = next_id;
        Ok(wm)
    }

    /// The id the next inserted WME will receive.
    #[inline]
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Asserts a new WME and returns it.
    ///
    /// # Panics
    /// Panics if `class` is out of range for the registry this WM was
    /// created with. Field arity is the caller's contract (the compiler
    /// validates rule actions; workload generators construct well-formed
    /// tuples).
    pub fn insert(&mut self, class: ClassId, fields: impl Into<Arc<[Value]>>) -> Wme {
        let id = WmeId(self.next_id);
        self.next_id += 1;
        let wme = Wme::new(id, class, fields);
        self.by_class[class.index()].insert(id);
        self.wmes.insert(id, wme.clone());
        wme
    }

    /// Retracts a WME. Returns the removed element, or `None` if the id is
    /// not live (idempotent retraction).
    pub fn remove(&mut self, id: WmeId) -> Option<Wme> {
        let wme = self.wmes.remove(&id)?;
        self.by_class[wme.class.index()].remove(&id);
        Some(wme)
    }

    /// The live WME with this id, if any.
    #[inline]
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        self.wmes.get(&id)
    }

    /// True iff `id` is live.
    #[inline]
    pub fn contains(&self, id: WmeId) -> bool {
        self.wmes.contains_key(&id)
    }

    /// Number of live WMEs.
    #[inline]
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    /// True iff no WMEs are live.
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }

    /// Iterates all live WMEs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Wme> {
        self.wmes.values()
    }

    /// Iterates live WMEs of `class` (arbitrary order).
    pub fn iter_class(&self, class: ClassId) -> impl Iterator<Item = &Wme> + '_ {
        self.by_class[class.index()]
            .iter()
            .map(move |id| &self.wmes[id])
    }

    /// Number of live WMEs of `class`.
    pub fn class_len(&self, class: ClassId) -> usize {
        self.by_class[class.index()].len()
    }

    /// Applies a (normalized or not) delta: removes first, then adds.
    /// Returns `(removed, added)` — the concrete WMEs retracted and
    /// asserted — so the caller can feed the same changes to the match
    /// network.
    pub fn apply(&mut self, delta: &Delta) -> (Vec<Wme>, Vec<Wme>) {
        let mut removed = Vec::with_capacity(delta.removes.len());
        let mut seen = FxHashSet::default();
        for &id in &delta.removes {
            if seen.insert(id) {
                if let Some(w) = self.remove(id) {
                    removed.push(w);
                }
            }
        }
        let mut added = Vec::with_capacity(delta.adds.len());
        for (class, fields) in &delta.adds {
            added.push(self.insert(*class, fields.clone()));
        }
        (removed, added)
    }

    /// A deterministic snapshot of all WMEs, sorted by id. Used by tests
    /// and the experiment harness to compare final states across engines.
    pub fn sorted_snapshot(&self) -> Vec<Wme> {
        let mut all: Vec<Wme> = self.wmes.values().cloned().collect();
        all.sort_by_key(|w| w.id);
        all
    }

    /// A canonical multiset of `(class, fields)` tuples, sorted — two runs
    /// that asserted the same facts in different orders (hence with
    /// different ids) compare equal under this view.
    pub fn canonical_facts(&self) -> Vec<(ClassId, Vec<Value>)> {
        let mut all: Vec<(ClassId, Vec<Value>)> = self
            .wmes
            .values()
            .map(|w| (w.class, w.fields.to_vec()))
            .collect();
        all.sort();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    fn reg2(i: &Interner) -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.declare(i.intern("a"), vec![i.intern("x")]).unwrap();
        reg.declare(i.intern("b"), vec![i.intern("y"), i.intern("z")])
            .unwrap();
        reg
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm = WorkingMemory::new(&reg);
        let w1 = wm.insert(ClassId(0), vec![Value::Int(1)]);
        let w2 = wm.insert(ClassId(0), vec![Value::Int(2)]);
        assert!(w1.id < w2.id);
        assert_eq!(wm.len(), 2);
    }

    #[test]
    fn remove_is_idempotent() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm = WorkingMemory::new(&reg);
        let w = wm.insert(ClassId(0), vec![Value::Int(1)]);
        assert!(wm.remove(w.id).is_some());
        assert!(wm.remove(w.id).is_none());
        assert!(wm.is_empty());
        assert_eq!(wm.class_len(ClassId(0)), 0);
    }

    #[test]
    fn class_index_tracks_membership() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm = WorkingMemory::new(&reg);
        wm.insert(ClassId(0), vec![Value::Int(1)]);
        let b = wm.insert(ClassId(1), vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(wm.iter_class(ClassId(0)).count(), 1);
        assert_eq!(wm.iter_class(ClassId(1)).count(), 1);
        wm.remove(b.id);
        assert_eq!(wm.iter_class(ClassId(1)).count(), 0);
    }

    #[test]
    fn apply_removes_before_adds_and_reports_changes() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm = WorkingMemory::new(&reg);
        let w = wm.insert(ClassId(0), vec![Value::Int(1)]);
        let mut d = Delta::new();
        d.removes.push(w.id);
        d.removes.push(w.id); // duplicate retraction is fine
        d.removes.push(WmeId(999)); // stale retraction is fine
        d.adds.push((ClassId(0), vec![Value::Int(2)].into()));
        let (removed, added) = wm.apply(&d);
        assert_eq!(removed.len(), 1);
        assert_eq!(added.len(), 1);
        assert_eq!(wm.len(), 1);
        assert_eq!(added[0].field(0), Value::Int(2));
    }

    #[test]
    fn canonical_facts_ignore_ids() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm1 = WorkingMemory::new(&reg);
        let mut wm2 = WorkingMemory::new(&reg);
        wm1.insert(ClassId(0), vec![Value::Int(1)]);
        wm1.insert(ClassId(0), vec![Value::Int(2)]);
        // Same facts, different insertion order (hence ids).
        wm2.insert(ClassId(0), vec![Value::Int(2)]);
        wm2.insert(ClassId(0), vec![Value::Int(1)]);
        assert_eq!(wm1.canonical_facts(), wm2.canonical_facts());
        assert_ne!(
            wm1.sorted_snapshot()[0].fields,
            wm2.sorted_snapshot()[0].fields
        );
    }

    #[test]
    fn from_parts_restores_ids_and_continues_numbering() {
        let i = Interner::new();
        let reg = reg2(&i);
        let mut wm = WorkingMemory::new(&reg);
        wm.insert(ClassId(0), vec![Value::Int(1)]);
        wm.insert(ClassId(1), vec![Value::Int(2), Value::Int(3)]);
        let snapshot = wm.sorted_snapshot();
        let next = wm.next_id();

        let restored = WorkingMemory::from_parts(&reg, snapshot, next).unwrap();
        assert_eq!(restored.sorted_snapshot(), wm.sorted_snapshot());
        assert_eq!(restored.iter_class(ClassId(1)).count(), 1);
        // Inserting into both produces the same id.
        let mut wm = wm;
        let mut restored = restored;
        let a = wm.insert(ClassId(0), vec![Value::Int(9)]);
        let b = restored.insert(ClassId(0), vec![Value::Int(9)]);
        assert_eq!(a.id, b.id);
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        let i = Interner::new();
        let reg = reg2(&i);
        let w = |id: u64, class: u32| Wme::new(WmeId(id), ClassId(class), vec![Value::Int(0)]);
        assert_eq!(
            WorkingMemory::from_parts(&reg, vec![w(1, 7)], 2).unwrap_err(),
            WmRestoreError::ClassOutOfRange {
                id: WmeId(1),
                class: ClassId(7),
                classes: 2
            }
        );
        assert_eq!(
            WorkingMemory::from_parts(&reg, vec![w(1, 0), w(1, 0)], 2).unwrap_err(),
            WmRestoreError::DuplicateId(WmeId(1))
        );
        assert_eq!(
            WorkingMemory::from_parts(&reg, vec![w(5, 0)], 5).unwrap_err(),
            WmRestoreError::NextIdNotPastMax {
                next_id: 5,
                max_id: 5
            }
        );
        // Errors render.
        assert!(WmRestoreError::DuplicateId(WmeId(1))
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn delta_normalize_dedupes_removes_only() {
        let mut d = Delta::new();
        d.removes = vec![WmeId(3), WmeId(1), WmeId(3)];
        d.adds.push((ClassId(0), vec![Value::Int(1)].into()));
        d.adds.push((ClassId(0), vec![Value::Int(1)].into()));
        d.normalize();
        assert_eq!(d.removes, vec![WmeId(1), WmeId(3)]);
        assert_eq!(d.adds.len(), 2); // duplicate *facts* are allowed
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }
}
