//! Rule instantiations and the conflict set.
//!
//! An [`Instantiation`] is one complete, consistent match of a rule's LHS:
//! the rule, the WMEs matched by its positive CEs (in positive-CE order),
//! and the resulting variable bindings. The [`ConflictSet`] is the set of
//! all current instantiations — in PARULEL it is a first-class object that
//! meta-rules match over and redact from.

use crate::hash::FxHashMap;
use crate::ir::RuleId;
use crate::value::Value;
use crate::wme::{Wme, WmeId};
use std::fmt;
use std::sync::Arc;

/// Identity of an instantiation: the rule plus the exact WMEs matched.
/// Two matches of the same rule on the same WMEs are the same
/// instantiation (bindings are a function of the WMEs). Keys order first
/// by rule, then lexicographically by WME ids — a deterministic total
/// order used for reproducible iteration and tie-breaking.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstKey {
    /// The matched rule.
    pub rule: RuleId,
    /// Ids of the WMEs matched by the positive CEs, in CE order.
    pub wmes: Arc<[WmeId]>,
}

impl fmt::Display for InstKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.rule.0)?;
        for (i, w) in self.wmes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, ")")
    }
}

/// One complete match of a rule's LHS.
#[derive(Clone, Debug)]
pub struct Instantiation {
    /// The matched rule.
    pub rule: RuleId,
    /// The WMEs matched by the positive CEs, in CE order. Full WMEs (not
    /// just ids) so the fire phase reads fields without a WM lookup.
    pub wmes: Arc<[Wme]>,
    /// The binding environment (indexed by `VarId`). Sized to the rule's
    /// `num_vars`, so RHS `bind` slots are preallocated (NIL until bound).
    pub env: Arc<[Value]>,
}

impl Instantiation {
    /// Builds an instantiation.
    pub fn new(rule: RuleId, wmes: impl Into<Arc<[Wme]>>, env: impl Into<Arc<[Value]>>) -> Self {
        Instantiation {
            rule,
            wmes: wmes.into(),
            env: env.into(),
        }
    }

    /// The identity key of this instantiation.
    pub fn key(&self) -> InstKey {
        InstKey {
            rule: self.rule,
            wmes: self.wmes.iter().map(|w| w.id).collect(),
        }
    }

    /// Whether this instantiation matched the WME with id `id`.
    pub fn uses_wme(&self, id: WmeId) -> bool {
        self.wmes.iter().any(|w| w.id == id)
    }

    /// Recency vector for LEX ordering: matched WME timestamps, sorted
    /// descending (most recent first).
    pub fn recency(&self) -> Vec<u64> {
        let mut ts: Vec<u64> = self.wmes.iter().map(|w| w.id.time()).collect();
        ts.sort_unstable_by(|a, b| b.cmp(a));
        ts
    }

    /// The most recent matched timestamp (MEA's primary key looks at the
    /// first CE; classic MEA uses the first CE's timestamp).
    pub fn first_ce_time(&self) -> u64 {
        self.wmes.first().map(|w| w.id.time()).unwrap_or(0)
    }
}

/// One membership change of a [`ConflictSet`], recorded by the optional
/// journal. Consumers replaying a journal in order against the final set
/// reconstruct exactly the sequence of insertions and removals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsEvent {
    /// The key was inserted (it was not present before).
    Insert(InstKey),
    /// The key was removed (it was present before).
    Remove(InstKey),
}

/// The conflict set: all current instantiations, indexed by identity.
///
/// Maintains a by-rule index so meta-rule evaluation can enumerate
/// candidates for a [`MetaCe`](crate::ir::MetaCe) without scanning
/// everything.
///
/// An optional **journal** records membership changes as [`CsEvent`]s once
/// [`drain_journal_or_enable`](Self::drain_journal_or_enable) has been
/// called; the partitioned matcher uses it to patch its merged union
/// instead of rebuilding it.
#[derive(Clone, Debug, Default)]
pub struct ConflictSet {
    by_key: FxHashMap<InstKey, Instantiation>,
    journal: Option<Vec<CsEvent>>,
}

impl ConflictSet {
    /// An empty conflict set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an instantiation. Returns false if it was already present.
    pub fn insert(&mut self, inst: Instantiation) -> bool {
        let key = inst.key();
        let fresh = self.by_key.insert(key.clone(), inst).is_none();
        if fresh {
            if let Some(j) = &mut self.journal {
                j.push(CsEvent::Insert(key));
            }
        }
        fresh
    }

    /// Removes by key. Returns the instantiation if it was present.
    pub fn remove(&mut self, key: &InstKey) -> Option<Instantiation> {
        let gone = self.by_key.remove(key);
        if gone.is_some() {
            if let Some(j) = &mut self.journal {
                j.push(CsEvent::Remove(key.clone()));
            }
        }
        gone
    }

    /// True iff the key is present.
    pub fn contains(&self, key: &InstKey) -> bool {
        self.by_key.contains_key(key)
    }

    /// Looks up by key.
    pub fn get(&self, key: &InstKey) -> Option<&Instantiation> {
        self.by_key.get(key)
    }

    /// Number of instantiations.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Iterates instantiations in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Instantiation> {
        self.by_key.values()
    }

    /// Removes every instantiation that matched `id` (retraction support:
    /// when a WME dies, so do all matches that used it). Returns how many
    /// were removed.
    pub fn retract_wme(&mut self, id: WmeId) -> usize {
        let before = self.by_key.len();
        match &mut self.journal {
            None => self.by_key.retain(|_, inst| !inst.uses_wme(id)),
            Some(j) => self.by_key.retain(|k, inst| {
                let keep = !inst.uses_wme(id);
                if !keep {
                    j.push(CsEvent::Remove(k.clone()));
                }
                keep
            }),
        }
        before - self.by_key.len()
    }

    /// Drains the journal, enabling it on first call.
    ///
    /// Returns `None` when journaling was not yet active — membership
    /// changes before this call were unrecorded, so the caller must treat
    /// the set as wholly unknown (one full read) before relying on the
    /// events of subsequent drains. After the first call every
    /// insert/remove/retract is recorded until the next drain.
    pub fn drain_journal_or_enable(&mut self) -> Option<Vec<CsEvent>> {
        match &mut self.journal {
            None => {
                self.journal = Some(Vec::new());
                None
            }
            Some(j) => Some(std::mem::take(j)),
        }
    }

    /// A deterministic, sorted snapshot of the instantiations (by key).
    pub fn sorted(&self) -> Vec<Instantiation> {
        let mut v: Vec<Instantiation> = self.by_key.values().cloned().collect();
        v.sort_by_key(|inst| inst.key());
        v
    }

    /// Sorted keys only (cheaper than [`ConflictSet::sorted`] when the
    /// caller just needs identities).
    pub fn sorted_keys(&self) -> Vec<InstKey> {
        let mut v: Vec<InstKey> = self.by_key.keys().cloned().collect();
        v.sort();
        v
    }
}

impl FromIterator<Instantiation> for ConflictSet {
    fn from_iter<T: IntoIterator<Item = Instantiation>>(iter: T) -> Self {
        let mut cs = ConflictSet::new();
        for i in iter {
            cs.insert(i);
        }
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassId;

    fn inst(rule: u32, wme_ids: &[u64]) -> Instantiation {
        let wmes: Vec<Wme> = wme_ids
            .iter()
            .map(|&id| Wme::new(WmeId(id), ClassId(0), vec![Value::Int(id as i64)]))
            .collect();
        Instantiation::new(RuleId(rule), wmes, vec![])
    }

    #[test]
    fn key_identity() {
        let a = inst(1, &[10, 20]);
        let b = inst(1, &[10, 20]);
        let c = inst(1, &[20, 10]); // different CE assignment = different match
        let d = inst(2, &[10, 20]);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn key_ordering_is_rule_then_wmes() {
        let mut keys = [
            inst(2, &[1]).key(),
            inst(1, &[9]).key(),
            inst(1, &[2, 3]).key(),
            inst(1, &[2, 1]).key(),
        ];
        keys.sort();
        assert_eq!(keys[0], inst(1, &[2, 1]).key());
        assert_eq!(keys[1], inst(1, &[2, 3]).key());
        assert_eq!(keys[2], inst(1, &[9]).key());
        assert_eq!(keys[3], inst(2, &[1]).key());
    }

    #[test]
    fn conflict_set_insert_remove() {
        let mut cs = ConflictSet::new();
        assert!(cs.insert(inst(1, &[1])));
        assert!(!cs.insert(inst(1, &[1]))); // duplicate
        assert!(cs.insert(inst(1, &[2])));
        assert_eq!(cs.len(), 2);
        let k = inst(1, &[1]).key();
        assert!(cs.contains(&k));
        assert!(cs.remove(&k).is_some());
        assert!(cs.remove(&k).is_none());
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn retract_wme_removes_all_users() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(1, &[1, 2]));
        cs.insert(inst(1, &[2, 3]));
        cs.insert(inst(2, &[3]));
        assert_eq!(cs.retract_wme(WmeId(2)), 2);
        assert_eq!(cs.len(), 1);
        assert!(cs.contains(&inst(2, &[3]).key()));
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut cs = ConflictSet::new();
        for ids in [[5u64, 1], [3, 2], [1, 9]] {
            cs.insert(inst(1, &ids));
        }
        let keys: Vec<InstKey> = cs.sorted().iter().map(|i| i.key()).collect();
        assert_eq!(keys, cs.sorted_keys());
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn journal_records_only_real_membership_changes() {
        let mut cs = ConflictSet::new();
        assert!(cs.drain_journal_or_enable().is_none(), "first drain enables");
        cs.insert(inst(1, &[1]));
        cs.insert(inst(1, &[1])); // duplicate: no event
        cs.remove(&inst(9, &[9]).key()); // absent: no event
        cs.remove(&inst(1, &[1]).key());
        let events = cs.drain_journal_or_enable().unwrap();
        assert_eq!(
            events,
            vec![
                CsEvent::Insert(inst(1, &[1]).key()),
                CsEvent::Remove(inst(1, &[1]).key()),
            ]
        );
        assert!(
            cs.drain_journal_or_enable().unwrap().is_empty(),
            "drain resets the journal"
        );
    }

    #[test]
    fn journal_covers_retract_wme() {
        let mut cs = ConflictSet::new();
        cs.drain_journal_or_enable();
        cs.insert(inst(1, &[1, 2]));
        cs.insert(inst(2, &[3]));
        cs.drain_journal_or_enable();
        cs.retract_wme(WmeId(2));
        let events = cs.drain_journal_or_enable().unwrap();
        assert_eq!(events, vec![CsEvent::Remove(inst(1, &[1, 2]).key())]);
    }

    #[test]
    fn recency_and_first_ce() {
        let i = inst(1, &[5, 9, 2]);
        assert_eq!(i.recency(), vec![9, 5, 2]);
        assert_eq!(i.first_ce_time(), 5);
        assert!(i.uses_wme(WmeId(9)));
        assert!(!i.uses_wme(WmeId(7)));
    }
}
