//! The dynamic value type stored in working-memory fields.
//!
//! OPS5-family languages are dynamically typed: a WME field holds a
//! symbolic atom, an integer, or a float. [`Value`] is 16 bytes, `Copy`,
//! and implements a *total* `Eq`/`Ord`/`Hash` (floats compared by
//! `total_cmp`) so values can key hash joins and be sorted for
//! deterministic output. Numeric predicate tests (`<`, `>=`, …) use
//! [`Value::num_cmp`], which compares ints and floats numerically across
//! types, matching OPS5 semantics.

use crate::symbol::{Interner, Symbol};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A working-memory field value.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// An interned symbolic atom (includes `nil`).
    Sym(Symbol),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
}

impl Value {
    /// The `nil` placeholder value.
    pub const NIL: Value = Value::Sym(Symbol::NIL);

    /// True iff this is the `nil` symbol.
    #[inline]
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Sym(Symbol::NIL))
    }

    /// Numeric comparison across `Int`/`Float`. Returns `None` when either
    /// side is a symbol (symbols admit only equality tests) or when a float
    /// comparison involves NaN. Int/Float comparison is *exact* (no
    /// precision loss casting huge ints to f64), keeping it consistent
    /// with [`Value::join_key`] hashing.
    #[inline]
    pub fn num_cmp(self, other: Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(&b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(&b),
            (Value::Int(a), Value::Float(b)) => cmp_int_float(a, b),
            (Value::Float(a), Value::Int(b)) => cmp_int_float(b, a).map(Ordering::reverse),
            _ => None,
        }
    }

    /// Canonicalizes the value for use as a hash-join key: a float that is
    /// numerically equal to an `i64` becomes that `Int`, so any two values
    /// that [`Value::matches_eq`] calls equal hash to the same bucket.
    /// (Join buckets are always re-checked with the real predicate, so
    /// false *positives* — e.g. all NaNs sharing a bucket — are harmless;
    /// this only has to prevent false negatives.)
    #[inline]
    pub fn join_key(self) -> Value {
        match self {
            Value::Float(f) if f == f.trunc() && f >= -(2f64.powi(63)) && f < 2f64.powi(63) => {
                Value::Int(f as i64)
            }
            other => other,
        }
    }

    /// Equality as the match network sees it: symbols by identity, numbers
    /// numerically (so `Int(2)` matches `Float(2.0)`).
    #[inline]
    pub fn matches_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) => a == b,
            _ => self.num_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// Renders the value using `interner` for symbols.
    pub fn display(self, interner: &Interner) -> String {
        match self {
            Value::Sym(s) => interner.resolve(s).to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f:?}"),
        }
    }

    /// Discriminant rank used by the total order: Sym < Int < Float.
    #[inline]
    fn rank(self) -> u8 {
        match self {
            Value::Sym(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
        }
    }
}

/// Exact comparison of an `i64` against an `f64` (no lossy int→float
/// cast): the float is split into integral part and fractional remainder.
#[inline]
fn cmp_int_float(a: i64, b: f64) -> Option<Ordering> {
    if b.is_nan() {
        return None;
    }
    // 2^63 and above exceeds every i64; below -2^63 is under every i64.
    if b >= 9.223_372_036_854_776e18 {
        return Some(Ordering::Less);
    }
    if b < -9.223_372_036_854_776e18 {
        return Some(Ordering::Greater);
    }
    let floor = b.floor();
    let fi = floor as i64; // exact: integral and in range
    Some(match a.cmp(&fi) {
        // a == floor(b): a < b iff b has a fractional part.
        Ordering::Equal => {
            if b > floor {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }
        other => other,
    })
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Sym(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
        }
    }
}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A total order used only for deterministic sorting of output rows and
    /// canonicalization — *not* for predicate tests (see [`Value::num_cmp`]).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "sym#{}", s.0),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashSet;

    #[test]
    fn nil_detection() {
        assert!(Value::NIL.is_nil());
        assert!(!Value::Int(0).is_nil());
        assert!(!Value::Sym(Symbol(1)).is_nil());
    }

    #[test]
    fn num_cmp_cross_type() {
        assert_eq!(
            Value::Int(2).num_cmp(Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).num_cmp(Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(3).num_cmp(Value::Int(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Sym(Symbol(1)).num_cmp(Value::Int(2)), None);
        assert_eq!(Value::Float(f64::NAN).num_cmp(Value::Float(1.0)), None);
    }

    #[test]
    fn matches_eq_semantics() {
        assert!(Value::Int(2).matches_eq(Value::Float(2.0)));
        assert!(!Value::Int(2).matches_eq(Value::Int(3)));
        assert!(Value::Sym(Symbol(4)).matches_eq(Value::Sym(Symbol(4))));
        assert!(!Value::Sym(Symbol(4)).matches_eq(Value::Sym(Symbol(5))));
        // A symbol never numerically equals a number.
        assert!(!Value::Sym(Symbol(4)).matches_eq(Value::Int(4)));
    }

    #[test]
    fn strict_eq_is_bitwise_for_floats() {
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        // But Int(2) != Float(2.0) under strict Eq (hash-key identity).
        assert_ne!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        let mut set = FxHashSet::default();
        set.insert(Value::Float(f64::NAN));
        assert!(set.contains(&Value::Float(f64::NAN)));
        set.insert(Value::Int(7));
        set.insert(Value::Int(7));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn total_order_is_total_and_antisymmetric() {
        let vals = [
            Value::Sym(Symbol(0)),
            Value::Sym(Symbol(9)),
            Value::Int(-1),
            Value::Int(5),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(f64::NAN),
        ];
        for &a in &vals {
            for &b in &vals {
                let ab = a.cmp(&b);
                let ba = b.cmp(&a);
                assert_eq!(ab, ba.reverse());
                if ab == Ordering::Equal {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn int_float_comparison_is_exact_at_scale() {
        // 2^53 + 1 is not representable in f64; a lossy cast would call
        // these equal.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            Value::Int(big).num_cmp(Value::Float((1i64 << 53) as f64)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(i64::MAX).num_cmp(Value::Float(9.3e18)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).num_cmp(Value::Float(-9.3e18)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(i64::MIN).num_cmp(Value::Float(-(2f64.powi(63)))),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(3).num_cmp(Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(-3).num_cmp(Value::Float(-3.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn join_key_unifies_matching_numbers() {
        // Everything matches_eq-equal must share a join key.
        let pairs = [
            (Value::Int(2), Value::Float(2.0)),
            (Value::Float(-0.0), Value::Float(0.0)),
            (Value::Int(0), Value::Float(-0.0)),
            (Value::Int(-7), Value::Float(-7.0)),
        ];
        for (a, b) in pairs {
            assert!(a.matches_eq(b), "{a:?} vs {b:?}");
            assert_eq!(a.join_key(), b.join_key(), "{a:?} vs {b:?}");
        }
        // Non-integral floats keep their identity.
        assert_eq!(Value::Float(0.5).join_key(), Value::Float(0.5));
        // Out-of-range floats stay floats (and don't match any i64 anyway).
        assert_eq!(Value::Float(1e300).join_key(), Value::Float(1e300));
        assert_eq!(Value::Sym(Symbol(3)).join_key(), Value::Sym(Symbol(3)));
    }

    #[test]
    fn display_with_interner() {
        let i = Interner::new();
        let s = i.intern("hello");
        assert_eq!(Value::Sym(s).display(&i), "hello");
        assert_eq!(Value::Int(42).display(&i), "42");
        assert_eq!(Value::Float(1.5).display(&i), "1.5");
    }
}
