//! WME class declarations.
//!
//! The surface form `(literalize job id len machine status)` declares a
//! class `job` whose WMEs carry four named fields. After compilation every
//! attribute reference (`^machine`) becomes a field *slot index*, so the
//! match network never touches attribute names at runtime.

use crate::hash::FxHashMap;
use crate::symbol::Symbol;

/// Index of a class in the [`ClassRegistry`]. Dense, so per-class indexes
/// can live in plain `Vec`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A declared WME class: name plus ordered attribute list.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// Interned class name.
    pub name: Symbol,
    /// Attribute names, in field-slot order.
    pub attrs: Vec<Symbol>,
}

impl ClassDecl {
    /// Number of field slots.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Slot index of attribute `attr`, if declared.
    pub fn slot_of(&self, attr: Symbol) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }
}

/// The registry of all classes in a program.
#[derive(Clone, Debug, Default)]
pub struct ClassRegistry {
    decls: Vec<ClassDecl>,
    by_name: FxHashMap<Symbol, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class. Returns an error if the name is already taken or
    /// an attribute repeats.
    pub fn declare(&mut self, name: Symbol, attrs: Vec<Symbol>) -> Result<ClassId, ClassError> {
        if self.by_name.contains_key(&name) {
            return Err(ClassError::Duplicate(name));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(ClassError::DuplicateAttr {
                    class: name,
                    attr: *a,
                });
            }
        }
        let id = ClassId(u32::try_from(self.decls.len()).expect("class registry overflow"));
        self.by_name.insert(name, id);
        self.decls.push(ClassDecl { name, attrs });
        Ok(id)
    }

    /// Looks up a class by name.
    pub fn id_of(&self, name: Symbol) -> Option<ClassId> {
        self.by_name.get(&name).copied()
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry.
    #[inline]
    pub fn decl(&self, id: ClassId) -> &ClassDecl {
        &self.decls[id.index()]
    }

    /// Number of declared classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True iff no classes are declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Iterates `(id, decl)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDecl)> {
        self.decls
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId(i as u32), d))
    }
}

/// Errors from class declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassError {
    /// A class with this name already exists.
    Duplicate(Symbol),
    /// An attribute name appears twice in one declaration.
    DuplicateAttr {
        /// The class being declared.
        class: Symbol,
        /// The repeated attribute.
        attr: Symbol,
    },
}

impl std::fmt::Display for ClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassError::Duplicate(s) => write!(f, "duplicate class declaration (sym#{})", s.0),
            ClassError::DuplicateAttr { class, attr } => write!(
                f,
                "duplicate attribute sym#{} in class sym#{}",
                attr.0, class.0
            ),
        }
    }
}

impl std::error::Error for ClassError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Interner;

    fn setup() -> (Interner, ClassRegistry) {
        (Interner::new(), ClassRegistry::new())
    }

    #[test]
    fn declare_and_lookup() {
        let (i, mut reg) = setup();
        let job = i.intern("job");
        let id = reg
            .declare(job, vec![i.intern("id"), i.intern("len")])
            .unwrap();
        assert_eq!(reg.id_of(job), Some(id));
        assert_eq!(reg.decl(id).arity(), 2);
        assert_eq!(reg.decl(id).slot_of(i.intern("len")), Some(1));
        assert_eq!(reg.decl(id).slot_of(i.intern("bogus")), None);
    }

    #[test]
    fn duplicate_class_rejected() {
        let (i, mut reg) = setup();
        let job = i.intern("job");
        reg.declare(job, vec![]).unwrap();
        assert_eq!(reg.declare(job, vec![]), Err(ClassError::Duplicate(job)));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let (i, mut reg) = setup();
        let job = i.intern("job");
        let id_attr = i.intern("id");
        let err = reg.declare(job, vec![id_attr, id_attr]).unwrap_err();
        assert_eq!(
            err,
            ClassError::DuplicateAttr {
                class: job,
                attr: id_attr
            }
        );
    }

    #[test]
    fn ids_are_dense() {
        let (i, mut reg) = setup();
        for k in 0..10 {
            let id = reg.declare(i.intern(&format!("c{k}")), vec![]).unwrap();
            assert_eq!(id.index(), k);
        }
        assert_eq!(reg.len(), 10);
        assert_eq!(reg.iter().count(), 10);
    }
}
