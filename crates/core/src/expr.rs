//! Arithmetic and predicate expressions.
//!
//! Expressions appear in `test` condition elements (`(test (> <a> <b>))`),
//! in RHS actions (`(make total ^sum (+ <x> 1))`), and in meta-rule tests.
//! They are evaluated against a rule's variable binding environment — a
//! dense `&[Value]` indexed by [`VarId`].

use crate::ir::VarId;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `//` (integer-preserving division)
    Div,
    /// `mod`
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "//",
            BinOp::Mod => "mod",
        })
    }
}

/// Comparison predicates usable in field tests and `test` CEs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredOp {
    /// `=` — symbols by identity, numbers numerically.
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl PredOp {
    /// Applies the predicate. Ordering predicates on non-numeric operands
    /// are false (OPS5 semantics: only numbers are ordered).
    #[inline]
    pub fn apply(self, a: Value, b: Value) -> bool {
        match self {
            PredOp::Eq => a.matches_eq(b),
            PredOp::Ne => !a.matches_eq(b),
            PredOp::Lt => a.num_cmp(b) == Some(Ordering::Less),
            PredOp::Le => matches!(a.num_cmp(b), Some(Ordering::Less | Ordering::Equal)),
            PredOp::Gt => a.num_cmp(b) == Some(Ordering::Greater),
            PredOp::Ge => matches!(a.num_cmp(b), Some(Ordering::Greater | Ordering::Equal)),
        }
    }

    /// The predicate with operands swapped: `a OP b == b OP.flip() a`.
    pub fn flip(self) -> PredOp {
        match self {
            PredOp::Eq => PredOp::Eq,
            PredOp::Ne => PredOp::Ne,
            PredOp::Lt => PredOp::Gt,
            PredOp::Le => PredOp::Ge,
            PredOp::Gt => PredOp::Lt,
            PredOp::Ge => PredOp::Le,
        }
    }
}

impl fmt::Display for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredOp::Eq => "=",
            PredOp::Ne => "<>",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
        })
    }
}

/// An expression over a rule's variable bindings.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A bound variable.
    Var(VarId),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Errors raised during expression evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// Arithmetic on a symbol.
    NotANumber,
    /// Integer division or modulo by zero.
    DivideByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotANumber => write!(f, "arithmetic on a non-numeric value"),
            EvalError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Evaluates against `env` (the rule's binding vector).
    ///
    /// # Panics
    /// Panics if a `Var` is out of range for `env`; the compiler guarantees
    /// every referenced variable is bound before use.
    pub fn eval(&self, env: &[Value]) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(v) => Ok(env[v.index()]),
            Expr::Bin(op, l, r) => {
                let a = l.eval(env)?;
                let b = r.eval(env)?;
                arith(*op, a, b)
            }
        }
    }

    /// Visits every variable referenced by this expression.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => f(*v),
            Expr::Bin(_, l, r) => {
                l.for_each_var(f);
                r.for_each_var(f);
            }
        }
    }
}

impl BinOp {
    /// Applies the operator to two values with the engine's exact
    /// arithmetic semantics (wrapping integer ops, int/float promotion,
    /// integer division-by-zero errors). This is the single arithmetic
    /// kernel — the tree-walking [`Expr::eval`] and the bytecode VM both
    /// route through it, so the two evaluators cannot diverge.
    #[inline]
    pub fn apply(self, a: Value, b: Value) -> Result<Value, EvalError> {
        arith(self, a, b)
    }
}

fn arith(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(y))),
            BinOp::Div => {
                if y == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    Ok(Value::Int(x.wrapping_div(y)))
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    Ok(Value::Int(x.wrapping_rem(y)))
                }
            }
        },
        (Value::Sym(_), _) | (_, Value::Sym(_)) => Err(EvalError::NotANumber),
        _ => {
            let x = match a {
                Value::Int(i) => i as f64,
                Value::Float(f) => f,
                Value::Sym(_) => unreachable!(),
            };
            let y = match b {
                Value::Int(i) => i as f64,
                Value::Float(f) => f,
                Value::Sym(_) => unreachable!(),
            };
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
            };
            Ok(Value::Float(r))
        }
    }
}

/// A boolean test: `lhs OP rhs` over a binding environment. Compound
/// conditions are expressed as multiple tests (conjunction).
#[derive(Clone, PartialEq, Debug)]
pub struct TestExpr {
    /// The comparison predicate.
    pub op: PredOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

impl TestExpr {
    /// Evaluates the test; evaluation errors make the test false (a rule
    /// whose test divides by zero simply does not match, mirroring OPS5's
    /// treatment of failed predicates).
    pub fn check(&self, env: &[Value]) -> bool {
        match (self.lhs.eval(env), self.rhs.eval(env)) {
            (Ok(a), Ok(b)) => self.op.apply(a, b),
            _ => false,
        }
    }

    /// Visits every variable referenced by the test.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        self.lhs.for_each_var(f);
        self.rhs.for_each_var(f);
    }

    /// The highest variable index referenced, if any. Used by the compiler
    /// to anchor the test at the earliest join where all vars are bound.
    pub fn max_var(&self) -> Option<VarId> {
        let mut max: Option<VarId> = None;
        self.for_each_var(&mut |v| {
            max = Some(match max {
                Some(m) if m.0 >= v.0 => m,
                _ => v,
            });
        });
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn var(i: u16) -> Expr {
        Expr::Var(VarId(i))
    }
    fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    #[test]
    fn arithmetic_int() {
        let env = [Value::Int(10), Value::Int(3)];
        let e = Expr::Bin(BinOp::Mod, Box::new(var(0)), Box::new(var(1)));
        assert_eq!(e.eval(&env), Ok(Value::Int(1)));
        let e = Expr::Bin(BinOp::Div, Box::new(var(0)), Box::new(var(1)));
        assert_eq!(e.eval(&env), Ok(Value::Int(3)));
    }

    #[test]
    fn arithmetic_mixed_promotes_to_float() {
        let env = [Value::Int(1), Value::Float(0.5)];
        let e = Expr::Bin(BinOp::Add, Box::new(var(0)), Box::new(var(1)));
        assert_eq!(e.eval(&env), Ok(Value::Float(1.5)));
    }

    #[test]
    fn arithmetic_errors() {
        let env = [Value::Sym(Symbol(1)), Value::Int(0)];
        let e = Expr::Bin(BinOp::Add, Box::new(var(0)), Box::new(int(1)));
        assert_eq!(e.eval(&env), Err(EvalError::NotANumber));
        let e = Expr::Bin(BinOp::Div, Box::new(int(1)), Box::new(var(1)));
        assert_eq!(e.eval(&env), Err(EvalError::DivideByZero));
        let e = Expr::Bin(BinOp::Mod, Box::new(int(1)), Box::new(var(1)));
        assert_eq!(e.eval(&env), Err(EvalError::DivideByZero));
    }

    #[test]
    fn float_division_by_zero_is_inf_not_error() {
        let e = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Const(Value::Float(1.0))),
            Box::new(Expr::Const(Value::Float(0.0))),
        );
        assert_eq!(e.eval(&[]), Ok(Value::Float(f64::INFINITY)));
    }

    #[test]
    fn pred_ops() {
        use PredOp::*;
        assert!(Eq.apply(Value::Int(2), Value::Float(2.0)));
        assert!(Ne.apply(Value::Int(2), Value::Int(3)));
        assert!(Lt.apply(Value::Int(2), Value::Int(3)));
        assert!(Le.apply(Value::Int(3), Value::Int(3)));
        assert!(Gt.apply(Value::Float(3.5), Value::Int(3)));
        assert!(Ge.apply(Value::Int(3), Value::Int(3)));
        // Ordering on symbols is always false.
        assert!(!Lt.apply(Value::Sym(Symbol(1)), Value::Sym(Symbol(2))));
        assert!(!Ge.apply(Value::Sym(Symbol(2)), Value::Sym(Symbol(1))));
    }

    #[test]
    fn pred_flip_is_involutive_on_order() {
        for op in [
            PredOp::Eq,
            PredOp::Ne,
            PredOp::Lt,
            PredOp::Le,
            PredOp::Gt,
            PredOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            // a OP b == b flip(OP) a for numbers
            let a = Value::Int(1);
            let b = Value::Int(2);
            assert_eq!(op.apply(a, b), op.flip().apply(b, a));
        }
    }

    #[test]
    fn test_expr_check_and_failed_eval_is_false() {
        let t = TestExpr {
            op: PredOp::Gt,
            lhs: var(0),
            rhs: int(5),
        };
        assert!(t.check(&[Value::Int(6)]));
        assert!(!t.check(&[Value::Int(5)]));
        // eval error => false, not panic
        let t = TestExpr {
            op: PredOp::Gt,
            lhs: Expr::Bin(BinOp::Add, Box::new(var(0)), Box::new(int(1))),
            rhs: int(5),
        };
        assert!(!t.check(&[Value::Sym(Symbol(1))]));
    }

    #[test]
    fn max_var_finds_deepest() {
        let t = TestExpr {
            op: PredOp::Eq,
            lhs: Expr::Bin(BinOp::Add, Box::new(var(3)), Box::new(var(7))),
            rhs: var(5),
        };
        assert_eq!(t.max_var(), Some(VarId(7)));
        let t2 = TestExpr {
            op: PredOp::Eq,
            lhs: int(1),
            rhs: int(1),
        };
        assert_eq!(t2.max_var(), None);
    }
}
