//! Compiled intermediate representation of PARULEL programs.
//!
//! The surface language (`parulel-lang`) compiles to this IR; the match
//! engines (`parulel-match`) and the execution engine (`parulel-engine`)
//! consume it. All attribute names have been resolved to field slots, all
//! variables to dense per-rule [`VarId`]s, and all rule/class names to ids.
//!
//! ## Variable discipline
//!
//! Within a rule, variables are numbered in order of first occurrence
//! scanning condition elements left-to-right, fields left-to-right. The
//! first occurrence compiles to [`FieldCheck::Bind`]; later occurrences to
//! [`FieldCheck::Var`] (equality or another predicate). Negative CEs may
//! bind *local* variables for intra-CE consistency, but those bindings are
//! invisible to later CEs — the compiler enforces this by only allocating
//! exported variables from positive CEs.
//!
//! ## Meta-rules
//!
//! A meta-rule's "working memory" is the conflict set. Each [`MetaCe`]
//! matches one instantiation of a named object-level rule, with positional
//! [`CePattern`]s over the WMEs that instantiation matched. Distinct meta
//! CEs always bind distinct instantiations. The only meta action is
//! [`MetaAction::Redact`], deleting a matched instantiation from the
//! conflict set before the fire phase.

use crate::classes::{ClassId, ClassRegistry};
use crate::expr::{Expr, PredOp, TestExpr};
use crate::hash::{FxBuildHasher, FxHashMap};
use crate::symbol::{Interner, Symbol};
use crate::value::Value;
use crate::wme::Wme;
use std::hash::{BuildHasher, Hash};

/// A per-rule variable slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u16);

impl VarId {
    /// Raw index into the rule's binding environment.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a rule within its [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a meta-rule within its [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MetaRuleId(pub u32);

impl MetaRuleId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a condition element must match (positive) or must have no match
/// (negative).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Polarity {
    /// The CE must be satisfied by some WME.
    Positive,
    /// The CE must be satisfied by *no* WME (negation as absence).
    Negative,
}

/// A single test applied to one field of a candidate WME.
///
/// `Eq`/`Hash` are structural (floats compare bitwise via [`Value`]'s
/// total order) so alpha-constant tests can key shared alpha-network
/// nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum FieldCheck {
    /// Compare the field against a constant: `field OP value`.
    Const(PredOp, Value),
    /// Disjunctive membership: `field ∈ {v…}` (surface `<< a b c >>`).
    OneOf(Vec<Value>),
    /// First occurrence of a variable: bind it to the field value.
    Bind(VarId),
    /// Compare the field against an already-bound variable.
    Var(PredOp, VarId),
    /// Copy-and-constrain residue test: `hash(field) mod divisor == residue`.
    /// Inserted by the copy-and-constrain transform, never written by hand.
    HashMod {
        /// Number of copies the original rule was split into.
        divisor: u32,
        /// Which copy this is.
        residue: u32,
    },
}

impl FieldCheck {
    /// True iff the check can run with no variable context — i.e. it
    /// belongs in the alpha (constant-test) layer of the match network.
    pub fn is_alpha(&self) -> bool {
        matches!(
            self,
            FieldCheck::Const(..) | FieldCheck::OneOf(_) | FieldCheck::HashMod { .. }
        )
    }
}

/// [`FieldCheck`] anchored at a field slot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FieldTest {
    /// Field slot the test reads.
    pub slot: u16,
    /// The check to apply.
    pub check: FieldCheck,
}

/// Deterministic hash used by [`FieldCheck::HashMod`]. Stable across runs
/// and platforms so copy-and-constrain partitions are reproducible.
#[inline]
pub fn ccc_hash(v: Value) -> u64 {
    FxBuildHasher::default().hash_one(v)
}

impl FieldTest {
    /// Applies the test to `wme`, given (and possibly extending) the
    /// binding environment. Alpha checks ignore `env`.
    #[inline]
    pub fn check_wme(&self, wme: &Wme, env: &mut [Value]) -> bool {
        let field = wme.field(self.slot as usize);
        match &self.check {
            FieldCheck::Const(op, v) => op.apply(field, *v),
            FieldCheck::OneOf(vs) => vs.iter().any(|v| field.matches_eq(*v)),
            FieldCheck::Bind(var) => {
                env[var.index()] = field;
                true
            }
            FieldCheck::Var(op, var) => op.apply(field, env[var.index()]),
            FieldCheck::HashMod { divisor, residue } => {
                ccc_hash(field) % u64::from(*divisor) == u64::from(*residue)
            }
        }
    }
}

/// One condition element (pattern) of a rule's LHS.
#[derive(Clone, PartialEq, Debug)]
pub struct ConditionElement {
    /// WME class this CE matches.
    pub class: ClassId,
    /// Positive or negative.
    pub polarity: Polarity,
    /// Field tests, in slot order (binds precede uses for intra-CE
    /// variable repeats).
    pub tests: Vec<FieldTest>,
}

impl ConditionElement {
    /// The alpha-layer subset of the tests (no variable context needed).
    pub fn alpha_tests(&self) -> impl Iterator<Item = &FieldTest> {
        self.tests.iter().filter(|t| t.check.is_alpha())
    }

    /// The beta-layer subset (variable binds and comparisons).
    pub fn beta_tests(&self) -> impl Iterator<Item = &FieldTest> {
        self.tests.iter().filter(|t| !t.check.is_alpha())
    }

    /// True iff `wme` passes class and alpha tests.
    pub fn passes_alpha(&self, wme: &Wme) -> bool {
        if wme.class != self.class {
            return false;
        }
        // Alpha checks never touch env.
        let mut empty: [Value; 0] = [];
        self.alpha_tests().all(|t| t.check_wme(wme, &mut empty))
    }

    /// Runs the beta tests against `wme` under `env`, writing bindings.
    /// Callers pass a scratch copy of the env when failure must not leak
    /// partial bindings (join nodes do this per candidate).
    pub fn run_beta(&self, wme: &Wme, env: &mut [Value]) -> bool {
        self.beta_tests().all(|t| t.check_wme(wme, env))
    }

    /// Full CE check (alpha + beta) used by the naive matcher.
    pub fn matches(&self, wme: &Wme, env: &mut [Value]) -> bool {
        self.passes_alpha(wme) && self.run_beta(wme, env)
    }

    /// Equality join keys: `(slot, var)` pairs where the CE requires
    /// `wme.field(slot) == env[var]` with the var bound by an *earlier* CE.
    /// `bound_before` is the number of variables bound before this CE in
    /// join order; intra-CE comparisons are excluded (they need the local
    /// binds to have run).
    pub fn eq_join_keys(&self, bound_before: u16) -> Vec<(u16, VarId)> {
        self.tests
            .iter()
            .filter_map(|t| match t.check {
                FieldCheck::Var(PredOp::Eq, v) if v.0 < bound_before => Some((t.slot, v)),
                _ => None,
            })
            .collect()
    }

    /// Variables bound (first occurrence) by this CE, in slot order.
    pub fn bound_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.tests.iter().filter_map(|t| match t.check {
            FieldCheck::Bind(v) => Some(v),
            _ => None,
        })
    }
}

/// A `test` CE anchored at the earliest join position where all its
/// variables are bound.
#[derive(Clone, PartialEq, Debug)]
pub struct RuleTest {
    /// The test runs once the first `anchor + 1` CEs have joined. The
    /// compiler guarantees every variable the test reads is bound by then.
    pub anchor: usize,
    /// The predicate itself.
    pub test: TestExpr,
}

/// An RHS action.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Assert a new WME.
    Make {
        /// Class of the new WME.
        class: ClassId,
        /// One expression per field slot.
        fields: Vec<Expr>,
    },
    /// Retract the WME matched by the `ce`-th *positive* CE (0-based).
    Remove {
        /// Positive-CE ordinal.
        ce: u8,
    },
    /// Retract-and-reassert the WME matched by positive CE `ce`, with the
    /// listed field slots replaced.
    Modify {
        /// Positive-CE ordinal.
        ce: u8,
        /// `(slot, new value)` assignments.
        sets: Vec<(u16, Expr)>,
    },
    /// Append a line to the engine's output log.
    Write(Vec<Expr>),
    /// Stop execution after this cycle.
    Halt,
}

/// A compiled object-level rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Dense id within the program.
    pub id: RuleId,
    /// Rule name.
    pub name: Symbol,
    /// Condition elements in join (source) order.
    pub ces: Vec<ConditionElement>,
    /// Anchored predicate tests.
    pub tests: Vec<RuleTest>,
    /// RHS `bind` definitions, evaluated in order before the actions; each
    /// extends the environment at the given fresh [`VarId`].
    pub binds: Vec<(VarId, Expr)>,
    /// RHS actions, in source order.
    pub actions: Vec<Action>,
    /// Total variables (LHS binds + RHS `bind`s).
    pub num_vars: u16,
}

impl Rule {
    /// Indices (into `ces`) of the positive CEs, in order. Instantiations
    /// store one WME per entry of this list.
    pub fn positive_ce_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.ces
            .iter()
            .enumerate()
            .filter(|(_, ce)| ce.polarity == Polarity::Positive)
            .map(|(i, _)| i)
    }

    /// Number of positive CEs.
    pub fn num_positive(&self) -> usize {
        self.ces
            .iter()
            .filter(|ce| ce.polarity == Polarity::Positive)
            .count()
    }

    /// Specificity for the MEA/LEX baselines: total number of tests on the
    /// LHS (more tests = more specific = preferred).
    pub fn specificity(&self) -> usize {
        self.ces.iter().map(|ce| ce.tests.len() + 1).sum::<usize>() + self.tests.len()
    }

    /// Number of variables bound by the first `n` CEs (prefix of the join
    /// order). Used to place tests and identify join keys.
    pub fn vars_bound_by(&self, n: usize) -> u16 {
        self.ces[..n]
            .iter()
            .filter(|ce| ce.polarity == Polarity::Positive)
            .flat_map(|ce| ce.bound_vars())
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A positional pattern over one WME of a matched instantiation, inside a
/// meta-rule CE. Uses *meta-level* variables.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CePattern {
    /// Field tests (meta-level vars).
    pub tests: Vec<FieldTest>,
}

/// One condition element of a meta-rule: matches a single instantiation of
/// `rule` in the conflict set.
#[derive(Clone, PartialEq, Debug)]
pub struct MetaCe {
    /// The object-level rule whose instantiations this CE ranges over.
    pub rule: RuleId,
    /// Positional patterns over the instantiation's positive-CE WMEs.
    /// May be shorter than the rule's positive CE count (suffix = wildcard).
    pub pats: Vec<CePattern>,
}

/// A meta-rule action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetaAction {
    /// Delete the instantiation matched by the `ce`-th meta CE (0-based)
    /// from the conflict set.
    Redact {
        /// Meta-CE ordinal.
        ce: u8,
    },
}

/// A compiled meta-rule.
#[derive(Clone, Debug)]
pub struct MetaRule {
    /// Dense id within the program.
    pub id: MetaRuleId,
    /// Meta-rule name.
    pub name: Symbol,
    /// Meta condition elements (all positive; distinct CEs bind distinct
    /// instantiations).
    pub ces: Vec<MetaCe>,
    /// Predicate tests over meta variables.
    pub tests: Vec<TestExpr>,
    /// Redactions to apply when the meta-rule matches.
    pub actions: Vec<MetaAction>,
    /// Number of meta variables.
    pub num_vars: u16,
}

/// Errors raised by [`Program`] construction/validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// An action referenced a positive CE ordinal out of range.
    BadCeRef {
        /// Offending rule.
        rule: Symbol,
        /// The ordinal used.
        ce: u8,
        /// Number of positive CEs available.
        have: usize,
    },
    /// A rule name was used twice.
    DuplicateRule(Symbol),
    /// A `Make`/`Modify` action's field list does not match the class arity.
    BadArity {
        /// Offending rule.
        rule: Symbol,
        /// Target class.
        class: ClassId,
        /// Fields supplied.
        got: usize,
        /// Arity expected.
        want: usize,
    },
    /// A meta-rule referenced an unknown object rule.
    UnknownRuleInMeta {
        /// Offending meta-rule.
        meta: Symbol,
    },
    /// A meta CE supplied more positional patterns than the target rule has
    /// positive CEs.
    TooManyPatterns {
        /// Offending meta-rule.
        meta: Symbol,
    },
    /// A meta action redacted a CE ordinal out of range.
    BadRedact {
        /// Offending meta-rule.
        meta: Symbol,
        /// The ordinal used.
        ce: u8,
    },
    /// A rule has no positive CE (nothing to instantiate on).
    NoPositiveCe(Symbol),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadCeRef { rule, ce, have } => write!(
                f,
                "rule sym#{}: action references positive CE {} but only {have} exist",
                rule.0,
                ce + 1
            ),
            IrError::DuplicateRule(s) => write!(f, "duplicate rule name sym#{}", s.0),
            IrError::BadArity {
                rule,
                class,
                got,
                want,
            } => write!(
                f,
                "rule sym#{}: action on class {class:?} has {got} fields, expected {want}",
                rule.0
            ),
            IrError::UnknownRuleInMeta { meta } => {
                write!(f, "meta-rule sym#{}: unknown object rule", meta.0)
            }
            IrError::TooManyPatterns { meta } => write!(
                f,
                "meta-rule sym#{}: more positional patterns than positive CEs",
                meta.0
            ),
            IrError::BadRedact { meta, ce } => write!(
                f,
                "meta-rule sym#{}: redact {} out of range",
                meta.0,
                ce + 1
            ),
            IrError::NoPositiveCe(s) => {
                write!(f, "rule sym#{} has no positive condition element", s.0)
            }
        }
    }
}

impl std::error::Error for IrError {}

/// A complete compiled program: class declarations, object rules,
/// meta-rules, and the interner their symbols live in.
#[derive(Clone, Debug)]
pub struct Program {
    /// Symbol table.
    pub interner: Interner,
    /// Class registry.
    pub classes: ClassRegistry,
    rules: Vec<Rule>,
    metas: Vec<MetaRule>,
    rule_by_name: FxHashMap<Symbol, RuleId>,
}

impl Program {
    /// Creates an empty program over the given interner and classes.
    pub fn new(interner: Interner, classes: ClassRegistry) -> Self {
        Program {
            interner,
            classes,
            rules: Vec::new(),
            metas: Vec::new(),
            rule_by_name: FxHashMap::default(),
        }
    }

    /// Adds a rule after validating its internal references. The rule's
    /// `id` field is overwritten with the assigned id, which is returned.
    pub fn add_rule(&mut self, mut rule: Rule) -> Result<RuleId, IrError> {
        if self.rule_by_name.contains_key(&rule.name) {
            return Err(IrError::DuplicateRule(rule.name));
        }
        let num_pos = rule.num_positive();
        if num_pos == 0 {
            return Err(IrError::NoPositiveCe(rule.name));
        }
        for action in &rule.actions {
            match action {
                Action::Remove { ce } | Action::Modify { ce, .. } => {
                    if *ce as usize >= num_pos {
                        return Err(IrError::BadCeRef {
                            rule: rule.name,
                            ce: *ce,
                            have: num_pos,
                        });
                    }
                }
                Action::Make { class, fields } => {
                    let want = self.classes.decl(*class).arity();
                    if fields.len() != want {
                        return Err(IrError::BadArity {
                            rule: rule.name,
                            class: *class,
                            got: fields.len(),
                            want,
                        });
                    }
                }
                Action::Write(_) | Action::Halt => {}
            }
        }
        let id = RuleId(self.rules.len() as u32);
        rule.id = id;
        self.rule_by_name.insert(rule.name, id);
        self.rules.push(rule);
        Ok(id)
    }

    /// Adds a meta-rule after validating its references.
    pub fn add_meta(&mut self, mut meta: MetaRule) -> Result<MetaRuleId, IrError> {
        for ce in &meta.ces {
            let Some(rule) = self.rules.get(ce.rule.index()) else {
                return Err(IrError::UnknownRuleInMeta { meta: meta.name });
            };
            if ce.pats.len() > rule.num_positive() {
                return Err(IrError::TooManyPatterns { meta: meta.name });
            }
        }
        for MetaAction::Redact { ce } in &meta.actions {
            if *ce as usize >= meta.ces.len() {
                return Err(IrError::BadRedact {
                    meta: meta.name,
                    ce: *ce,
                });
            }
        }
        let id = MetaRuleId(self.metas.len() as u32);
        meta.id = id;
        self.metas.push(meta);
        Ok(id)
    }

    /// All rules, indexable by [`RuleId`].
    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// All meta-rules, indexable by [`MetaRuleId`].
    #[inline]
    pub fn metas(&self) -> &[MetaRule] {
        &self.metas
    }

    /// The rule with this id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this program.
    #[inline]
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Looks up a rule by name.
    pub fn rule_by_name(&self, name: Symbol) -> Option<RuleId> {
        self.rule_by_name.get(&name).copied()
    }

    /// Renders a rule name for traces.
    pub fn rule_name(&self, id: RuleId) -> String {
        self.interner.resolve(self.rule(id).name).to_string()
    }

    /// A copy of this program with every meta-rule removed — used by the
    /// ablations that measure what the interference guard can salvage when
    /// the program's declarative conflict resolution is taken away.
    pub fn without_metas(&self) -> Program {
        Program {
            interner: self.interner.clone(),
            classes: self.classes.clone(),
            rules: self.rules.clone(),
            metas: Vec::new(),
            rule_by_name: self.rule_by_name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wme::WmeId;

    fn setup() -> (Interner, ClassRegistry, ClassId) {
        let i = Interner::new();
        let mut reg = ClassRegistry::new();
        let c = reg
            .declare(i.intern("point"), vec![i.intern("x"), i.intern("y")])
            .unwrap();
        (i, reg, c)
    }

    fn wme(class: ClassId, id: u64, fields: Vec<Value>) -> Wme {
        Wme::new(WmeId(id), class, fields)
    }

    #[test]
    fn field_tests_against_wme() {
        let (_, _, c) = setup();
        let w = wme(c, 1, vec![Value::Int(3), Value::Int(3)]);
        let mut env = vec![Value::NIL; 2];

        let t = FieldTest {
            slot: 0,
            check: FieldCheck::Const(PredOp::Ge, Value::Int(3)),
        };
        assert!(t.check_wme(&w, &mut env));

        let bind = FieldTest {
            slot: 0,
            check: FieldCheck::Bind(VarId(0)),
        };
        assert!(bind.check_wme(&w, &mut env));
        assert_eq!(env[0], Value::Int(3));

        let same = FieldTest {
            slot: 1,
            check: FieldCheck::Var(PredOp::Eq, VarId(0)),
        };
        assert!(same.check_wme(&w, &mut env));

        let oneof = FieldTest {
            slot: 0,
            check: FieldCheck::OneOf(vec![Value::Int(1), Value::Int(3)]),
        };
        assert!(oneof.check_wme(&w, &mut env));
        let oneof_miss = FieldTest {
            slot: 0,
            check: FieldCheck::OneOf(vec![Value::Int(1), Value::Int(2)]),
        };
        assert!(!oneof_miss.check_wme(&w, &mut env));
    }

    #[test]
    fn hashmod_partitions_cover_all_values() {
        let (_, _, c) = setup();
        let k = 4u32;
        for v in 0..100 {
            let w = wme(c, 1, vec![Value::Int(v), Value::Int(0)]);
            let mut hits = 0;
            for r in 0..k {
                let t = FieldTest {
                    slot: 0,
                    check: FieldCheck::HashMod {
                        divisor: k,
                        residue: r,
                    },
                };
                if t.check_wme(&w, &mut []) {
                    hits += 1;
                }
            }
            assert_eq!(hits, 1, "value {v} must land in exactly one partition");
        }
    }

    #[test]
    fn ce_alpha_beta_split() {
        let (_, _, c) = setup();
        let ce = ConditionElement {
            class: c,
            polarity: Polarity::Positive,
            tests: vec![
                FieldTest {
                    slot: 0,
                    check: FieldCheck::Const(PredOp::Eq, Value::Int(1)),
                },
                FieldTest {
                    slot: 1,
                    check: FieldCheck::Bind(VarId(0)),
                },
            ],
        };
        assert_eq!(ce.alpha_tests().count(), 1);
        assert_eq!(ce.beta_tests().count(), 1);
        let good = wme(c, 1, vec![Value::Int(1), Value::Int(9)]);
        let bad = wme(c, 2, vec![Value::Int(2), Value::Int(9)]);
        assert!(ce.passes_alpha(&good));
        assert!(!ce.passes_alpha(&bad));
        let mut env = vec![Value::NIL; 1];
        assert!(ce.matches(&good, &mut env));
        assert_eq!(env[0], Value::Int(9));
    }

    #[test]
    fn eq_join_keys_only_earlier_vars() {
        let (_, _, c) = setup();
        let ce = ConditionElement {
            class: c,
            polarity: Polarity::Positive,
            tests: vec![
                FieldTest {
                    slot: 0,
                    check: FieldCheck::Var(PredOp::Eq, VarId(0)), // earlier var
                },
                FieldTest {
                    slot: 1,
                    check: FieldCheck::Var(PredOp::Eq, VarId(3)), // bound later
                },
            ],
        };
        assert_eq!(ce.eq_join_keys(1), vec![(0, VarId(0))]);
        assert_eq!(ce.eq_join_keys(4).len(), 2);
    }

    fn minimal_rule(name: Symbol, class: ClassId) -> Rule {
        Rule {
            id: RuleId(0),
            name,
            ces: vec![ConditionElement {
                class,
                polarity: Polarity::Positive,
                tests: vec![],
            }],
            tests: vec![],
            binds: vec![],
            actions: vec![],
            num_vars: 0,
        }
    }

    #[test]
    fn program_validates_action_refs() {
        let (i, reg, c) = setup();
        let mut p = Program::new(i.clone(), reg);
        let mut r = minimal_rule(i.intern("r"), c);
        r.actions.push(Action::Remove { ce: 1 }); // only 1 positive CE
        let err = p.add_rule(r).unwrap_err();
        assert!(matches!(err, IrError::BadCeRef { .. }));
    }

    #[test]
    fn program_validates_make_arity() {
        let (i, reg, c) = setup();
        let mut p = Program::new(i.clone(), reg);
        let mut r = minimal_rule(i.intern("r"), c);
        r.actions.push(Action::Make {
            class: c,
            fields: vec![Expr::Const(Value::Int(1))], // class has arity 2
        });
        let err = p.add_rule(r).unwrap_err();
        assert!(matches!(
            err,
            IrError::BadArity {
                want: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn program_rejects_duplicate_and_empty_rules() {
        let (i, reg, c) = setup();
        let mut p = Program::new(i.clone(), reg);
        let name = i.intern("r");
        p.add_rule(minimal_rule(name, c)).unwrap();
        assert_eq!(
            p.add_rule(minimal_rule(name, c)),
            Err(IrError::DuplicateRule(name))
        );
        let mut empty = minimal_rule(i.intern("empty"), c);
        empty.ces.clear();
        assert!(matches!(p.add_rule(empty), Err(IrError::NoPositiveCe(_))));
    }

    #[test]
    fn program_validates_meta() {
        let (i, reg, c) = setup();
        let mut p = Program::new(i.clone(), reg);
        let rid = p.add_rule(minimal_rule(i.intern("r"), c)).unwrap();
        // too many patterns
        let meta = MetaRule {
            id: MetaRuleId(0),
            name: i.intern("m"),
            ces: vec![MetaCe {
                rule: rid,
                pats: vec![CePattern::default(), CePattern::default()],
            }],
            tests: vec![],
            actions: vec![],
            num_vars: 0,
        };
        assert!(matches!(
            p.add_meta(meta),
            Err(IrError::TooManyPatterns { .. })
        ));
        // bad redact index
        let meta = MetaRule {
            id: MetaRuleId(0),
            name: i.intern("m2"),
            ces: vec![MetaCe {
                rule: rid,
                pats: vec![],
            }],
            tests: vec![],
            actions: vec![MetaAction::Redact { ce: 1 }],
            num_vars: 0,
        };
        assert!(matches!(p.add_meta(meta), Err(IrError::BadRedact { .. })));
        // good meta
        let meta = MetaRule {
            id: MetaRuleId(0),
            name: i.intern("m3"),
            ces: vec![MetaCe {
                rule: rid,
                pats: vec![],
            }],
            tests: vec![],
            actions: vec![MetaAction::Redact { ce: 0 }],
            num_vars: 0,
        };
        assert!(p.add_meta(meta).is_ok());
        assert_eq!(p.metas().len(), 1);
    }

    #[test]
    fn rule_lookup_and_specificity() {
        let (i, reg, c) = setup();
        let mut p = Program::new(i.clone(), reg);
        let name = i.intern("r");
        let rid = p.add_rule(minimal_rule(name, c)).unwrap();
        assert_eq!(p.rule_by_name(name), Some(rid));
        assert_eq!(p.rule_by_name(i.intern("missing")), None);
        assert_eq!(p.rule(rid).specificity(), 1);
        assert_eq!(p.rule_name(rid), "r");
    }

    #[test]
    fn vars_bound_by_prefix() {
        let (_, _, c) = setup();
        let rule = Rule {
            id: RuleId(0),
            name: Symbol(1),
            ces: vec![
                ConditionElement {
                    class: c,
                    polarity: Polarity::Positive,
                    tests: vec![FieldTest {
                        slot: 0,
                        check: FieldCheck::Bind(VarId(0)),
                    }],
                },
                ConditionElement {
                    class: c,
                    polarity: Polarity::Negative,
                    tests: vec![],
                },
                ConditionElement {
                    class: c,
                    polarity: Polarity::Positive,
                    tests: vec![
                        FieldTest {
                            slot: 0,
                            check: FieldCheck::Bind(VarId(1)),
                        },
                        FieldTest {
                            slot: 1,
                            check: FieldCheck::Bind(VarId(2)),
                        },
                    ],
                },
            ],
            tests: vec![],
            binds: vec![],
            actions: vec![],
            num_vars: 3,
        };
        assert_eq!(rule.vars_bound_by(0), 0);
        assert_eq!(rule.vars_bound_by(1), 1);
        assert_eq!(rule.vars_bound_by(2), 1); // negative CE binds nothing
        assert_eq!(rule.vars_bound_by(3), 3);
        assert_eq!(rule.num_positive(), 2);
        assert_eq!(rule.positive_ce_indices().collect::<Vec<_>>(), vec![0, 2]);
    }
}
