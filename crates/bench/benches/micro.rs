//! Criterion microbenches for the hot paths: working-memory ops, symbol
//! interning, RETE/TREAT incremental add/remove, meta-rule redaction, and
//! delta merge.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use parulel_core::{Delta, Value, WorkingMemory};
use parulel_engine::meta;
use parulel_lang::compile;
use parulel_match::{Matcher, NaiveMatcher, Rete, Treat};
use std::sync::Arc;

fn wm_insert_remove(c: &mut Criterion) {
    let p = compile("(literalize item a b c)").unwrap();
    c.bench_function("wm/insert+remove 1k", |b| {
        b.iter_batched(
            || WorkingMemory::new(&p.classes),
            |mut wm| {
                let class = parulel_core::ClassId(0);
                let mut ids = Vec::with_capacity(1000);
                for i in 0..1000 {
                    ids.push(
                        wm.insert(class, vec![Value::Int(i), Value::Int(i * 2), Value::NIL])
                            .id,
                    );
                }
                for id in ids {
                    wm.remove(id);
                }
                wm
            },
            BatchSize::SmallInput,
        )
    });
}

fn interner(c: &mut Criterion) {
    c.bench_function("interner/hit", |b| {
        let i = parulel_core::Interner::new();
        i.intern("warm");
        b.iter(|| i.intern("warm"))
    });
}

const JOIN_SRC: &str = "
(literalize edge from to)
(p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))";

fn edges(n: i64) -> Vec<(i64, i64)> {
    // a sparse ring plus chords: every node has out-degree 2
    (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i * 7 + 3) % n)])
        .collect()
}

fn matcher_adds(c: &mut Criterion) {
    let p = Arc::new(compile(JOIN_SRC).unwrap());
    let mut group = c.benchmark_group("match/seed-join");
    for n in [64i64, 256] {
        let mut wm = WorkingMemory::new(&p.classes);
        let class = parulel_core::ClassId(0);
        let wmes: Vec<_> = edges(n)
            .into_iter()
            .map(|(a, b)| wm.insert(class, vec![Value::Int(a), Value::Int(b)]))
            .collect();
        group.bench_with_input(BenchmarkId::new("rete", n), &wmes, |b, wmes| {
            b.iter_batched(
                || Rete::new(p.clone()),
                |mut m| {
                    for w in wmes {
                        m.add_wme(w);
                    }
                    m.conflict_set().len()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("treat", n), &wmes, |b, wmes| {
            b.iter_batched(
                || Treat::new(p.clone()),
                |mut m| {
                    for w in wmes {
                        m.add_wme(w);
                    }
                    m.conflict_set().len()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &wmes, |b, wmes| {
            b.iter_batched(
                || NaiveMatcher::new(p.clone()),
                |mut m| {
                    for w in wmes {
                        m.add_wme(w);
                    }
                    m.conflict_set().len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn matcher_removals(c: &mut Criterion) {
    let p = Arc::new(compile(JOIN_SRC).unwrap());
    let mut wm = WorkingMemory::new(&p.classes);
    let class = parulel_core::ClassId(0);
    let wmes: Vec<_> = edges(128)
        .into_iter()
        .map(|(a, b)| wm.insert(class, vec![Value::Int(a), Value::Int(b)]))
        .collect();
    let mut seeded_rete = Rete::new(p.clone());
    for w in &wmes {
        seeded_rete.add_wme(w);
    }
    c.bench_function("match/rete remove+readd", |b| {
        b.iter(|| {
            seeded_rete.remove_wme(&wmes[7]);
            seeded_rete.add_wme(&wmes[7]);
        })
    });
}

fn meta_redaction(c: &mut Criterion) {
    let src = "
        (literalize req id prio)
        (p serve (req ^id <i> ^prio <p>) --> (remove 1))
        (mp keep-best
          (inst serve (req ^prio <p1>))
          (inst serve (req ^prio <p2>))
          (test (> <p1> <p2>))
         --> (redact 1))";
    let p = compile(src).unwrap();
    let mut wm = WorkingMemory::new(&p.classes);
    let req = parulel_core::ClassId(0);
    for i in 0..64 {
        wm.insert(req, vec![Value::Int(i), Value::Int(i % 17)]);
    }
    let mut m = Rete::new(Arc::new(p.clone()));
    m.seed(&wm);
    let eligible = m.conflict_set().sorted();
    c.bench_function("meta/redact 64-wide conflict set", |b| {
        b.iter(|| meta::redact(&p, eligible.clone()).surviving.len())
    });
}

fn delta_merge(c: &mut Criterion) {
    c.bench_function("delta/normalize 1k removes", |b| {
        b.iter_batched(
            || {
                let mut d = Delta::new();
                for i in 0..1000u64 {
                    d.removes.push(parulel_core::WmeId(i % 300));
                }
                d
            },
            |mut d| {
                d.normalize();
                d.removes.len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    wm_insert_remove,
    interner,
    matcher_adds,
    matcher_removals,
    meta_redaction,
    delta_merge
);
criterion_main!(benches);
