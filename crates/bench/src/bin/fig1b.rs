//! Figure 1b — claim C2 on the *simulated* DADO-class machine.
//!
//! The host has one core (see Figure 1), so parallel wall-clock cannot be
//! measured directly; per the reproduction's substitution rule this
//! figure predicts it instead: each workload is executed once on the real
//! engine to extract per-cycle work profiles, which are then replayed on
//! the `parulel-sim` machine model (P processing elements, broadcast
//! delta, parallel match/fire makespans, serial gather+redact at a
//! control PE).
//!
//! Shapes to look for:
//! * closure scales until its two rules run out (2 rule nets → the curve
//!   flattens at P=2) — and recovers with copy-and-constrain (k=8 split
//!   of `close`, right column);
//! * the meta-heavy workloads (seating, market) flatten early: serial
//!   redaction is their Amdahl bound;
//! * waltzdb, with 3 rules and wide pruning waves, sits in between.

use parulel_bench::{bench_scenarios, BenchReport, Table};
use parulel_engine::{copy_and_constrain, EngineOptions, Json};
use parulel_sim::{profile_run, simulate, speedup_curve, Assignment, CostModel};
use parulel_workloads::{Closure, Scenario};

/// One simulated-machine JSON row (`"matcher": "simulated"` in the
/// `parulel-bench/v1` schema carries model fields instead of measured
/// engine columns).
fn sim_row(workload: &str, pes: usize, speedup: f64, out: &parulel_sim::SimOutcome) -> Json {
    Json::obj()
        .set("workload", workload)
        .set("matcher", "simulated")
        .set("pes", pes)
        .set("predicted_speedup", speedup)
        .set("imbalance", out.imbalance)
        .set(
            "serial_share_pct",
            100.0 * out.serial_ns as f64 / out.total_ns.max(1) as f64,
        )
}

fn main() {
    let cost = CostModel::default();
    let workers = [1usize, 2, 4, 8, 16, 32];
    println!(
        "Figure 1b: predicted speedup on the simulated message-passing machine\n\
         (profiles measured on the real engine; LPT rule placement)\n"
    );
    let mut rep = BenchReport::new(
        "fig1b",
        "predicted speedup on the simulated message-passing machine",
    );
    for s in bench_scenarios() {
        let profiles = profile_run(s.program(), s.initial_wm(), EngineOptions::default())
            .expect("profiled run succeeds");
        let mut t = Table::new(&["PEs", "predicted speedup", "imbalance", "serial share"]);
        for (w, speedup, out) in speedup_curve(&profiles, &cost, &workers, Assignment::Lpt) {
            t.row(vec![
                w.to_string(),
                format!("{speedup:.2}x"),
                format!("{:.2}", out.imbalance),
                format!(
                    "{:.0}%",
                    100.0 * out.serial_ns as f64 / out.total_ns.max(1) as f64
                ),
            ]);
            rep.push(sim_row(s.name(), w, speedup, &out));
        }
        println!("## {}", s.name());
        t.print();
        println!();
    }

    // Copy-and-constrain on the model: closure's `close` split 8 ways.
    println!("## closure + copy-and-constrain(close, k=8), same machine");
    let base = Closure::new(60, 110, 7);
    let split_program = copy_and_constrain(base.program(), "close", 8).expect("split");
    let profiles =
        profile_run(&split_program, base.initial_wm(), EngineOptions::default())
            .expect("profiled split run succeeds");
    let mut t = Table::new(&["PEs", "predicted speedup", "imbalance"]);
    for (w, speedup, out) in speedup_curve(&profiles, &cost, &workers, Assignment::Lpt) {
        t.row(vec![
            w.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.2}", out.imbalance),
        ]);
        rep.push(sim_row("closure+ccc-k8", w, speedup, &out));
    }
    t.print();

    // And the Amdahl story: even a perfect split of labelprop's one rule
    // leaves its serial redaction share as the ceiling.
    println!("\n## labelprop + copy-and-constrain(prop, k=8): redaction is the Amdahl bound");
    let base = parulel_workloads::LabelProp::new(120, 150, 11);
    let split_program = copy_and_constrain(base.program(), "prop", 8).expect("split");
    let profiles = profile_run(&split_program, base.initial_wm(), EngineOptions::default())
        .expect("profiled split run succeeds");
    let mut t = Table::new(&["PEs", "predicted speedup", "serial share"]);
    for (w, speedup, out) in speedup_curve(&profiles, &cost, &workers, Assignment::Lpt) {
        t.row(vec![
            w.to_string(),
            format!("{speedup:.2}x"),
            format!(
                "{:.0}%",
                100.0 * out.serial_ns as f64 / out.total_ns.max(1) as f64
            ),
        ]);
        rep.push(sim_row("labelprop+ccc-k8", w, speedup, &out));
    }
    t.print();

    let base = simulate(&profiles, &cost, 1, Assignment::Lpt);
    println!(
        "\n(1-PE serial share {:.0}% ⇒ asymptotic ceiling ≈ {:.1}x — C3 in reverse:\n\
         redaction must stay cheap or it caps the machine.)",
        100.0 * base.serial_ns as f64 / base.total_ns.max(1) as f64,
        base.total_ns as f64 / base.serial_ns.max(1) as f64
    );
    rep.emit();
}
