//! Table 1 — benchmark characteristics: program sizes and PARULEL
//! convergence behaviour for every workload at bench scale.

use parulel_bench::{bench_scenarios, run_parallel, BenchReport, Table};
use parulel_engine::{EngineOptions, Json, MetricsLevel};

fn main() {
    let mut t = Table::new(&[
        "workload",
        "rules",
        "metas",
        "classes",
        "initial WM",
        "cycles",
        "firings",
        "firings/cycle",
        "peak eligible",
        "valid",
    ]);
    let mut rep = BenchReport::new("table1", "benchmark characteristics (PARULEL engine, RETE)");
    for s in bench_scenarios() {
        let p = s.program();
        let wm0 = s.initial_wm().len();
        let opts = EngineOptions {
            metrics: MetricsLevel::Rules,
            ..Default::default()
        };
        let r = run_parallel(s.as_ref(), opts);
        t.row(vec![
            s.name().to_string(),
            p.rules().len().to_string(),
            p.metas().len().to_string(),
            p.classes.len().to_string(),
            wm0.to_string(),
            r.outcome.cycles.to_string(),
            r.outcome.firings.to_string(),
            format!("{:.1}", r.stats.firings_per_cycle()),
            r.stats.peak_eligible.to_string(),
            "yes".to_string(), // run_parallel panics otherwise
        ]);
        rep.run_row(
            s.name(),
            p,
            &r,
            vec![
                ("rules", Json::from(p.rules().len())),
                ("metas", Json::from(p.metas().len())),
                ("classes", Json::from(p.classes.len())),
                ("initial_wm", Json::from(wm0)),
            ],
        );
    }
    println!("Table 1: benchmark characteristics (PARULEL engine, RETE matcher)\n");
    t.print();
    rep.emit();
}
