//! Table 1 — benchmark characteristics: program sizes and PARULEL
//! convergence behaviour for every workload at bench scale.

use parulel_bench::{bench_scenarios, run_parallel, Table};
use parulel_engine::EngineOptions;

fn main() {
    let mut t = Table::new(&[
        "workload",
        "rules",
        "metas",
        "classes",
        "initial WM",
        "cycles",
        "firings",
        "firings/cycle",
        "peak eligible",
        "valid",
    ]);
    for s in bench_scenarios() {
        let p = s.program();
        let wm0 = s.initial_wm().len();
        let (out, stats, _) = run_parallel(s.as_ref(), EngineOptions::default());
        t.row(vec![
            s.name().to_string(),
            p.rules().len().to_string(),
            p.metas().len().to_string(),
            p.classes.len().to_string(),
            wm0.to_string(),
            out.cycles.to_string(),
            out.firings.to_string(),
            format!("{:.1}", stats.firings_per_cycle()),
            stats.peak_eligible.to_string(),
            "yes".to_string(), // run_parallel panics otherwise
        ]);
    }
    println!("Table 1: benchmark characteristics (PARULEL engine, RETE matcher)\n");
    t.print();
}
