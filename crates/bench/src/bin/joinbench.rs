//! joinbench — the match hot path under a hot-rule-skewed workload.
//!
//! Three questions, three sections:
//!
//! 1. **Join throughput** — adds/sec and removes/sec through each match
//!    engine (RETE, TREAT, and their rule-partitioned forms at 1/2/4/8
//!    shards), batched like engine cycles with a conflict-set read per
//!    batch. The workload is a two-class equality join whose key
//!    distribution is skewed onto a few hot keys, so one rule dominates
//!    match cost — the regime copy-and-constrain exists for.
//! 2. **Merge ablation** — the partitioned matcher's incremental
//!    conflict-set union (journal replay) against its predecessor, the
//!    full per-worker re-union, on the same stream. The merged set here
//!    is tens of thousands of instantiations while each batch changes only
//!    a sliver; rebuilding the union per read is the hidden rebuild cost
//!    this ablation prices.
//! 3. **Auto copy-and-constrain** — full engine runs of the closure
//!    workload (hot `close` rule) on a partitioned matcher with
//!    `--auto-ccc` off vs on: the engine detects the shard imbalance from
//!    its own matcher metrics and splits the hot rule mid-run. Rows carry
//!    the end-of-run `imbalance()` so the rebalancing is visible next to
//!    the wall-clock.
//! 4. **Alpha-sharing ablation** — a shared-heavy program (many rules
//!    whose condition elements are structurally identical) streamed
//!    through RETE and TREAT with the shared alpha network's dedup on
//!    vs off. With dedup off every (rule, CE) endpoint keeps its own
//!    alpha node, so each WME pays membership + index maintenance once
//!    per subscription; with dedup on, once per distinct node. Rows
//!    carry `alpha_nodes` / `alpha_subscriptions` / `alpha_share_hits`
//!    so the structural sharing is visible next to the throughput.
//!
//! Timing bin: metrics stay OFF so measured walls are on the
//! uninstrumented hot path.

use parulel_bench::{ms, run_parallel, BenchReport, Table};
use parulel_core::{Program, RuleId, Value, Wme, WmeId};
use parulel_engine::{AutoCcc, EngineOptions, Json, MatcherKind};
use parulel_match::{Matcher, Partitioned, Rete, Treat};
use parulel_workloads::{Closure, Scenario};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// WMEs streamed through each matcher (half `item`, half `probe`).
const WMES: usize = 1200;
/// Adds/removes per batch between conflict-set reads (an engine cycle's
/// delta, roughly).
const BATCH: usize = 100;
/// Join-key universe; most of the stream lands on the first few.
const KEYS: u64 = 32;
const HOT_KEYS: u64 = 4;
/// Share (percent) of WMEs whose key falls in the hot block.
const HOT_SHARE: u64 = 80;

/// One hot join rule plus seven cold never-matching rules, so an 8-way
/// rule partition gives every shard a rule to own while all real work
/// lands on `hot`'s shard.
fn hotjoin_program() -> Arc<Program> {
    let mut src = String::from(
        "(literalize item k v)\n\
         (literalize probe k v)\n\
         (p hot (item ^k <k> ^v <v>) (probe ^k <k> ^v <w>) --> (halt))\n",
    );
    for i in 0..7 {
        src.push_str(&format!(
            "(p cold{i} (item ^k <k> ^v <v>) (test (< <v> {})) --> (halt))\n",
            -1 - i as i64
        ));
    }
    Arc::new(parulel_lang::compile(&src).expect("hotjoin program compiles"))
}

/// Rules in the alpha-sharing ablation program. All of them match the
/// same two classes with the same alpha-level shape, so the shared
/// network collapses their per-rule memories into two nodes.
const SHARED_RULES: usize = 16;
/// Join-key universe for the ablation stream: uniform and sparse, so
/// beta work (index probes, token builds) stays small and the measured
/// difference is the alpha layer's.
const SPARSE_KEYS: u64 = 256;

/// `SHARED_RULES` rules whose positive CEs are structurally identical —
/// only the trailing filter test (a beta-level predicate) differs, and
/// it almost never passes, so the stream prices alpha maintenance:
/// membership and index upkeep per WME, per alpha memory.
fn sharedalpha_program() -> Arc<Program> {
    let mut src = String::from(
        "(literalize item k v)\n\
         (literalize probe k v)\n",
    );
    for i in 0..SHARED_RULES {
        src.push_str(&format!(
            "(p share{i} (item ^k <k> ^v <v>) (probe ^k <k> ^v <w>) \
             (test (< <w> {i})) --> (halt))\n"
        ));
    }
    Arc::new(parulel_lang::compile(&src).expect("shared-alpha program compiles"))
}

/// Same stream shape as [`workload`], but keys uniform over
/// [`SPARSE_KEYS`] so joins stay sparse.
fn sparse_workload(program: &Program) -> Vec<Wme> {
    let class_of = |name: &str| {
        program
            .classes
            .id_of(program.interner.intern(name))
            .expect("workload class")
    };
    let (item, probe) = (class_of("item"), class_of("probe"));
    let mut rng = Lcg(0x2545f4914f6cdd1d);
    (0..WMES)
        .map(|i| {
            let key = rng.next() % SPARSE_KEYS;
            Wme::new(
                WmeId(i as u64),
                if i % 2 == 0 { item } else { probe },
                vec![Value::Int(key as i64), Value::Int(i as i64)],
            )
        })
        .collect()
}

/// Deterministic 64-bit LCG (Knuth constants) — the bench must not pull a
/// dependency or a time-seeded RNG for a reproducible stream.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn workload(program: &Program) -> Vec<Wme> {
    let class_of = |name: &str| {
        program
            .classes
            .id_of(program.interner.intern(name))
            .expect("workload class")
    };
    let (item, probe) = (class_of("item"), class_of("probe"));
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    (0..WMES)
        .map(|i| {
            let r = rng.next();
            let key = if r % 100 < HOT_SHARE {
                (r / 100) % HOT_KEYS
            } else {
                HOT_KEYS + (r / 100) % (KEYS - HOT_KEYS)
            };
            Wme::new(
                WmeId(i as u64),
                if i % 2 == 0 { item } else { probe },
                vec![Value::Int(key as i64), Value::Int(i as i64)],
            )
        })
        .collect()
}

struct Drive {
    add: Duration,
    remove: Duration,
    cs_peak: usize,
}

/// Streams the workload in: batched adds with a conflict-set read per
/// batch (the engine's cadence), then batched removes the same way.
fn drive(m: &mut dyn Matcher, wmes: &[Wme]) -> Drive {
    let mut cs_peak = 0;
    let t = Instant::now();
    for chunk in wmes.chunks(BATCH) {
        m.apply(&[], chunk);
        cs_peak = cs_peak.max(m.conflict_set().len());
    }
    let add = t.elapsed();
    let t = Instant::now();
    for chunk in wmes.chunks(BATCH) {
        m.apply(chunk, &[]);
        let _ = m.conflict_set().len();
    }
    let remove = t.elapsed();
    assert_eq!(m.conflict_set().len(), 0, "stream must drain clean");
    Drive { add, remove, cs_peak }
}

fn per_sec(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-9)
}

fn throughput_row(
    rep: &mut BenchReport,
    t: &mut Table,
    m: &mut dyn Matcher,
    wmes: &[Wme],
    mode: &str,
) {
    let meta = m.metrics();
    let d = drive(m, wmes);
    t.row(vec![
        meta.kind.to_string(),
        meta.shards.to_string(),
        mode.to_string(),
        format!("{:.0}", per_sec(WMES, d.add)),
        format!("{:.0}", per_sec(WMES, d.remove)),
        d.cs_peak.to_string(),
    ]);
    rep.push(
        Json::obj()
            .set("workload", "hotjoin")
            .set("matcher", meta.kind)
            .set("shards", meta.shards)
            .set("mode", mode)
            .set("adds_per_sec", per_sec(WMES, d.add))
            .set("removes_per_sec", per_sec(WMES, d.remove))
            .set("wmes", WMES)
            .set("cs_peak", d.cs_peak),
    );
}

fn main() {
    let program = hotjoin_program();
    let wmes = workload(&program);
    println!(
        "joinbench: hot-rule-skewed join micro-bench\n\
         ({WMES} WMEs, batch {BATCH}, {HOT_SHARE}% of keys in {HOT_KEYS}/{KEYS})\n"
    );
    let mut rep = BenchReport::new(
        "joinbench",
        "join throughput, incremental vs rebuilt conflict-set union, auto copy-and-constrain",
    );

    // 1. Join throughput across engines and shard counts.
    let mut t = Table::new(&["matcher", "shards", "mode", "adds/s", "removes/s", "peak CS"]);
    for kind in [MatcherKind::Rete, MatcherKind::Treat] {
        let mut m = kind.build(program.clone());
        throughput_row(&mut rep, &mut t, m.as_mut(), &wmes, "monolithic");
    }
    for shards in [1usize, 2, 4, 8] {
        for kind in [
            MatcherKind::PartitionedRete(shards),
            MatcherKind::PartitionedTreat(shards),
        ] {
            let mut m = kind.build(program.clone());
            throughput_row(&mut rep, &mut t, m.as_mut(), &wmes, "incremental");
        }
    }
    println!("## join throughput");
    t.print();
    println!();

    // 2. Incremental union vs full re-union, same matcher, same stream.
    let mut t = Table::new(&[
        "mode",
        "adds/s",
        "removes/s",
        "merge rebuilds",
        "patch events",
        "add speedup",
    ]);
    let mut base_add = None;
    for force_full in [true, false] {
        let mode = if force_full { "rebuild" } else { "incremental" };
        let mut m = Partitioned::rete(program.clone(), 4);
        m.set_force_full_merge(force_full);
        let d = drive(&mut m, &wmes);
        let (rebuilds, patched) = m.merge_stats();
        let add_rate = per_sec(WMES, d.add);
        let b = *base_add.get_or_insert(add_rate);
        t.row(vec![
            mode.to_string(),
            format!("{add_rate:.0}"),
            format!("{:.0}", per_sec(WMES, d.remove)),
            rebuilds.to_string(),
            patched.to_string(),
            format!("{:.2}x", add_rate / b),
        ]);
        rep.push(
            Json::obj()
                .set("workload", "hotjoin")
                .set("matcher", "partitioned-rete")
                .set("shards", 4usize)
                .set("mode", mode)
                .set("adds_per_sec", add_rate)
                .set("removes_per_sec", per_sec(WMES, d.remove))
                .set("wmes", WMES)
                .set("cs_peak", d.cs_peak)
                .set("merge_rebuilds", rebuilds)
                .set("merge_patch_events", patched),
        );
    }
    println!("## conflict-set merge ablation (partitioned-rete, 4 shards)");
    t.print();
    println!();

    // 3. Auto copy-and-constrain on the closure workload's hot rule.
    // Best-of-5 per configuration: these runs are tens of milliseconds,
    // where scheduler noise would otherwise swamp the wall column. The
    // structural effect shows in `imbalance` and `max shard` (work on the
    // hottest shard at quiescence): the hot shard's load is the match
    // phase's critical path, so on a multicore host wall-clock follows it.
    // On a single-CPU host shard work serializes and wall stays flat —
    // read `max shard` as the parallel wall there.
    let workers = 8;
    let mut t = Table::new(&[
        "auto-ccc",
        "wall ms",
        "match ms",
        "cycles",
        "imbalance",
        "max shard",
        "speedup",
    ]);
    let mut base_wall = None;
    for auto in [false, true] {
        let s = Closure::new(48, 96, 7);
        let opts = EngineOptions {
            matcher: MatcherKind::PartitionedRete(workers),
            auto_ccc: auto.then_some(AutoCcc {
                after_cycles: 1,
                min_imbalance: 1.2,
                // Factor 2 is the sweet spot fig3 measures for this
                // workload on this partition: wider splits pay more in
                // alpha duplication than they win in spread.
                factor: 2,
            }),
            ..Default::default()
        };
        let mut best: Option<parulel_bench::RunResult> = None;
        for _ in 0..5 {
            let r = run_parallel(&s, opts.clone());
            if best.as_ref().is_none_or(|b| r.outcome.wall < b.outcome.wall) {
                best = Some(r);
            }
        }
        let r = best.expect("five runs");
        let imbalance = r.matcher.imbalance();
        let max_shard = r
            .matcher
            .per_shard
            .iter()
            .map(|s| s.work())
            .max()
            .unwrap_or(0);
        let wall = r.outcome.wall.as_secs_f64();
        let b = *base_wall.get_or_insert(wall);
        t.row(vec![
            if auto { "on" } else { "off" }.to_string(),
            ms(r.outcome.wall),
            ms(r.stats.match_time),
            r.outcome.cycles.to_string(),
            format!("{imbalance:.2}"),
            max_shard.to_string(),
            format!("{:.2}x", b / wall.max(1e-9)),
        ]);
        rep.run_row(
            "closure",
            s.program(),
            &r,
            vec![
                ("auto_ccc", Json::from(auto)),
                ("imbalance", Json::from(imbalance)),
                ("max_shard_work", Json::from(max_shard)),
                ("speedup", Json::from(b / wall.max(1e-9))),
            ],
        );
    }
    println!("## auto copy-and-constrain (closure, prete:{workers})");
    t.print();
    println!();

    // 4. Alpha-sharing ablation: dedup off = every (rule, CE) endpoint
    // owns a private alpha memory (the pre-sharing design); dedup on =
    // structurally identical CEs share one node. Same matcher code
    // either way — only the network's dedup switch differs.
    let sprog = sharedalpha_program();
    let swmes = sparse_workload(&sprog);
    let rules: Vec<RuleId> = (0..sprog.rules().len() as u32).map(RuleId).collect();
    let mut t = Table::new(&[
        "matcher",
        "alpha",
        "adds/s",
        "removes/s",
        "nodes",
        "subs",
        "share hits",
        "speedup",
    ]);
    type Build = fn(Arc<Program>, Vec<RuleId>, bool) -> Box<dyn Matcher>;
    let kinds: [(&str, Build); 2] = [
        ("rete", |p, r, d| Box::new(Rete::with_rules_sharing(p, r, d))),
        ("treat", |p, r, d| {
            Box::new(Treat::with_rules_sharing(p, r, d))
        }),
    ];
    for (kind, build) in kinds {
        let mut base = None;
        for dedup in [false, true] {
            let mode = if dedup { "shared" } else { "per-rule" };
            let mut m = build(sprog.clone(), rules.clone(), dedup);
            let d = drive(m.as_mut(), &swmes);
            let meta = m.metrics();
            let add_rate = per_sec(WMES, d.add);
            let b = *base.get_or_insert(add_rate);
            t.row(vec![
                kind.to_string(),
                mode.to_string(),
                format!("{add_rate:.0}"),
                format!("{:.0}", per_sec(WMES, d.remove)),
                meta.alpha_nodes.to_string(),
                meta.alpha_subscriptions.to_string(),
                meta.alpha_share_hits.to_string(),
                format!("{:.2}x", add_rate / b),
            ]);
            rep.push(
                Json::obj()
                    .set("workload", "sharedjoin")
                    .set("matcher", kind)
                    .set("shards", 1usize)
                    .set("mode", format!("{mode}-alpha"))
                    .set("adds_per_sec", add_rate)
                    .set("removes_per_sec", per_sec(WMES, d.remove))
                    .set("wmes", WMES)
                    .set("cs_peak", d.cs_peak)
                    .set("alpha_nodes", meta.alpha_nodes)
                    .set("alpha_subscriptions", meta.alpha_subscriptions)
                    .set("alpha_share_hits", meta.alpha_share_hits)
                    .set("speedup", add_rate / b),
            );
        }
    }
    println!("## alpha-sharing ablation ({SHARED_RULES} structurally identical rules)");
    t.print();
    rep.emit();
}
