//! Table 3 — claim C3: where cycle time goes. Phase breakdown
//! (match / redact / fire / apply) plus meta-rule work. The claim is that
//! programmable conflict resolution (the redact phase) costs a small
//! share of the cycle.

use parulel_bench::{bench_scenarios, ms, run_parallel, BenchReport, Table};
use parulel_engine::{EngineOptions, Json, MetricsLevel};

fn main() {
    let mut t = Table::new(&[
        "workload",
        "match ms",
        "redact ms",
        "fire ms",
        "apply ms",
        "redact %",
        "meta redactions",
        "meta rounds",
    ]);
    let mut rep = BenchReport::new("table3", "cycle phase breakdown and meta-rule redaction cost");
    for s in bench_scenarios() {
        let opts = EngineOptions {
            metrics: MetricsLevel::Rules,
            ..Default::default()
        };
        let r = run_parallel(s.as_ref(), opts);
        let stats = &r.stats;
        let total = stats.total_time().as_secs_f64().max(1e-9);
        let redact_share = 100.0 * stats.redact_time.as_secs_f64() / total;
        t.row(vec![
            s.name().to_string(),
            ms(stats.match_time),
            ms(stats.redact_time),
            ms(stats.fire_time),
            ms(stats.apply_time),
            format!("{redact_share:.1}%"),
            stats.redacted_meta.to_string(),
            stats.meta_rounds.to_string(),
        ]);
        rep.run_row(
            s.name(),
            s.program(),
            &r,
            vec![
                ("redact_share_pct", Json::from(redact_share)),
                ("meta_redactions", Json::from(r.stats.redacted_meta)),
                ("meta_rounds", Json::from(r.stats.meta_rounds)),
            ],
        );
    }
    println!("Table 3: cycle phase breakdown and meta-rule redaction cost\n");
    t.print();
    rep.emit();
}
