//! Table 3 — claim C3: where cycle time goes. Phase breakdown
//! (match / redact / fire / apply) plus meta-rule work. The claim is that
//! programmable conflict resolution (the redact phase) costs a small
//! share of the cycle.

use parulel_bench::{bench_scenarios, ms, run_parallel, Table};
use parulel_engine::EngineOptions;

fn main() {
    let mut t = Table::new(&[
        "workload",
        "match ms",
        "redact ms",
        "fire ms",
        "apply ms",
        "redact %",
        "meta redactions",
        "meta rounds",
    ]);
    for s in bench_scenarios() {
        let (_, stats, _) = run_parallel(s.as_ref(), EngineOptions::default());
        let total = stats.total_time().as_secs_f64().max(1e-9);
        t.row(vec![
            s.name().to_string(),
            ms(stats.match_time),
            ms(stats.redact_time),
            ms(stats.fire_time),
            ms(stats.apply_time),
            format!("{:.1}%", 100.0 * stats.redact_time.as_secs_f64() / total),
            stats.redacted_meta.to_string(),
            stats.meta_rounds.to_string(),
        ]);
    }
    println!("Table 3: cycle phase breakdown and meta-rule redaction cost\n");
    t.print();
}
