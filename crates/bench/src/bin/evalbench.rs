//! evalbench — compiled bytecode vs the tree-walking interpreter.
//!
//! Every workload runs to the same fixpoint under both evaluation
//! modes (the differential suite proves the results identical; the
//! harness additionally cross-checks the WM fingerprints per pair), so
//! the only thing this table measures is *execution strategy*: the
//! register-free stack VM dispatching compact bytecode against the
//! recursive IR walker it replaced.
//!
//! Each (workload, policy, mode) cell reports the best of three runs —
//! the usual defense against a cold cache or a scheduler hiccup
//! polluting a single sample. Timing runs keep metrics collection OFF
//! so both modes are measured on their uninstrumented hot paths.

use parulel_bench::{bench_scenarios, ms, run_policy, BenchReport, RunResult, Table};
use parulel_engine::{EngineOptions, EvalMode, FiringPolicy, Json};

const REPS: usize = 3;

fn best_run(
    s: &dyn parulel_workloads::Scenario,
    policy: FiringPolicy,
    eval: EvalMode,
) -> RunResult {
    let mut best: Option<RunResult> = None;
    for _ in 0..REPS {
        let r = run_policy(s, policy, EngineOptions { eval, ..Default::default() });
        if best.as_ref().is_none_or(|b| r.outcome.wall < b.outcome.wall) {
            best = Some(r);
        }
    }
    best.unwrap()
}

fn fingerprint(wm: &parulel_core::WorkingMemory) -> u64 {
    let rendered = format!("{:?}", wm.canonical_facts());
    let mut h: u64 = 0xcbf29ce484222325;
    for b in rendered.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    println!(
        "evalbench: compiled stack bytecode vs tree-walking interpreter\n\
         best of {REPS} runs per cell; identical fixpoints cross-checked per pair\n"
    );
    let policies = [
        ("fire-all", FiringPolicy::fire_all()),
        ("select-one-lex", FiringPolicy::SelectOne(parulel_engine::Strategy::Lex)),
    ];
    let mut rep = BenchReport::new("evalbench", "bytecode vs tree-walk evaluation throughput");
    for s in bench_scenarios() {
        let mut t = Table::new(&["policy", "tree ms", "bytecode ms", "speedup", "cycles", "firings"]);
        for (tag, policy) in &policies {
            let tree = best_run(s.as_ref(), *policy, EvalMode::Tree);
            let bytecode = best_run(s.as_ref(), *policy, EvalMode::Bytecode);
            assert_eq!(
                fingerprint(&tree.wm),
                fingerprint(&bytecode.wm),
                "{}/{tag}: evaluation modes disagree on the fixpoint",
                s.name()
            );
            let (tw, bw) = (tree.outcome.wall.as_secs_f64(), bytecode.outcome.wall.as_secs_f64());
            let speedup = tw / bw.max(1e-9);
            t.row(vec![
                tag.to_string(),
                ms(tree.outcome.wall),
                ms(bytecode.outcome.wall),
                format!("{speedup:.2}x"),
                bytecode.outcome.cycles.to_string(),
                bytecode.outcome.firings.to_string(),
            ]);
            for (mode, r) in [("tree", &tree), ("bytecode", &bytecode)] {
                rep.run_row(
                    s.name(),
                    s.program(),
                    r,
                    vec![
                        ("policy", Json::from(*tag)),
                        ("eval", Json::from(mode)),
                        ("speedup_vs_tree", Json::from(speedup)),
                    ],
                );
            }
        }
        println!("## {}", s.name());
        t.print();
        println!();
    }
    rep.emit();
}
