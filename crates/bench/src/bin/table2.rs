//! Table 2 — claim C1: set-oriented many-firing semantics vs the
//! one-firing-per-cycle OPS5 baselines (LEX and MEA), identical programs.
//!
//! The headline column is the cycle ratio: PARULEL collapses a serial
//! run's cycles by (up to) the mean conflict-set width. Wall-clock also
//! drops because each cycle pays match/apply bookkeeping once per *batch*
//! rather than once per firing.

use parulel_bench::{bench_scenarios, ms, run_parallel, run_serial, BenchReport, Table};
use parulel_engine::{EngineOptions, Json, MetricsLevel, Strategy};

fn main() {
    let mut t = Table::new(&[
        "workload",
        "LEX cycles",
        "LEX ms",
        "MEA cycles",
        "MEA ms",
        "PARULEL cycles",
        "PARULEL ms",
        "cycle ratio",
        "speedup vs LEX",
    ]);
    let mut rep = BenchReport::new(
        "table2",
        "many-firing (PARULEL) vs one-firing (OPS5 LEX/MEA) semantics",
    );
    let opts = || EngineOptions {
        metrics: MetricsLevel::Rules,
        ..Default::default()
    };
    for s in bench_scenarios() {
        let lex = run_serial(s.as_ref(), Strategy::Lex, opts());
        let mea = run_serial(s.as_ref(), Strategy::Mea, opts());
        let par = run_parallel(s.as_ref(), opts());
        t.row(vec![
            s.name().to_string(),
            lex.outcome.cycles.to_string(),
            ms(lex.outcome.wall),
            mea.outcome.cycles.to_string(),
            ms(mea.outcome.wall),
            par.outcome.cycles.to_string(),
            ms(par.outcome.wall),
            format!(
                "{:.1}x",
                lex.outcome.cycles as f64 / par.outcome.cycles.max(1) as f64
            ),
            format!(
                "{:.2}x",
                lex.outcome.wall.as_secs_f64() / par.outcome.wall.as_secs_f64().max(1e-9)
            ),
        ]);
        // One row per engine arm, tagged so the JSON stays self-describing.
        for (engine, r) in [("ops5-lex", &lex), ("ops5-mea", &mea), ("parulel", &par)] {
            rep.run_row(s.name(), s.program(), r, vec![("engine", Json::from(engine))]);
        }
    }
    println!(
        "Table 2: many-firing (PARULEL) vs one-firing (OPS5 LEX/MEA) semantics\n\
         (serial engines ignore meta-rules: conflict resolution is the hard-wired strategy)\n"
    );
    t.print();
    rep.emit();
}
