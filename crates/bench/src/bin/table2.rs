//! Table 2 — claim C1: set-oriented many-firing semantics vs the
//! one-firing-per-cycle OPS5 baselines (LEX and MEA), identical programs.
//!
//! The headline column is the cycle ratio: PARULEL collapses a serial
//! run's cycles by (up to) the mean conflict-set width. Wall-clock also
//! drops because each cycle pays match/apply bookkeeping once per *batch*
//! rather than once per firing.

use parulel_bench::{bench_scenarios, ms, run_parallel, run_serial, Table};
use parulel_engine::{EngineOptions, Strategy};

fn main() {
    let mut t = Table::new(&[
        "workload",
        "LEX cycles",
        "LEX ms",
        "MEA cycles",
        "MEA ms",
        "PARULEL cycles",
        "PARULEL ms",
        "cycle ratio",
        "speedup vs LEX",
    ]);
    for s in bench_scenarios() {
        let (lex, _) = run_serial(s.as_ref(), Strategy::Lex, EngineOptions::default());
        let (mea, _) = run_serial(s.as_ref(), Strategy::Mea, EngineOptions::default());
        let (par, _, _) = run_parallel(s.as_ref(), EngineOptions::default());
        t.row(vec![
            s.name().to_string(),
            lex.cycles.to_string(),
            ms(lex.wall),
            mea.cycles.to_string(),
            ms(mea.wall),
            par.cycles.to_string(),
            ms(par.wall),
            format!("{:.1}x", lex.cycles as f64 / par.cycles.max(1) as f64),
            format!(
                "{:.2}x",
                lex.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!(
        "Table 2: many-firing (PARULEL) vs one-firing (OPS5 LEX/MEA) semantics\n\
         (serial engines ignore meta-rules: conflict resolution is the hard-wired strategy)\n"
    );
    t.print();
}
