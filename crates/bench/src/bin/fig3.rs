//! Figure 3 — claim C4: copy-and-constrain. The `close` join rule
//! dominates the closure workload; splitting it into k hash-constrained
//! copies lets the rule-partitioned matcher spread its join work over k
//! rule nets. Rows sweep k at a fixed worker count.
//!
//! Shape: match time per net shrinks with k (each copy sees ~1/k of the
//! `reach` alpha memory at its constrained CE) at the price of k× alpha
//! duplication; on multicore hosts wall-clock follows match time.
//!
//! Timing bin: metrics stay OFF so the measured wall times are on the
//! uninstrumented hot path (rows carry `"metrics_level": "off"`).

use parulel_bench::{ms, run_parallel, BenchReport, Table};
use parulel_engine::{copy_and_constrain, EngineOptions, Json, MatcherKind};
use parulel_workloads::{Closure, Scenario};

/// Wraps a pre-split program while reusing the original scenario's WM and
/// validator (the transform preserves semantics, so validation holds).
struct Split {
    inner: Closure,
    program: parulel_core::Program,
    name: String,
}

impl Scenario for Split {
    fn name(&self) -> &str {
        &self.name
    }
    fn source(&self) -> &str {
        self.inner.source()
    }
    fn program(&self) -> &parulel_core::Program {
        &self.program
    }
    fn initial_wm(&self) -> parulel_core::WorkingMemory {
        // Classes are shared between the original and split programs.
        self.inner.initial_wm()
    }
    fn validate(&self, wm: &parulel_core::WorkingMemory) -> Result<(), String> {
        self.inner.validate(wm)
    }
}

fn main() {
    let workers = 8;
    println!(
        "Figure 3: copy-and-constrain on closure's `close` rule\n\
         (PartitionedRete({workers}); k = copies of the hot rule)\n"
    );
    let mut t = Table::new(&["k", "rules", "wall ms", "match ms", "cycles", "speedup"]);
    let mut rep = BenchReport::new("fig3", "copy-and-constrain on closure's `close` rule");
    let mut base: Option<f64> = None;
    for k in [1u32, 2, 4, 8] {
        let inner = Closure::new(48, 96, 7);
        let program = copy_and_constrain(inner.program(), "close", k).expect("split");
        let s = Split {
            name: format!("closure k={k}"),
            program,
            inner,
        };
        let opts = EngineOptions {
            matcher: MatcherKind::PartitionedRete(workers),
            ..Default::default()
        };
        let r = run_parallel(&s, opts);
        let wall = r.outcome.wall.as_secs_f64();
        let b = *base.get_or_insert(wall);
        let speedup = b / wall.max(1e-9);
        t.row(vec![
            k.to_string(),
            s.program.rules().len().to_string(),
            ms(r.outcome.wall),
            ms(r.stats.match_time),
            r.outcome.cycles.to_string(),
            format!("{speedup:.2}x"),
        ]);
        rep.run_row(
            "closure",
            &s.program,
            &r,
            vec![
                ("k", Json::from(k as usize)),
                ("rules", Json::from(s.program.rules().len())),
                ("speedup", Json::from(speedup)),
            ],
        );
    }
    t.print();
    rep.emit();
}
