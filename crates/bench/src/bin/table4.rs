//! Table 4 — interference: meta-rules vs the engine guard.
//!
//! Four configurations of the label-propagation workload (whose `modify`
//! conflicts are real):
//!
//! * metas on, guard off — PARULEL as intended: the program's meta-rules
//!   make the fired set safe.
//! * metas on, Serializable guard — the guard double-checks the metas and
//!   should find nothing.
//! * metas OFF, WriteWrite guard — the guard substitutes for conflict
//!   resolution: still correct, more cycles (greedy keep-first choices).
//! * metas OFF, guard off — unsafe simultaneous modifies duplicate WMEs
//!   *multiplicatively*; validation FAILS and working memory balloons.
//!   This row runs on a deliberately tiny instance with a hard cycle cap,
//!   because the blowup is exponential — which is itself the measurement.
//!   The instance (seed) is hand-picked to exhibit the failure mode
//!   clearly: how fast an unsafe run diverges depends on the graph's
//!   shape, and some 12-node instances explode so hard that five cycles
//!   of matching over the duplicated WM no longer finish in bench time.

use parulel_bench::{ms, BenchReport, RunResult, Table};
use parulel_engine::{Engine, EngineOptions, FiringPolicy, GuardMode, Json, MetricsLevel};
use parulel_workloads::{LabelProp, Scenario};

struct Config {
    name: &'static str,
    with_metas: bool,
    guard: GuardMode,
    nodes: usize,
    edges: usize,
    seed: u64,
    max_cycles: u64,
}

fn main() {
    let configs = [
        Config {
            name: "metas, no guard (n=60)",
            with_metas: true,
            guard: GuardMode::Off,
            nodes: 60,
            edges: 75,
            seed: 11,
            max_cycles: 1_000_000,
        },
        Config {
            name: "metas + serializable guard (n=60)",
            with_metas: true,
            guard: GuardMode::Serializable,
            nodes: 60,
            edges: 75,
            seed: 11,
            max_cycles: 1_000_000,
        },
        Config {
            name: "no metas, write-write guard (n=60)",
            with_metas: false,
            guard: GuardMode::WriteWrite,
            nodes: 60,
            edges: 75,
            seed: 11,
            max_cycles: 1_000_000,
        },
        Config {
            name: "no metas, no guard (UNSAFE, n=12, cap 5)",
            with_metas: false,
            guard: GuardMode::Off,
            nodes: 12,
            edges: 13,
            seed: 1,
            max_cycles: 5,
        },
    ];
    let mut t = Table::new(&[
        "config",
        "cycles",
        "firings",
        "meta redactions",
        "guard redactions",
        "final WM",
        "wall ms",
        "valid",
    ]);
    let mut rep = BenchReport::new(
        "table4",
        "interference resolution on label propagation (modify-modify conflicts)",
    );
    for c in configs {
        let s = LabelProp::new(c.nodes, c.edges, c.seed);
        let program = s.program().clone();
        let policy = FiringPolicy::FireAll {
            meta: c.with_metas,
            guard: c.guard,
        };
        let opts = EngineOptions {
            max_cycles: c.max_cycles,
            metrics: MetricsLevel::Rules,
            ..Default::default()
        };
        let mut e = Engine::with_policy(&program, s.initial_wm(), policy, opts);
        let out = e.run().expect("engine run failed");
        let valid = match s.validate(e.wm()) {
            Ok(()) => "yes".to_string(),
            Err(msg) => format!("NO ({})", msg.split(" —").next().unwrap_or("error")),
        };
        // This bin drives the engine directly (the unsafe row fails
        // validation on purpose), so assemble the RunResult by hand.
        let r = RunResult {
            outcome: out,
            stats: e.stats().clone(),
            metrics: e.metrics().clone(),
            matcher: e.matcher_metrics(),
            wm: e.into_wm(),
        };
        t.row(vec![
            c.name.to_string(),
            r.outcome.cycles.to_string(),
            r.outcome.firings.to_string(),
            r.stats.redacted_meta.to_string(),
            r.stats.redacted_guard.to_string(),
            r.wm.len().to_string(),
            ms(r.outcome.wall),
            valid.clone(),
        ]);
        rep.run_row(
            "labelprop",
            &program,
            &r,
            vec![
                ("config", Json::from(c.name)),
                ("guard", Json::from(format!("{:?}", c.guard).to_lowercase())),
                ("with_metas", Json::from(c.with_metas)),
                ("final_wm", Json::from(r.wm.len())),
                ("valid", Json::from(valid == "yes")),
            ],
        );
    }
    println!("Table 4: interference resolution on label propagation (modify-modify conflicts)\n");
    t.print();
    rep.emit();
}
