//! `loadgen` — protocol-level load generator for the `parulel serve`
//! daemon.
//!
//! Unlike the figure/table harnesses, which call the engine in-process,
//! this binary measures the *serving* path end to end: it boots a real
//! TCP daemon, then drives N concurrent sessions per workload through
//! the line-delimited JSON protocol — `open` with the bare program,
//! every initial fact delivered as batched `inject` frames (the
//! incremental path the daemon exists for), `run` to fixpoint, a
//! `metrics` report, `close`. Each client runs on its own thread with
//! its own socket, so frames from all sessions interleave at the
//! server exactly as they would under independent producers.
//!
//! Emits `BENCH_serve.json` (parulel-bench/v1): per-workload rows with
//! the usual measured columns (summed over sessions, taken from the
//! daemon's own parulel-metrics/v1 reports) plus serving-specific
//! extras — sustained `injects_per_sec`, `p50_frame_ms` /
//! `p99_frame_ms` round-trip latency, and `peak_sessions` resident.
//!
//! A second phase measures the durability layer: each workload is
//! re-driven against a WAL-enabled daemon under `--wal-sync never`
//! (log, no fsync) and `--wal-sync always` (fsync before every ack),
//! the sessions are persisted via a graceful `shutdown`, and a fresh
//! server recovers them from disk. Those rows carry `wal_sync`,
//! `wal_bytes`, `wal_overhead_pct` (throughput cost of `always` vs
//! `never`), and `recovery_ms`.
//!
//! A third phase measures **contention**: one session runs a long
//! closure while seven neighbors keep pinging and injecting. It is
//! driven twice — against the legacy single-mutex thread-per-connection
//! transport, then against the sharded step-quantum scheduler — and
//! both rows carry the neighbors' p50/p99 frame latency, so the
//! scheduler's fairness win is a number, not a claim.
//!
//! A fourth phase measures **scale**: 100/1k/10k resident sessions
//! multiplexed over 16 connections against the sharded scheduler, with
//! frame-latency percentiles and a fairness metric (max/mean
//! per-session cycle share — 1.0 is perfectly even service).
//!
//! ```text
//! loadgen [SESSIONS] [--scale N,N,...]
//!   SESSIONS   concurrent sessions per workload in phases 1-2  [8]
//!   --scale    session counts for the scaling phase  [100,1000,10000]
//! ```

use parulel_bench::{BenchReport, Table};
use parulel_engine::Json;
use parulel_server::{
    spawn_sched_tcp, EventLoopOpts, Server, ServerConfig, SyncPolicy, WalConfig,
};
use parulel_workloads::{Closure, LabelProp, Market, Scenario};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// WME changes per `inject` frame: small enough that a workload takes
/// many frames (exercising the queue), big enough to amortize framing.
const BATCH: usize = 16;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders one scenario's initial facts as `inject`-frame add objects,
/// in the WM's deterministic order.
fn fact_batches(s: &dyn Scenario) -> Vec<String> {
    let program = s.program();
    let adds: Vec<String> = s
        .initial_wm()
        .sorted_snapshot()
        .iter()
        .map(|w| {
            let decl = program.classes.decl(w.class);
            let fields: Vec<String> = w
                .fields
                .iter()
                .map(|v| match v {
                    parulel_core::Value::Int(i) => i.to_string(),
                    parulel_core::Value::Float(f) => format!("{f:?}"),
                    parulel_core::Value::Sym(sym) => {
                        format!("\"{}\"", escape(&program.interner.resolve(*sym)))
                    }
                })
                .collect();
            format!(
                r#"{{"class":"{}","fields":[{}]}}"#,
                program.interner.resolve(decl.name),
                fields.join(",")
            )
        })
        .collect();
    adds.chunks(BATCH)
        .map(|chunk| format!(r#"[{}]"#, chunk.join(",")))
        .collect()
}

/// What one client thread brings back: the daemon's metrics report for
/// its session plus every frame's round-trip latency.
struct SessionResult {
    report: Json,
    injected: usize,
    latencies_ms: Vec<f64>,
}

/// Drives one full session over its own TCP connection. With
/// `close: false` the session is left open so the daemon's graceful
/// shutdown persists it to the WAL for the recovery measurement.
fn drive_session(
    addr: std::net::SocketAddr,
    name: &str,
    source: &str,
    batches: &[String],
    close: bool,
) -> SessionResult {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut latencies_ms = Vec::new();
    let mut injected = 0usize;

    let send = |frame: String,
                    writer: &mut TcpStream,
                    reader: &mut BufReader<TcpStream>,
                    latencies_ms: &mut Vec<f64>|
     -> Json {
        let start = Instant::now();
        writer.write_all(frame.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let doc = Json::parse(response.trim()).expect("response is JSON");
        assert_eq!(
            doc.get("ok"),
            Some(&Json::Bool(true)),
            "{name}: {response}"
        );
        doc
    };

    send(
        format!(
            r#"{{"op":"open","session":"{name}","program":"{}","metrics":"full"}}"#,
            escape(source)
        ),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    for batch in batches {
        let doc = send(
            format!(r#"{{"op":"inject","session":"{name}","adds":{batch}}}"#),
            &mut writer,
            &mut reader,
            &mut latencies_ms,
        );
        injected += doc.get("queued").and_then(|q| q.as_f64()).unwrap_or(0.0) as usize;
    }
    let run = send(
        format!(r#"{{"op":"run","session":"{name}"}}"#),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    assert_eq!(
        run.get("status").and_then(|s| s.as_str()),
        Some("quiescent"),
        "{name}: run did not reach fixpoint"
    );
    let metrics = send(
        format!(r#"{{"op":"metrics","session":"{name}","report":true}}"#),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    let report = metrics.get("report").cloned().unwrap_or(Json::Null);
    if close {
        send(
            format!(r#"{{"op":"close","session":"{name}"}}"#),
            &mut writer,
            &mut reader,
            &mut latencies_ms,
        );
    }
    SessionResult {
        report,
        injected,
        latencies_ms,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// One durable run of a workload: the same client fleet as the main
/// phase, but against a WAL-enabled daemon, finished with a graceful
/// `shutdown` (which persists every open session) instead of `close`.
struct DurableLeg {
    wall: Duration,
    injected: usize,
    results: Vec<SessionResult>,
    wal_bytes: u64,
    recovery_ms: f64,
    sessions_recovered: f64,
}

fn durable_leg(
    name: &str,
    source: &str,
    batches: &Arc<Vec<String>>,
    sessions: usize,
    sync: SyncPolicy,
) -> DurableLeg {
    let dir = std::env::temp_dir().join(format!(
        "parulel-loadgen-{}-{name}-{}",
        std::process::id(),
        sync.tag()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let wal = WalConfig::new(&dir, sync);
    let server = Arc::new(Mutex::new(Server::with_wal(
        ServerConfig {
            max_sessions: sessions + 1,
            metrics: parulel_engine::MetricsLevel::Full,
            ..ServerConfig::default()
        },
        wal.clone(),
    )));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let started = Instant::now();
    let mut clients = Vec::new();
    for i in 0..sessions {
        let (name, source, batches) =
            (name.to_string(), source.to_string(), Arc::clone(batches));
        clients.push(std::thread::spawn(move || {
            drive_session(addr, &format!("{name}-{i}"), &source, &batches, false)
        }));
    }
    let results: Vec<SessionResult> =
        clients.into_iter().map(|c| c.join().expect("client")).collect();
    let wall = started.elapsed();
    let injected = results.iter().map(|r| r.injected).sum();

    // Graceful shutdown: compacts + fsyncs every open session's WAL so
    // the recovery measurement below starts from persisted state.
    {
        let mut locked = server.lock().expect("lock");
        locked.handle_line(r#"{"op":"shutdown"}"#);
    }
    accept_thread.join().expect("accept thread");
    drop(server);
    let wal_bytes = dir_bytes(&dir);

    // Cold-start recovery: a fresh server scans the directory, loads
    // each session's snapshot, and replays the tail.
    let mut recovered = Server::with_wal(
        ServerConfig {
            max_sessions: sessions + 1,
            metrics: parulel_engine::MetricsLevel::Full,
            ..ServerConfig::default()
        },
        wal.clone(),
    );
    let recovery_started = Instant::now();
    let report = parulel_server::recover(&mut recovered, &wal);
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.sessions_recovered, sessions,
        "{name}/{}: recovery lost sessions: {}",
        sync.tag(),
        report.summary()
    );
    let _ = std::fs::remove_dir_all(&dir);

    DurableLeg {
        wall,
        injected,
        results,
        wal_bytes,
        recovery_ms,
        sessions_recovered: report.sessions_recovered as f64,
    }
}

// ---------------------------------------------------------------------
// Phases 3-4: contention and scale, driven against the sharded
// scheduler (and, for contention, the legacy mutex transport it
// replaced as the serving default).

/// The transitive-closure program the contention/scaling phases drive:
/// a chain of edges makes run length directly proportional to chain
/// length, so victim runs are long and scaling runs are short by
/// construction.
const CHAIN_PROGRAM: &str = "(literalize edge from to)\
(literalize reach from to)\
(p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))\
(p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>) -(reach ^from <a> ^to <c>) --> (make reach ^from <a> ^to <c>))";

/// `inject` batches adding the chain `from->from+1->...->to`.
fn chain_batches(from: i64, to: i64) -> Vec<String> {
    let adds: Vec<String> = (from..to)
        .map(|i| format!(r#"{{"class":"edge","fields":[{i},{}]}}"#, i + 1))
        .collect();
    adds.chunks(BATCH)
        .map(|chunk| format!(r#"[{}]"#, chunk.join(",")))
        .collect()
}

/// A minimal protocol client for the contention/scaling phases.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: std::net::SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// One frame round trip; panics on a refused frame.
    fn call(&mut self, frame: &str) -> Json {
        self.writer.write_all(frame.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        let doc = Json::parse(response.trim()).expect("response is JSON");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{frame} -> {response}");
        doc
    }

    /// `call` with the round trip recorded in milliseconds.
    fn timed(&mut self, frame: &str, latencies_ms: &mut Vec<f64>) -> Json {
        let start = Instant::now();
        let doc = self.call(frame);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        doc
    }
}

fn open_chain_frame(session: &str) -> String {
    format!(
        r#"{{"op":"open","session":"{session}","program":"{}"}}"#,
        escape(CHAIN_PROGRAM)
    )
}

/// What one contention leg measured.
struct ContentionLeg {
    victim_run_ms: f64,
    victim_cycles: f64,
    victim_firings: f64,
    neighbor_p50_ms: f64,
    neighbor_p99_ms: f64,
    neighbor_frames: usize,
}

/// Runs the contention workload against a daemon at `addr`: one victim
/// session runs a `chain`-length closure; `neighbors` sessions ping and
/// inject until the run completes.
fn contention_leg(addr: std::net::SocketAddr, chain: i64, neighbors: usize) -> ContentionLeg {
    let mut victim = Wire::connect(addr);
    victim.call(&open_chain_frame("victim"));
    for batch in chain_batches(1, chain) {
        victim.call(&format!(r#"{{"op":"inject","session":"victim","adds":{batch}}}"#));
    }

    // Neighbors probe on a fixed schedule and only *record* while the
    // victim's run is in flight. Latency is measured against the
    // intended send time, with one sample backfilled per missed slot —
    // otherwise a neighbor stalled for seconds behind the run yields a
    // single slow sample and the percentiles hide exactly the stall
    // this phase exists to expose (coordinated omission).
    const PROBE_INTERVAL: Duration = Duration::from_millis(5);
    let start = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let neighbor_threads: Vec<_> = (0..neighbors)
        .map(|i| {
            let (start, done) = (Arc::clone(&start), Arc::clone(&done));
            std::thread::spawn(move || {
                let name = format!("n{i}");
                let mut wire = Wire::connect(addr);
                wire.call(&open_chain_frame(&name));
                while !start.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let mut latencies_ms = Vec::new();
                let mut next = 1i64;
                let mut intended = Instant::now();
                while !done.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now < intended {
                        std::thread::sleep(intended - now);
                    }
                    // Alternate the two frame kinds the satellite asks
                    // for: state-changing inject, stateless ping.
                    if next % 2 == 0 {
                        wire.call(&format!(
                            r#"{{"op":"inject","session":"{name}","adds":[{{"class":"edge","fields":[{next},{}]}}]}}"#,
                            next + 1
                        ));
                    } else {
                        wire.call(r#"{"op":"ping"}"#);
                    }
                    next += 1;
                    let now = Instant::now();
                    latencies_ms.push(now.duration_since(intended).as_secs_f64() * 1e3);
                    intended += PROBE_INTERVAL;
                    // Backfill: every probe slot this response straddled
                    // counts as a sample at its own (still unserved) age.
                    while now > intended {
                        latencies_ms.push(now.duration_since(intended).as_secs_f64() * 1e3);
                        intended += PROBE_INTERVAL;
                    }
                }
                wire.call(&format!(r#"{{"op":"close","session":"{name}"}}"#));
                latencies_ms
            })
        })
        .collect();

    // Give the neighbors a beat to connect and open, then fire the run
    // and release them at the same instant.
    std::thread::sleep(Duration::from_millis(150));
    let run_started = Instant::now();
    start.store(true, Ordering::SeqCst);
    let run = victim.call(r#"{"op":"run","session":"victim"}"#);
    let victim_run_ms = run_started.elapsed().as_secs_f64() * 1e3;
    done.store(true, Ordering::SeqCst);

    let mut latencies: Vec<f64> = neighbor_threads
        .into_iter()
        .flat_map(|t| t.join().expect("neighbor"))
        .collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    victim.call(r#"{"op":"close","session":"victim"}"#);
    ContentionLeg {
        victim_run_ms,
        victim_cycles: num(&run, "cycles"),
        victim_firings: num(&run, "firings"),
        neighbor_p50_ms: percentile(&latencies, 0.50),
        neighbor_p99_ms: percentile(&latencies, 0.99),
        neighbor_frames: latencies.len(),
    }
}

/// Zero-valued measured columns for rows where per-phase engine timings
/// are not collected (`metrics_level: "off"`): the scheduler phases
/// measure *serving* latency, not kernel phase splits.
fn zeroed_phase_columns(row: Json) -> Json {
    row.set("match_ms", 0.0)
        .set("redact_ms", 0.0)
        .set("fire_ms", 0.0)
        .set("apply_ms", 0.0)
        .set("peak_conflict_set", 0.0)
        .set("metrics_level", "off")
        .set("top_rules", Vec::<Json>::new())
}

/// One scaling row: `total` sessions multiplexed over `conns`
/// connections against a sharded daemon.
struct ScaleRow {
    wall: Duration,
    frames: usize,
    p50: f64,
    p99: f64,
    cycles: f64,
    firings: f64,
    peak_wm: f64,
    fairness: f64,
    peak_sessions: f64,
}

fn scale_leg(workers: usize, quantum: u64, total: usize, conns: usize) -> ScaleRow {
    let mut servers: Vec<Server> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let mut server = Server::new(ServerConfig {
            max_sessions: total + conns,
            metrics: parulel_engine::MetricsLevel::Off,
            ..ServerConfig::default()
        });
        if let Some(first) = servers.first() {
            server.share_admission(first.admission_gauge(), first.shutdown_signal());
        }
        servers.push(server);
    }
    let (addr, daemon) =
        spawn_sched_tcp(servers, quantum, 256, "127.0.0.1:0", EventLoopOpts::default())
            .expect("bind scheduler");

    let started = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                let mut latencies_ms = Vec::new();
                let mut cycles = Vec::new();
                let mut firings = 0.0;
                let mut peak_wm = 0.0f64;
                let mine = (c..total).step_by(conns);
                // Open every owned session first (peak residency =
                // `total`), then run them all, then close them all.
                for s in mine.clone() {
                    let name = format!("s{s}");
                    wire.timed(&open_chain_frame(&name), &mut latencies_ms);
                    for batch in chain_batches(1, 8) {
                        wire.timed(
                            &format!(r#"{{"op":"inject","session":"{name}","adds":{batch}}}"#),
                            &mut latencies_ms,
                        );
                    }
                }
                for s in mine.clone() {
                    let run = wire.timed(
                        &format!(r#"{{"op":"run","session":"s{s}"}}"#),
                        &mut latencies_ms,
                    );
                    cycles.push(num(&run, "cycles"));
                    firings += num(&run, "firings");
                    peak_wm = peak_wm.max(num(&run, "wm"));
                }
                for s in mine {
                    wire.timed(
                        &format!(r#"{{"op":"close","session":"s{s}"}}"#),
                        &mut latencies_ms,
                    );
                }
                (latencies_ms, cycles, firings, peak_wm)
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut cycles: Vec<f64> = Vec::new();
    let mut firings = 0.0;
    let mut peak_wm = 0.0f64;
    for driver in drivers {
        let (l, c, f, w) = driver.join().expect("driver");
        latencies.extend(l);
        cycles.extend(c);
        firings += f;
        peak_wm = peak_wm.max(w);
    }
    let wall = started.elapsed();
    latencies.sort_by(|a, b| a.total_cmp(b));

    let mut control = Wire::connect(addr);
    let metrics = control.call(r#"{"op":"metrics"}"#);
    let peak_sessions = num(&metrics, "peak_sessions");
    control.call(r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits");

    // Fairness: max/mean per-session cycle share. Sessions run the same
    // workload, so perfectly even service is exactly 1.0; a starved or
    // favored session shows up as a skewed max.
    let mean = cycles.iter().sum::<f64>() / (cycles.len() as f64).max(1.0);
    let fairness = cycles.iter().copied().fold(0.0, f64::max) / mean.max(1e-9);

    ScaleRow {
        wall,
        frames: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        cycles: cycles.iter().sum(),
        firings,
        peak_wm,
        fairness,
        peak_sessions,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sessions: usize = 8;
    let mut scale: Vec<usize> = vec![100, 1000, 10_000];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--scale" {
            let list = it.next().expect("--scale needs N,N,...");
            scale = list
                .split(',')
                .map(|n| n.trim().parse().expect("--scale entries must be integers"))
                .collect();
        } else {
            sessions = arg.parse().expect("SESSIONS must be an integer");
        }
    }

    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(Closure::new(32, 64, 7)),
        Box::new(LabelProp::new(48, 96, 11)),
        Box::new(Market::new(24, 6, 5)),
    ];

    println!(
        "loadgen: {sessions} concurrent sessions per workload over TCP\n\
         (open, {BATCH}-change inject batches, run to fixpoint, metrics, close)\n"
    );

    let server = Arc::new(Mutex::new(Server::new(ServerConfig {
        max_sessions: sessions * scenarios.len() + 1,
        metrics: parulel_engine::MetricsLevel::Full,
        ..ServerConfig::default()
    })));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let mut t = Table::new(&[
        "workload",
        "sessions",
        "injects/s",
        "p50 ms",
        "p99 ms",
        "cycles",
        "firings",
    ]);
    let mut rep = BenchReport::new(
        "serve",
        "protocol loadgen: concurrent sessions through `parulel serve` over TCP",
    );

    for scenario in &scenarios {
        let name = scenario.name().to_string();
        let source = scenario.source().to_string();
        let batches = Arc::new(fact_batches(scenario.as_ref()));

        let started = Instant::now();
        let mut clients = Vec::new();
        for i in 0..sessions {
            let (name, source, batches) = (name.clone(), source.clone(), Arc::clone(&batches));
            clients.push(std::thread::spawn(move || {
                drive_session(addr, &format!("{name}-{i}"), &source, &batches, true)
            }));
        }
        let results: Vec<SessionResult> =
            clients.into_iter().map(|c| c.join().expect("client")).collect();
        let wall = started.elapsed();

        let mut latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.latencies_ms.iter().copied())
            .collect();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let injected: usize = results.iter().map(|r| r.injected).sum();
        let frames = latencies.len();
        let injects_per_sec = injected as f64 / wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);

        // Measured columns come from the daemon's own per-session
        // reports: counters summed, peaks maxed over the fleet.
        let reports: Vec<&Json> = results.iter().map(|r| &r.report).collect();
        let sum = |key: &str| reports.iter().map(|r| num(r, key)).sum::<f64>();
        let max = |key: &str| reports.iter().map(|r| num(r, key)).fold(0.0, f64::max);
        let top_rules = reports[0]
            .get("rules")
            .and_then(|r| r.as_arr())
            .map(|rules| rules.iter().take(5).cloned().collect::<Vec<_>>())
            .unwrap_or_default();
        let peak_sessions = {
            let mut locked = server.lock().expect("lock");
            let doc = Json::parse(&locked.handle_line(r#"{"op":"metrics"}"#).unwrap()).unwrap();
            num(&doc, "peak_sessions")
        };

        t.row(vec![
            name.clone(),
            sessions.to_string(),
            format!("{injects_per_sec:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.0}", sum("cycles")),
            format!("{:.0}", sum("firings")),
        ]);
        rep.push(
            Json::obj()
                .set("workload", name.as_str())
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", sum("cycles"))
                .set("firings", sum("firings"))
                .set("wall_ms", wall.as_secs_f64() * 1e3)
                .set("match_ms", sum("match_ms"))
                .set("redact_ms", sum("redact_ms"))
                .set("fire_ms", sum("fire_ms"))
                .set("apply_ms", sum("apply_ms"))
                .set("peak_wm", max("peak_wm"))
                .set("peak_conflict_set", max("peak_conflict_set"))
                .set("metrics_level", "full")
                .set("top_rules", top_rules)
                .set("transport", "tcp")
                .set("sessions", sessions)
                .set("frames", frames)
                .set("injected_wmes", injected)
                .set("injects_per_sec", injects_per_sec)
                .set("p50_frame_ms", p50)
                .set("p99_frame_ms", p99)
                .set("peak_sessions", peak_sessions),
        );
    }

    {
        let mut locked = server.lock().expect("lock");
        locked.handle_line(r#"{"op":"shutdown"}"#);
    }
    accept_thread.join().expect("accept thread");

    t.print();

    // ---- Phase 2: durability. Same fleet, WAL-enabled daemon, graceful
    // shutdown, then a timed cold-start recovery. `never` is the no-fsync
    // baseline; `always` is the full log-and-fsync-before-ack contract.
    println!(
        "\ndurability: {sessions} sessions per workload, WAL on, \
         persist via shutdown, then timed recovery\n"
    );
    let mut dt = Table::new(&[
        "workload",
        "wal_sync",
        "injects/s",
        "overhead %",
        "wal KiB",
        "recovery ms",
    ]);
    for scenario in &scenarios {
        let name = scenario.name().to_string();
        let source = scenario.source().to_string();
        let batches = Arc::new(fact_batches(scenario.as_ref()));

        let baseline = durable_leg(&name, &source, &batches, sessions, SyncPolicy::Never);
        let durable = durable_leg(&name, &source, &batches, sessions, SyncPolicy::Always);

        let rate = |leg: &DurableLeg| leg.injected as f64 / leg.wall.as_secs_f64().max(1e-9);
        let (base_rate, sync_rate) = (rate(&baseline), rate(&durable));
        // Throughput cost of fsync-per-frame relative to log-only; small
        // workloads are noisy, so clamp at 0 rather than report a
        // nonsense negative overhead.
        let overhead_pct = if base_rate > 0.0 {
            ((base_rate - sync_rate) / base_rate * 100.0).max(0.0)
        } else {
            0.0
        };

        let reports: Vec<&Json> = durable.results.iter().map(|r| &r.report).collect();
        let sum = |key: &str| reports.iter().map(|r| num(r, key)).sum::<f64>();
        let max = |key: &str| reports.iter().map(|r| num(r, key)).fold(0.0, f64::max);
        let top_rules = reports[0]
            .get("rules")
            .and_then(|r| r.as_arr())
            .map(|rules| rules.iter().take(5).cloned().collect::<Vec<_>>())
            .unwrap_or_default();

        dt.row(vec![
            name.clone(),
            "always".into(),
            format!("{sync_rate:.0}"),
            format!("{overhead_pct:.1}"),
            format!("{:.1}", durable.wal_bytes as f64 / 1024.0),
            format!("{:.3}", durable.recovery_ms),
        ]);
        rep.push(
            Json::obj()
                .set("workload", name.as_str())
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", sum("cycles"))
                .set("firings", sum("firings"))
                .set("wall_ms", durable.wall.as_secs_f64() * 1e3)
                .set("match_ms", sum("match_ms"))
                .set("redact_ms", sum("redact_ms"))
                .set("fire_ms", sum("fire_ms"))
                .set("apply_ms", sum("apply_ms"))
                .set("peak_wm", max("peak_wm"))
                .set("peak_conflict_set", max("peak_conflict_set"))
                .set("metrics_level", "full")
                .set("top_rules", top_rules)
                .set("transport", "tcp")
                .set("sessions", sessions)
                .set("injected_wmes", durable.injected)
                .set("injects_per_sec", sync_rate)
                .set("wal_sync", "always")
                .set("wal_bytes", durable.wal_bytes)
                .set("wal_overhead_pct", overhead_pct)
                .set("no_sync_injects_per_sec", base_rate)
                .set("recovery_ms", durable.recovery_ms)
                .set("sessions_recovered", durable.sessions_recovered),
        );
    }
    dt.print();

    // ---- Phase 3: contention. One long closure run, 7 neighbors
    // pinging and injecting. The mutex transport serializes everything
    // behind the run; the sharded scheduler time-slices it. Both rows
    // land in the report so the improvement is auditable.
    const NEIGHBORS: usize = 7;
    const CHAIN: i64 = 448;
    const WORKERS: usize = 4;
    const QUANTUM: u64 = 32;
    println!(
        "\ncontention: 1 long closure run (chain {CHAIN}) vs {NEIGHBORS} \
         ping+inject neighbors\n"
    );

    let mutex_leg = {
        let server = Arc::new(Mutex::new(Server::new(ServerConfig {
            max_sessions: NEIGHBORS + 2,
            metrics: parulel_engine::MetricsLevel::Off,
            ..ServerConfig::default()
        })));
        let (addr, accept) =
            parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let leg = contention_leg(addr, CHAIN, NEIGHBORS);
        server.lock().expect("lock").handle_line(r#"{"op":"shutdown"}"#);
        accept.join().expect("accept thread");
        leg
    };

    let sched_leg = {
        let mut servers: Vec<Server> = Vec::with_capacity(WORKERS);
        for _ in 0..WORKERS {
            let mut server = Server::new(ServerConfig {
                max_sessions: NEIGHBORS + 2,
                metrics: parulel_engine::MetricsLevel::Off,
                ..ServerConfig::default()
            });
            if let Some(first) = servers.first() {
                server.share_admission(first.admission_gauge(), first.shutdown_signal());
            }
            servers.push(server);
        }
        let (addr, daemon) =
            spawn_sched_tcp(servers, QUANTUM, 256, "127.0.0.1:0", EventLoopOpts::default())
                .expect("bind scheduler");
        let leg = contention_leg(addr, CHAIN, NEIGHBORS);
        Wire::connect(addr).call(r#"{"op":"shutdown"}"#);
        daemon.join().expect("daemon exits");
        leg
    };

    let improvement = mutex_leg.neighbor_p99_ms / sched_leg.neighbor_p99_ms.max(1e-9);
    let mut ct = Table::new(&[
        "scheduler",
        "workers",
        "victim run ms",
        "neighbor p50 ms",
        "neighbor p99 ms",
        "neighbor frames",
    ]);
    for (tag, workers, leg) in [
        ("mutex", 1usize, &mutex_leg),
        ("sharded", WORKERS, &sched_leg),
    ] {
        ct.row(vec![
            tag.to_string(),
            workers.to_string(),
            format!("{:.1}", leg.victim_run_ms),
            format!("{:.3}", leg.neighbor_p50_ms),
            format!("{:.3}", leg.neighbor_p99_ms),
            leg.neighbor_frames.to_string(),
        ]);
        let mut row = zeroed_phase_columns(
            Json::obj()
                .set("workload", "contention")
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", leg.victim_cycles)
                .set("firings", leg.victim_firings)
                .set("wall_ms", leg.victim_run_ms)
                .set("peak_wm", (CHAIN * (CHAIN - 1)) as f64 / 2.0),
        )
        .set("transport", "tcp")
        .set("scheduler", tag)
        .set("workers", workers)
        .set("run_quantum", if tag == "mutex" { 0u64 } else { QUANTUM })
        .set("sessions", NEIGHBORS + 1)
        .set("victim_run_ms", leg.victim_run_ms)
        .set("neighbor_p50_ms", leg.neighbor_p50_ms)
        .set("neighbor_p99_ms", leg.neighbor_p99_ms)
        .set("neighbor_frames", leg.neighbor_frames);
        if tag == "sharded" {
            row = row.set("p99_improvement_x", improvement);
        }
        rep.push(row);
    }
    ct.print();
    println!("\nneighbor p99 improvement (mutex -> sharded): {improvement:.1}x\n");

    // ---- Phase 4: scale. Resident-session counts well past anything
    // the mutex transport was asked to hold, multiplexed over 16
    // connections against the sharded scheduler.
    const CONNS: usize = 16;
    println!("scaling: sessions resident over {CONNS} connections, workers={WORKERS}\n");
    let mut st = Table::new(&[
        "sessions",
        "frames/s",
        "p50 ms",
        "p99 ms",
        "fairness max/mean",
        "peak resident",
    ]);
    for &total in &scale {
        let row = scale_leg(WORKERS, QUANTUM, total, CONNS.min(total));
        let frames_per_sec = row.frames as f64 / row.wall.as_secs_f64().max(1e-9);
        st.row(vec![
            total.to_string(),
            format!("{frames_per_sec:.0}"),
            format!("{:.3}", row.p50),
            format!("{:.3}", row.p99),
            format!("{:.3}", row.fairness),
            format!("{:.0}", row.peak_sessions),
        ]);
        rep.push(
            zeroed_phase_columns(
                Json::obj()
                    .set("workload", "scaling")
                    .set("matcher", "rete")
                    .set("shards", 1usize)
                    .set("cycles", row.cycles)
                    .set("firings", row.firings)
                    .set("wall_ms", row.wall.as_secs_f64() * 1e3)
                    .set("peak_wm", row.peak_wm),
            )
            .set("transport", "tcp")
            .set("scheduler", "sharded")
            .set("workers", WORKERS)
            .set("run_quantum", QUANTUM)
            .set("sessions", total)
            .set("frames", row.frames)
            .set("frames_per_sec", frames_per_sec)
            .set("p50_frame_ms", row.p50)
            .set("p99_frame_ms", row.p99)
            .set("fairness_max_over_mean", row.fairness)
            .set("peak_sessions", row.peak_sessions),
        );
    }
    st.print();

    rep.emit();
}
