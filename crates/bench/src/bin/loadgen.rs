//! `loadgen` — protocol-level load generator for the `parulel serve`
//! daemon.
//!
//! Unlike the figure/table harnesses, which call the engine in-process,
//! this binary measures the *serving* path end to end: it boots a real
//! TCP daemon, then drives N concurrent sessions per workload through
//! the line-delimited JSON protocol — `open` with the bare program,
//! every initial fact delivered as batched `inject` frames (the
//! incremental path the daemon exists for), `run` to fixpoint, a
//! `metrics` report, `close`. Each client runs on its own thread with
//! its own socket, so frames from all sessions interleave at the
//! server exactly as they would under independent producers.
//!
//! Emits `BENCH_serve.json` (parulel-bench/v1): per-workload rows with
//! the usual measured columns (summed over sessions, taken from the
//! daemon's own parulel-metrics/v1 reports) plus serving-specific
//! extras — sustained `injects_per_sec`, `p50_frame_ms` /
//! `p99_frame_ms` round-trip latency, and `peak_sessions` resident.
//!
//! A second phase measures the durability layer: each workload is
//! re-driven against a WAL-enabled daemon under `--wal-sync never`
//! (log, no fsync) and `--wal-sync always` (fsync before every ack),
//! the sessions are persisted via a graceful `shutdown`, and a fresh
//! server recovers them from disk. Those rows carry `wal_sync`,
//! `wal_bytes`, `wal_overhead_pct` (throughput cost of `always` vs
//! `never`), and `recovery_ms`.
//!
//! ```text
//! loadgen [SESSIONS]   # default 8 concurrent sessions per workload
//! ```

use parulel_bench::{BenchReport, Table};
use parulel_engine::Json;
use parulel_server::{Server, ServerConfig, SyncPolicy, WalConfig};
use parulel_workloads::{Closure, LabelProp, Market, Scenario};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// WME changes per `inject` frame: small enough that a workload takes
/// many frames (exercising the queue), big enough to amortize framing.
const BATCH: usize = 16;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders one scenario's initial facts as `inject`-frame add objects,
/// in the WM's deterministic order.
fn fact_batches(s: &dyn Scenario) -> Vec<String> {
    let program = s.program();
    let adds: Vec<String> = s
        .initial_wm()
        .sorted_snapshot()
        .iter()
        .map(|w| {
            let decl = program.classes.decl(w.class);
            let fields: Vec<String> = w
                .fields
                .iter()
                .map(|v| match v {
                    parulel_core::Value::Int(i) => i.to_string(),
                    parulel_core::Value::Float(f) => format!("{f:?}"),
                    parulel_core::Value::Sym(sym) => {
                        format!("\"{}\"", escape(&program.interner.resolve(*sym)))
                    }
                })
                .collect();
            format!(
                r#"{{"class":"{}","fields":[{}]}}"#,
                program.interner.resolve(decl.name),
                fields.join(",")
            )
        })
        .collect();
    adds.chunks(BATCH)
        .map(|chunk| format!(r#"[{}]"#, chunk.join(",")))
        .collect()
}

/// What one client thread brings back: the daemon's metrics report for
/// its session plus every frame's round-trip latency.
struct SessionResult {
    report: Json,
    injected: usize,
    latencies_ms: Vec<f64>,
}

/// Drives one full session over its own TCP connection. With
/// `close: false` the session is left open so the daemon's graceful
/// shutdown persists it to the WAL for the recovery measurement.
fn drive_session(
    addr: std::net::SocketAddr,
    name: &str,
    source: &str,
    batches: &[String],
    close: bool,
) -> SessionResult {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut latencies_ms = Vec::new();
    let mut injected = 0usize;

    let send = |frame: String,
                    writer: &mut TcpStream,
                    reader: &mut BufReader<TcpStream>,
                    latencies_ms: &mut Vec<f64>|
     -> Json {
        let start = Instant::now();
        writer.write_all(frame.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let doc = Json::parse(response.trim()).expect("response is JSON");
        assert_eq!(
            doc.get("ok"),
            Some(&Json::Bool(true)),
            "{name}: {response}"
        );
        doc
    };

    send(
        format!(
            r#"{{"op":"open","session":"{name}","program":"{}","metrics":"full"}}"#,
            escape(source)
        ),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    for batch in batches {
        let doc = send(
            format!(r#"{{"op":"inject","session":"{name}","adds":{batch}}}"#),
            &mut writer,
            &mut reader,
            &mut latencies_ms,
        );
        injected += doc.get("queued").and_then(|q| q.as_f64()).unwrap_or(0.0) as usize;
    }
    let run = send(
        format!(r#"{{"op":"run","session":"{name}"}}"#),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    assert_eq!(
        run.get("status").and_then(|s| s.as_str()),
        Some("quiescent"),
        "{name}: run did not reach fixpoint"
    );
    let metrics = send(
        format!(r#"{{"op":"metrics","session":"{name}","report":true}}"#),
        &mut writer,
        &mut reader,
        &mut latencies_ms,
    );
    let report = metrics.get("report").cloned().unwrap_or(Json::Null);
    if close {
        send(
            format!(r#"{{"op":"close","session":"{name}"}}"#),
            &mut writer,
            &mut reader,
            &mut latencies_ms,
        );
    }
    SessionResult {
        report,
        injected,
        latencies_ms,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// One durable run of a workload: the same client fleet as the main
/// phase, but against a WAL-enabled daemon, finished with a graceful
/// `shutdown` (which persists every open session) instead of `close`.
struct DurableLeg {
    wall: Duration,
    injected: usize,
    results: Vec<SessionResult>,
    wal_bytes: u64,
    recovery_ms: f64,
    sessions_recovered: f64,
}

fn durable_leg(
    name: &str,
    source: &str,
    batches: &Arc<Vec<String>>,
    sessions: usize,
    sync: SyncPolicy,
) -> DurableLeg {
    let dir = std::env::temp_dir().join(format!(
        "parulel-loadgen-{}-{name}-{}",
        std::process::id(),
        sync.tag()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let wal = WalConfig::new(&dir, sync);
    let server = Arc::new(Mutex::new(Server::with_wal(
        ServerConfig {
            max_sessions: sessions + 1,
            metrics: parulel_engine::MetricsLevel::Full,
            ..ServerConfig::default()
        },
        wal.clone(),
    )));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let started = Instant::now();
    let mut clients = Vec::new();
    for i in 0..sessions {
        let (name, source, batches) =
            (name.to_string(), source.to_string(), Arc::clone(batches));
        clients.push(std::thread::spawn(move || {
            drive_session(addr, &format!("{name}-{i}"), &source, &batches, false)
        }));
    }
    let results: Vec<SessionResult> =
        clients.into_iter().map(|c| c.join().expect("client")).collect();
    let wall = started.elapsed();
    let injected = results.iter().map(|r| r.injected).sum();

    // Graceful shutdown: compacts + fsyncs every open session's WAL so
    // the recovery measurement below starts from persisted state.
    {
        let mut locked = server.lock().expect("lock");
        locked.handle_line(r#"{"op":"shutdown"}"#);
    }
    accept_thread.join().expect("accept thread");
    drop(server);
    let wal_bytes = dir_bytes(&dir);

    // Cold-start recovery: a fresh server scans the directory, loads
    // each session's snapshot, and replays the tail.
    let mut recovered = Server::with_wal(
        ServerConfig {
            max_sessions: sessions + 1,
            metrics: parulel_engine::MetricsLevel::Full,
            ..ServerConfig::default()
        },
        wal.clone(),
    );
    let recovery_started = Instant::now();
    let report = parulel_server::recover(&mut recovered, &wal);
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.sessions_recovered, sessions,
        "{name}/{}: recovery lost sessions: {}",
        sync.tag(),
        report.summary()
    );
    let _ = std::fs::remove_dir_all(&dir);

    DurableLeg {
        wall,
        injected,
        results,
        wal_bytes,
        recovery_ms,
        sessions_recovered: report.sessions_recovered as f64,
    }
}

fn main() {
    let sessions: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("SESSIONS must be an integer"))
        .unwrap_or(8);

    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(Closure::new(32, 64, 7)),
        Box::new(LabelProp::new(48, 96, 11)),
        Box::new(Market::new(24, 6, 5)),
    ];

    println!(
        "loadgen: {sessions} concurrent sessions per workload over TCP\n\
         (open, {BATCH}-change inject batches, run to fixpoint, metrics, close)\n"
    );

    let server = Arc::new(Mutex::new(Server::new(ServerConfig {
        max_sessions: sessions * scenarios.len() + 1,
        metrics: parulel_engine::MetricsLevel::Full,
        ..ServerConfig::default()
    })));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let mut t = Table::new(&[
        "workload",
        "sessions",
        "injects/s",
        "p50 ms",
        "p99 ms",
        "cycles",
        "firings",
    ]);
    let mut rep = BenchReport::new(
        "serve",
        "protocol loadgen: concurrent sessions through `parulel serve` over TCP",
    );

    for scenario in &scenarios {
        let name = scenario.name().to_string();
        let source = scenario.source().to_string();
        let batches = Arc::new(fact_batches(scenario.as_ref()));

        let started = Instant::now();
        let mut clients = Vec::new();
        for i in 0..sessions {
            let (name, source, batches) = (name.clone(), source.clone(), Arc::clone(&batches));
            clients.push(std::thread::spawn(move || {
                drive_session(addr, &format!("{name}-{i}"), &source, &batches, true)
            }));
        }
        let results: Vec<SessionResult> =
            clients.into_iter().map(|c| c.join().expect("client")).collect();
        let wall = started.elapsed();

        let mut latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.latencies_ms.iter().copied())
            .collect();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let injected: usize = results.iter().map(|r| r.injected).sum();
        let frames = latencies.len();
        let injects_per_sec = injected as f64 / wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);

        // Measured columns come from the daemon's own per-session
        // reports: counters summed, peaks maxed over the fleet.
        let reports: Vec<&Json> = results.iter().map(|r| &r.report).collect();
        let sum = |key: &str| reports.iter().map(|r| num(r, key)).sum::<f64>();
        let max = |key: &str| reports.iter().map(|r| num(r, key)).fold(0.0, f64::max);
        let top_rules = reports[0]
            .get("rules")
            .and_then(|r| r.as_arr())
            .map(|rules| rules.iter().take(5).cloned().collect::<Vec<_>>())
            .unwrap_or_default();
        let peak_sessions = {
            let mut locked = server.lock().expect("lock");
            let doc = Json::parse(&locked.handle_line(r#"{"op":"metrics"}"#).unwrap()).unwrap();
            num(&doc, "peak_sessions")
        };

        t.row(vec![
            name.clone(),
            sessions.to_string(),
            format!("{injects_per_sec:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.0}", sum("cycles")),
            format!("{:.0}", sum("firings")),
        ]);
        rep.push(
            Json::obj()
                .set("workload", name.as_str())
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", sum("cycles"))
                .set("firings", sum("firings"))
                .set("wall_ms", wall.as_secs_f64() * 1e3)
                .set("match_ms", sum("match_ms"))
                .set("redact_ms", sum("redact_ms"))
                .set("fire_ms", sum("fire_ms"))
                .set("apply_ms", sum("apply_ms"))
                .set("peak_wm", max("peak_wm"))
                .set("peak_conflict_set", max("peak_conflict_set"))
                .set("metrics_level", "full")
                .set("top_rules", top_rules)
                .set("transport", "tcp")
                .set("sessions", sessions)
                .set("frames", frames)
                .set("injected_wmes", injected)
                .set("injects_per_sec", injects_per_sec)
                .set("p50_frame_ms", p50)
                .set("p99_frame_ms", p99)
                .set("peak_sessions", peak_sessions),
        );
    }

    {
        let mut locked = server.lock().expect("lock");
        locked.handle_line(r#"{"op":"shutdown"}"#);
    }
    accept_thread.join().expect("accept thread");

    t.print();

    // ---- Phase 2: durability. Same fleet, WAL-enabled daemon, graceful
    // shutdown, then a timed cold-start recovery. `never` is the no-fsync
    // baseline; `always` is the full log-and-fsync-before-ack contract.
    println!(
        "\ndurability: {sessions} sessions per workload, WAL on, \
         persist via shutdown, then timed recovery\n"
    );
    let mut dt = Table::new(&[
        "workload",
        "wal_sync",
        "injects/s",
        "overhead %",
        "wal KiB",
        "recovery ms",
    ]);
    for scenario in &scenarios {
        let name = scenario.name().to_string();
        let source = scenario.source().to_string();
        let batches = Arc::new(fact_batches(scenario.as_ref()));

        let baseline = durable_leg(&name, &source, &batches, sessions, SyncPolicy::Never);
        let durable = durable_leg(&name, &source, &batches, sessions, SyncPolicy::Always);

        let rate = |leg: &DurableLeg| leg.injected as f64 / leg.wall.as_secs_f64().max(1e-9);
        let (base_rate, sync_rate) = (rate(&baseline), rate(&durable));
        // Throughput cost of fsync-per-frame relative to log-only; small
        // workloads are noisy, so clamp at 0 rather than report a
        // nonsense negative overhead.
        let overhead_pct = if base_rate > 0.0 {
            ((base_rate - sync_rate) / base_rate * 100.0).max(0.0)
        } else {
            0.0
        };

        let reports: Vec<&Json> = durable.results.iter().map(|r| &r.report).collect();
        let sum = |key: &str| reports.iter().map(|r| num(r, key)).sum::<f64>();
        let max = |key: &str| reports.iter().map(|r| num(r, key)).fold(0.0, f64::max);
        let top_rules = reports[0]
            .get("rules")
            .and_then(|r| r.as_arr())
            .map(|rules| rules.iter().take(5).cloned().collect::<Vec<_>>())
            .unwrap_or_default();

        dt.row(vec![
            name.clone(),
            "always".into(),
            format!("{sync_rate:.0}"),
            format!("{overhead_pct:.1}"),
            format!("{:.1}", durable.wal_bytes as f64 / 1024.0),
            format!("{:.3}", durable.recovery_ms),
        ]);
        rep.push(
            Json::obj()
                .set("workload", name.as_str())
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", sum("cycles"))
                .set("firings", sum("firings"))
                .set("wall_ms", durable.wall.as_secs_f64() * 1e3)
                .set("match_ms", sum("match_ms"))
                .set("redact_ms", sum("redact_ms"))
                .set("fire_ms", sum("fire_ms"))
                .set("apply_ms", sum("apply_ms"))
                .set("peak_wm", max("peak_wm"))
                .set("peak_conflict_set", max("peak_conflict_set"))
                .set("metrics_level", "full")
                .set("top_rules", top_rules)
                .set("transport", "tcp")
                .set("sessions", sessions)
                .set("injected_wmes", durable.injected)
                .set("injects_per_sec", sync_rate)
                .set("wal_sync", "always")
                .set("wal_bytes", durable.wal_bytes)
                .set("wal_overhead_pct", overhead_pct)
                .set("no_sync_injects_per_sec", base_rate)
                .set("recovery_ms", durable.recovery_ms)
                .set("sessions_recovered", durable.sessions_recovered),
        );
    }
    dt.print();

    rep.emit();
}
