//! `validate FILE...` — check `BENCH_*.json` files against the
//! `parulel-bench/v1` schema. Exit 0 when every file passes, 1 otherwise
//! (used by the CI bench-smoke job).

use parulel_bench::validate_bench_json;
use parulel_engine::Json;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate BENCH_FILE.json...");
        std::process::exit(1);
    }
    let mut failed = false;
    for f in &files {
        let verdict = std::fs::read_to_string(f)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|src| Json::parse(&src).map_err(|e| format!("not JSON: {e}")))
            .and_then(|doc| validate_bench_json(&doc));
        match verdict {
            Ok(()) => println!("{f}: ok"),
            Err(e) => {
                println!("{f}: FAIL: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
