//! Figure 2 — match-engine ablation: naive recompute vs RETE vs TREAT,
//! total run wall-clock as working-memory size grows.
//!
//! Expected shape: naive grows super-linearly (it recomputes every
//! conflict set from scratch each cycle); RETE and TREAT stay near-linear.
//! TREAT leads on the remove-heavy workload (market: every firing
//! retracts two orders, and TREAT deletes conflict-set entries directly
//! where RETE tears down beta tokens); RETE leads where partial joins are
//! reused across cycles (closure).
//!
//! Timing bin: metrics stay OFF so the measured wall times are on the
//! uninstrumented hot path (rows carry `"metrics_level": "off"`).

use parulel_bench::{ms, run_parallel, BenchReport, Table};
use parulel_engine::{EngineOptions, Json, MatcherKind};
use parulel_workloads::{Closure, Market, Scenario};

fn sweep(
    rep: &mut BenchReport,
    name: &str,
    workload: &str,
    make: &dyn Fn(usize) -> Box<dyn Scenario>,
    sizes: &[usize],
) {
    let mut t = Table::new(&["size", "WM0", "naive ms", "rete ms", "treat ms"]);
    for &size in sizes {
        let s = make(size);
        let wm0 = s.initial_wm().len();
        let mut cells = vec![size.to_string(), wm0.to_string()];
        for kind in [MatcherKind::Naive, MatcherKind::Rete, MatcherKind::Treat] {
            let opts = EngineOptions {
                matcher: kind,
                ..Default::default()
            };
            let r = run_parallel(s.as_ref(), opts);
            cells.push(ms(r.outcome.wall));
            rep.run_row(
                workload,
                s.program(),
                &r,
                vec![("size", Json::from(size)), ("initial_wm", Json::from(wm0))],
            );
        }
        t.row(cells);
    }
    println!("## {name}");
    t.print();
    println!();
}

fn main() {
    println!("Figure 2: match-engine ablation (PARULEL engine, total run wall time)\n");
    let mut rep = BenchReport::new("fig2", "match-engine ablation: naive vs RETE vs TREAT");
    sweep(
        &mut rep,
        "closure (add-heavy, reuse-friendly joins)",
        "closure",
        &|n| Box::new(Closure::new(n, n * 2, 7)),
        &[16, 32, 48, 64],
    );
    sweep(
        &mut rep,
        "market (remove-heavy)",
        "market",
        &|n| Box::new(Market::new(n, 8, 5)),
        &[40, 80, 120, 160],
    );
    rep.emit();
}
