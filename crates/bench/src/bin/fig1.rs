//! Figure 1 — claim C2: wall-clock speedup vs worker count, PARULEL
//! engine with the rule-partitioned parallel RETE matcher and parallel
//! RHS evaluation.
//!
//! Prints one series (rows = worker counts) per workload. On a single-core
//! host the curve is flat-to-down (thread overhead with no hardware
//! parallelism) — the *shape* claim needs a multicore host; the harness
//! sweeps identically either way.

use parulel_bench::{bench_scenarios, ms, run_parallel, Table};
use parulel_engine::{EngineOptions, MatcherKind};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    if !workers.contains(&cores) && cores > 1 {
        workers.push(cores);
    }
    println!(
        "Figure 1: speedup vs workers (host has {cores} hardware thread(s))\n\
         matcher = PartitionedRete(n), parallel_fire = true\n"
    );
    for s in bench_scenarios() {
        let mut t = Table::new(&["workers", "wall ms", "speedup", "cycles"]);
        let mut base: Option<f64> = None;
        for &n in &workers {
            let opts = EngineOptions {
                matcher: MatcherKind::PartitionedRete(n),
                ..Default::default()
            };
            let (out, _, _) = run_parallel(s.as_ref(), opts);
            let wall = out.wall.as_secs_f64();
            let b = *base.get_or_insert(wall);
            t.row(vec![
                n.to_string(),
                ms(out.wall),
                format!("{:.2}x", b / wall.max(1e-9)),
                out.cycles.to_string(),
            ]);
        }
        println!("## {}", s.name());
        t.print();
        println!();
    }
}
