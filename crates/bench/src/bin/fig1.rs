//! Figure 1 — claim C2: wall-clock speedup vs worker count, PARULEL
//! engine with the rule-partitioned parallel RETE matcher and parallel
//! RHS evaluation.
//!
//! Prints one series (rows = worker counts) per workload. On a single-core
//! host the curve is flat-to-down (thread overhead with no hardware
//! parallelism) — the *shape* claim needs a multicore host; the harness
//! sweeps identically either way.
//!
//! Timing bins run with metrics collection OFF so the measured wall times
//! stay on the uninstrumented hot path; their JSON rows therefore carry
//! `"metrics_level": "off"` and an empty `top_rules` table.

use parulel_bench::{bench_scenarios, ms, run_parallel, BenchReport, Table};
use parulel_engine::{EngineOptions, Json, MatcherKind};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    if !workers.contains(&cores) && cores > 1 {
        workers.push(cores);
    }
    println!(
        "Figure 1: speedup vs workers (host has {cores} hardware thread(s))\n\
         matcher = PartitionedRete(n), parallel_fire = true\n"
    );
    let mut rep = BenchReport::new("fig1", "speedup vs workers (PartitionedRete(n))");
    for s in bench_scenarios() {
        let mut t = Table::new(&["workers", "wall ms", "speedup", "cycles"]);
        let mut base: Option<f64> = None;
        for &n in &workers {
            let opts = EngineOptions {
                matcher: MatcherKind::PartitionedRete(n),
                ..Default::default()
            };
            let r = run_parallel(s.as_ref(), opts);
            let wall = r.outcome.wall.as_secs_f64();
            let b = *base.get_or_insert(wall);
            let speedup = b / wall.max(1e-9);
            t.row(vec![
                n.to_string(),
                ms(r.outcome.wall),
                format!("{speedup:.2}x"),
                r.outcome.cycles.to_string(),
            ]);
            rep.run_row(
                s.name(),
                s.program(),
                &r,
                vec![
                    ("workers", Json::from(n)),
                    ("speedup", Json::from(speedup)),
                ],
            );
        }
        println!("## {}", s.name());
        t.print();
        println!();
    }
    rep.emit();
}
