//! # parulel-bench
//!
//! The experiment harness reproducing the PARULEL evaluation (see
//! DESIGN.md §4 for the reconstructed table/figure index). One binary per
//! table/figure:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | benchmark characteristics |
//! | `table2` | many-firing vs one-firing semantics (claim C1) |
//! | `fig1` | speedup vs workers (claim C2) |
//! | `fig2` | match-engine ablation: naive / RETE / TREAT |
//! | `table3` | cycle-phase breakdown & redaction cost (claim C3) |
//! | `fig3` | copy-and-constrain (claim C4) |
//! | `table4` | interference guard vs meta-rules |
//! | `joinbench` | match hot path under skew: join throughput per matcher/shard count, incremental vs rebuilt conflict-set union, auto copy-and-constrain |
//!
//! Criterion microbenches live in `benches/micro.rs`.

#![warn(missing_docs)]

pub mod report;

use parulel_core::WorkingMemory;
use parulel_engine::{
    Engine, EngineMetrics, EngineOptions, FiringPolicy, Outcome, RunStats, Strategy,
};
use parulel_match::MatcherMetrics;
use parulel_workloads::Scenario;
use std::time::Duration;

pub use report::{results_dir, validate_bench_json, BenchReport, BENCH_SCHEMA};

/// Everything one measured engine run produces, bundled so the harness
/// binaries can feed both the text tables and the JSON report from a
/// single run.
pub struct RunResult {
    /// Run outcome (cycles, firings, wall time, how it ended).
    pub outcome: Outcome,
    /// Phase timings and engine counters.
    pub stats: RunStats,
    /// Observability counters (populated per `EngineOptions::metrics`).
    pub metrics: EngineMetrics,
    /// Matcher internals sample taken after the run.
    pub matcher: MatcherMetrics,
    /// Final working memory.
    pub wm: WorkingMemory,
}

/// One measured run of a scenario under an arbitrary firing policy;
/// panics if validation fails so a bench can never silently report
/// numbers for a wrong answer. The tables compare *policies* over the
/// one engine core, not engine implementations.
pub fn run_policy(s: &dyn Scenario, policy: FiringPolicy, opts: EngineOptions) -> RunResult {
    let mut e = Engine::with_policy(s.program(), s.initial_wm(), policy, opts);
    let outcome = e.run().expect("engine run failed");
    s.validate(e.wm())
        .unwrap_or_else(|err| panic!("{}: validation failed: {err}", s.name()));
    RunResult {
        outcome,
        stats: e.stats().clone(),
        metrics: e.metrics().clone(),
        matcher: e.matcher_metrics(),
        wm: e.into_wm(),
    }
}

/// One full PARULEL (fire-all) run of a scenario.
pub fn run_parallel(s: &dyn Scenario, opts: EngineOptions) -> RunResult {
    run_policy(s, FiringPolicy::fire_all(), opts)
}

/// One serial OPS5 (select-one) run of a scenario (also validated).
pub fn run_serial(s: &dyn Scenario, strategy: Strategy, opts: EngineOptions) -> RunResult {
    run_policy(s, FiringPolicy::SelectOne(strategy), opts)
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// A fixed-width text table (the output format of every harness binary).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The scenario set used by the table/figure binaries, at "bench" sizes
/// (larger than the test defaults).
pub fn bench_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(parulel_workloads::Closure::new(60, 110, 7)),
        Box::new(parulel_workloads::LabelProp::new(120, 150, 11)),
        Box::new(parulel_workloads::Seating::new(8, 16, 3)),
        Box::new(parulel_workloads::Market::new(120, 16, 5)),
        Box::new(parulel_workloads::Waltz::new(60, 6, 13)),
        Box::new(parulel_workloads::WaltzDb::new(6, 6, 5, 17)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }

    #[test]
    fn runners_validate() {
        let s = parulel_workloads::Closure::new(10, 14, 3);
        let r = run_parallel(&s, EngineOptions::default());
        assert!(r.outcome.quiescent);
        assert!(r.stats.firings > 0);
        let r = run_serial(&s, Strategy::Lex, EngineOptions::default());
        assert!(r.outcome.quiescent);
        let r = run_policy(
            &s,
            FiringPolicy::FireAll {
                meta: true,
                guard: parulel_engine::GuardMode::WriteWrite,
            },
            EngineOptions::default(),
        );
        assert!(r.outcome.quiescent);
    }
}
