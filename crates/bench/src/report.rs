//! Machine-readable benchmark output.
//!
//! Every harness binary emits, next to its human-readable table, a
//! versioned `BENCH_<id>.json` so results can be diffed, plotted, and
//! checked in CI without scraping text. The schema
//! ([`BENCH_SCHEMA`]) is validated by [`validate_bench_json`] (also
//! exposed as the `validate` binary).
//!
//! ```text
//! { "schema": "parulel-bench/v1",
//!   "id": "fig1", "title": "...", "host_threads": 8,
//!   "rows": [ { "workload": "...", "matcher": "...", "shards": 1,
//!               "cycles": 42, "firings": 900, "wall_ms": 1.5,
//!               "match_ms": ..., "redact_ms": ..., "fire_ms": ...,
//!               "apply_ms": ..., "peak_wm": ..., "peak_conflict_set": ...,
//!               "metrics_level": "rules",
//!               "top_rules": [ {"rule": "...", "matched": ..., "fired": ...,
//!                               "redacted_meta": ..., "redacted_guard": ...,
//!                               "rhs_ms": ...} ],
//!               ... }, ... ] }
//! ```
//!
//! Rows from the simulated machine (`fig1b`) use `"matcher": "simulated"`
//! and carry model fields (`pes`, `predicted_speedup`, …) instead of the
//! measured-run columns.

use crate::RunResult;
use parulel_core::Program;
use parulel_engine::Json;
use std::path::PathBuf;

/// Schema tag stamped into every `BENCH_<id>.json`.
pub const BENCH_SCHEMA: &str = "parulel-bench/v1";

/// How many rules the per-row `top_rules` table keeps.
pub const TOP_K: usize = 5;

/// Where the JSON reports land: `$PARULEL_RESULTS_DIR`, defaulting to
/// `results/` under the current directory (created on demand).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PARULEL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Accumulates rows for one `BENCH_<id>.json`.
pub struct BenchReport {
    id: &'static str,
    title: String,
    rows: Vec<Json>,
}

impl BenchReport {
    /// Starts an empty report for the binary `id` (`fig1`, `table3`, …).
    pub fn new(id: &'static str, title: &str) -> Self {
        BenchReport {
            id,
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Use [`run_row`](Self::run_row) for measured
    /// engine runs; hand-built rows (e.g. simulation predictions) must
    /// still carry `workload` and `matcher`.
    pub fn push(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// The standard row for a measured engine run, plus any
    /// caller-specific `extra` fields appended after the common columns.
    pub fn run_row(
        &mut self,
        workload: &str,
        program: &Program,
        r: &RunResult,
        extra: Vec<(&str, Json)>,
    ) {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let top: Vec<Json> = r
            .metrics
            .top_rules(program, TOP_K)
            .into_iter()
            .map(|(name, m)| {
                Json::obj()
                    .set("rule", name)
                    .set("matched", m.matched)
                    .set("fired", m.fired)
                    .set("redacted_meta", m.redacted_meta)
                    .set("redacted_guard", m.redacted_guard)
                    .set("rhs_ms", ms(m.rhs_time))
            })
            .collect();
        let mut row = Json::obj()
            .set("workload", workload)
            .set("matcher", r.matcher.kind)
            .set("shards", r.matcher.shards)
            .set("cycles", r.outcome.cycles)
            .set("firings", r.outcome.firings)
            .set("wall_ms", ms(r.outcome.wall))
            .set("match_ms", ms(r.stats.match_time))
            .set("redact_ms", ms(r.stats.redact_time))
            .set("fire_ms", ms(r.stats.fire_time))
            .set("apply_ms", ms(r.stats.apply_time))
            // At MetricsLevel::Off the dedicated peak counters stay 0;
            // the final WM size and RunStats' peak-eligible width are
            // always-on lower bounds that keep the columns meaningful.
            .set("peak_wm", r.metrics.peak_wm.max(r.wm.len()))
            .set(
                "peak_conflict_set",
                r.metrics.peak_conflict_set.max(r.stats.peak_eligible),
            )
            .set(
                "metrics_level",
                format!("{:?}", r.metrics.level).to_lowercase(),
            )
            .set("top_rules", top);
        for (k, v) in extra {
            row = row.set(k, v);
        }
        self.rows.push(row);
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> Json {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Json::obj()
            .set("schema", BENCH_SCHEMA)
            .set("id", self.id)
            .set("title", self.title.as_str())
            .set("host_threads", threads)
            .set("rows", self.rows.clone())
    }

    /// Writes `BENCH_<id>.json` under [`results_dir`] and returns the
    /// path. Creates the directory if needed.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }

    /// [`write`](Self::write) + a stdout note; exits 1 on IO failure so a
    /// harness binary never reports success without its JSON artifact.
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write BENCH_{}.json: {e}", self.id);
                std::process::exit(1);
            }
        }
    }
}

fn expect_str(row: &Json, key: &str) -> Result<(), String> {
    match row.get(key) {
        Some(v) if v.as_str().is_some() => Ok(()),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn expect_num(row: &Json, key: &str) -> Result<(), String> {
    match row.get(key) {
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 => Ok(()),
            Some(n) => Err(format!("field {key:?} is negative ({n})")),
            None => Err(format!("field {key:?} is not a number")),
        },
        None => Err(format!("missing field {key:?}")),
    }
}

/// Checks that `doc` is a well-formed `parulel-bench/v1` report: schema
/// tag, id/title, and per-row required fields (measured rows carry the
/// full column set; `"matcher": "simulated"` rows only the model fields).
pub fn validate_bench_json(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == BENCH_SCHEMA => {}
        Some(s) => return Err(format!("schema is {s:?}, expected {BENCH_SCHEMA:?}")),
        None => return Err("missing field \"schema\"".into()),
    }
    expect_str(doc, "id")?;
    expect_str(doc, "title")?;
    expect_num(doc, "host_threads")?;
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_arr())
        .ok_or("missing or non-array field \"rows\"")?;
    if rows.is_empty() {
        return Err("report has no rows".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |e: String| format!("row {i}: {e}");
        expect_str(row, "workload").map_err(ctx)?;
        expect_str(row, "matcher").map_err(ctx)?;
        if row.get("matcher").and_then(|v| v.as_str()) == Some("simulated") {
            expect_num(row, "pes").map_err(ctx)?;
            expect_num(row, "predicted_speedup").map_err(ctx)?;
            continue;
        }
        // Match-layer micro-bench rows (joinbench) drive matchers
        // directly — no engine run, so no cycle/firing/phase columns.
        // `mode` names the conflict-set merge path that was measured.
        if row.get("adds_per_sec").is_some() {
            expect_str(row, "mode").map_err(ctx)?;
            for key in ["shards", "adds_per_sec", "removes_per_sec", "wmes", "cs_peak"] {
                expect_num(row, key).map_err(ctx)?;
            }
            // Alpha-sharing ablation rows carry the shared-network
            // counters as a set: a row with any of them must have all
            // three, so plots never mix counted and uncounted runs.
            if ["alpha_nodes", "alpha_subscriptions", "alpha_share_hits"]
                .iter()
                .any(|k| row.get(k).is_some())
            {
                for key in ["alpha_nodes", "alpha_subscriptions", "alpha_share_hits"] {
                    expect_num(row, key).map_err(ctx)?;
                }
            }
            continue;
        }
        for key in [
            "shards",
            "cycles",
            "firings",
            "wall_ms",
            "match_ms",
            "redact_ms",
            "fire_ms",
            "apply_ms",
            "peak_wm",
            "peak_conflict_set",
        ] {
            expect_num(row, key).map_err(ctx)?;
        }
        expect_str(row, "metrics_level").map_err(ctx)?;
        // Durability rows (loadgen phase 2) carry the WAL column set:
        // which fsync policy ran, how big the persisted log was, the
        // throughput cost vs `--wal-sync never`, and cold-start
        // recovery time.
        if row.get("wal_sync").is_some() {
            expect_str(row, "wal_sync").map_err(ctx)?;
            for key in ["wal_bytes", "wal_overhead_pct", "recovery_ms", "sessions_recovered"] {
                expect_num(row, key).map_err(ctx)?;
            }
        }
        let top = row
            .get("top_rules")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| ctx("missing or non-array field \"top_rules\"".into()))?;
        for r in top {
            expect_str(r, "rule").map_err(&ctx)?;
            for key in ["matched", "fired", "redacted_meta", "redacted_guard", "rhs_ms"] {
                expect_num(r, key).map_err(&ctx)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, MetricsLevel};
    use parulel_workloads::Scenario;

    fn small_report() -> BenchReport {
        let s = parulel_workloads::Closure::new(10, 14, 3);
        let r = crate::run_parallel(
            &s,
            EngineOptions {
                metrics: MetricsLevel::Rules,
                ..Default::default()
            },
        );
        let mut rep = BenchReport::new("unit", "unit-test report");
        rep.run_row(s.name(), s.program(), &r, vec![("speedup", Json::from(1.0))]);
        rep
    }

    #[test]
    fn run_row_produces_valid_schema() {
        let rep = small_report();
        let doc = rep.to_json();
        validate_bench_json(&doc).unwrap();
        // and it survives a render/parse round-trip
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        validate_bench_json(&reparsed).unwrap();
        let rows = reparsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(
            rows[0].get("metrics_level").unwrap().as_str(),
            Some("rules")
        );
        assert!(rows[0].get("firings").unwrap().as_f64().unwrap() > 0.0);
        assert!(!rows[0].get("top_rules").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        let cases = [
            (Json::obj(), "missing field \"schema\""),
            (
                Json::obj().set("schema", "parulel-bench/v0"),
                "schema is \"parulel-bench/v0\"",
            ),
        ];
        for (doc, want) in cases {
            let err = validate_bench_json(&doc).unwrap_err();
            assert!(err.contains(want), "{err}");
        }
        // a row missing a required numeric column
        let doc = Json::obj()
            .set("schema", BENCH_SCHEMA)
            .set("id", "x")
            .set("title", "x")
            .set("host_threads", 1usize)
            .set("rows", vec![Json::obj().set("workload", "w").set("matcher", "rete")]);
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("row 0") && err.contains("shards"), "{err}");
    }

    #[test]
    fn wal_rows_require_the_durability_columns() {
        // A full measured row plus the WAL markers, as loadgen's
        // durability phase emits.
        let wal_row = |complete: bool| {
            let mut row = Json::obj()
                .set("workload", "closure")
                .set("matcher", "rete")
                .set("shards", 1usize)
                .set("cycles", 4usize)
                .set("firings", 9usize)
                .set("wall_ms", 1.0)
                .set("match_ms", 0.5)
                .set("redact_ms", 0.1)
                .set("fire_ms", 0.1)
                .set("apply_ms", 0.1)
                .set("peak_wm", 30usize)
                .set("peak_conflict_set", 8usize)
                .set("metrics_level", "full")
                .set("top_rules", Vec::<Json>::new())
                .set("wal_sync", "always")
                .set("wal_bytes", 4096usize)
                .set("wal_overhead_pct", 12.5)
                .set("sessions_recovered", 8usize);
            if complete {
                row = row.set("recovery_ms", 0.8);
            }
            row
        };
        let doc = |row: Json| {
            Json::obj()
                .set("schema", BENCH_SCHEMA)
                .set("id", "serve")
                .set("title", "serve")
                .set("host_threads", 1usize)
                .set("rows", vec![row])
        };
        validate_bench_json(&doc(wal_row(true))).unwrap();
        let err = validate_bench_json(&doc(wal_row(false))).unwrap_err();
        assert!(err.contains("recovery_ms"), "{err}");
    }

    #[test]
    fn joinbench_rows_use_the_micro_bench_fields() {
        let row = |complete: bool| {
            let mut row = Json::obj()
                .set("workload", "hotjoin")
                .set("matcher", "partitioned-rete")
                .set("mode", "incremental")
                .set("shards", 4usize)
                .set("adds_per_sec", 100000.0)
                .set("removes_per_sec", 90000.0)
                .set("wmes", 1200usize);
            if complete {
                row = row.set("cs_peak", 30000usize);
            }
            row
        };
        let doc = |row: Json| {
            Json::obj()
                .set("schema", BENCH_SCHEMA)
                .set("id", "joinbench")
                .set("title", "joinbench")
                .set("host_threads", 1usize)
                .set("rows", vec![row])
        };
        validate_bench_json(&doc(row(true))).unwrap();
        let err = validate_bench_json(&doc(row(false))).unwrap_err();
        assert!(err.contains("cs_peak"), "{err}");

        // alpha counters travel as a full set: one without the others
        // is rejected
        let partial = row(true).set("alpha_share_hits", 42usize);
        let err = validate_bench_json(&doc(partial)).unwrap_err();
        assert!(err.contains("alpha_nodes"), "{err}");
        let full = row(true)
            .set("alpha_nodes", 2usize)
            .set("alpha_subscriptions", 32usize)
            .set("alpha_share_hits", 18000usize);
        validate_bench_json(&doc(full)).unwrap();
    }

    #[test]
    fn simulated_rows_use_the_model_fields() {
        let doc = Json::obj()
            .set("schema", BENCH_SCHEMA)
            .set("id", "fig1b")
            .set("title", "sim")
            .set("host_threads", 1usize)
            .set(
                "rows",
                vec![Json::obj()
                    .set("workload", "closure")
                    .set("matcher", "simulated")
                    .set("pes", 8usize)
                    .set("predicted_speedup", 3.5)],
            );
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn write_lands_in_results_dir_override() {
        let dir = std::env::temp_dir().join(format!("parulel-bench-test-{}", std::process::id()));
        // results_dir() reads the env var; set it for this test only.
        // (Tests in this module run single-threaded per process by default,
        // but guard against parallel test runners by using a unique dir
        // and restoring the old value.)
        let old = std::env::var_os("PARULEL_RESULTS_DIR");
        std::env::set_var("PARULEL_RESULTS_DIR", &dir);
        let rep = small_report();
        let path = rep.write().unwrap();
        match old {
            Some(v) => std::env::set_var("PARULEL_RESULTS_DIR", v),
            None => std::env::remove_var("PARULEL_RESULTS_DIR"),
        }
        assert!(path.ends_with("BENCH_unit.json"), "{}", path.display());
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate_bench_json(&doc).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
