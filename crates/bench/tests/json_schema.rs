//! Schema-stability tests for the machine-readable bench output.
//!
//! `tests/golden/BENCH_golden.json` is the checked-in exemplar of
//! `parulel-bench/v1`. If the emitter's column set drifts from the golden
//! file, these tests fail — the fix is either to restore the column or to
//! bump the schema version *and* the golden file together.

use parulel_bench::{run_parallel, validate_bench_json, BenchReport};
use parulel_engine::{EngineOptions, Json, MetricsLevel};
use parulel_workloads::Scenario;

fn golden() -> Json {
    let src = include_str!("golden/BENCH_golden.json");
    Json::parse(src).expect("golden file parses")
}

fn fresh_report() -> Json {
    let s = parulel_workloads::Closure::new(10, 14, 3);
    let r = run_parallel(
        &s,
        EngineOptions {
            metrics: MetricsLevel::Rules,
            ..Default::default()
        },
    );
    let mut rep = BenchReport::new("golden", "schema test");
    rep.run_row(s.name(), s.program(), &r, vec![]);
    // round-trip through the wire format, exactly as a consumer sees it
    Json::parse(&rep.to_json().pretty()).expect("emitted report parses")
}

fn keys(j: &Json) -> Vec<String> {
    let mut k: Vec<String> = j.keys().into_iter().map(|s| s.to_string()).collect();
    k.sort();
    k
}

#[test]
fn golden_file_validates() {
    validate_bench_json(&golden()).unwrap();
}

#[test]
fn emitted_reports_validate() {
    validate_bench_json(&fresh_report()).unwrap();
}

#[test]
fn emitted_columns_match_the_golden_schema() {
    let golden_doc = golden();
    let fresh_doc = fresh_report();
    assert_eq!(
        keys(&golden_doc),
        keys(&fresh_doc),
        "top-level report fields drifted from the golden schema"
    );

    let golden_row = &golden_doc.get("rows").unwrap().as_arr().unwrap()[0];
    let fresh_row = &fresh_doc.get("rows").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        keys(golden_row),
        keys(fresh_row),
        "measured-row columns drifted from the golden schema"
    );

    let golden_rule = &golden_row.get("top_rules").unwrap().as_arr().unwrap()[0];
    let fresh_rule = &fresh_row.get("top_rules").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        keys(golden_rule),
        keys(fresh_rule),
        "top_rules columns drifted from the golden schema"
    );
}

#[test]
fn off_level_rows_still_validate() {
    // Timing bins (fig1/fig2/fig3) emit rows with metrics off: peaks fall
    // back to always-on counters and top_rules is empty — still valid.
    let s = parulel_workloads::Closure::new(10, 14, 3);
    let r = run_parallel(&s, EngineOptions::default());
    let mut rep = BenchReport::new("golden", "off-level row");
    rep.run_row(s.name(), s.program(), &r, vec![]);
    let doc = Json::parse(&rep.to_json().pretty()).unwrap();
    validate_bench_json(&doc).unwrap();
    let row = &doc.get("rows").unwrap().as_arr().unwrap()[0];
    assert_eq!(row.get("metrics_level").unwrap().as_str(), Some("off"));
    assert!(row.get("top_rules").unwrap().as_arr().unwrap().is_empty());
    // the always-on fallbacks keep the peak columns meaningful
    assert!(row.get("peak_wm").unwrap().as_f64().unwrap() > 0.0);
    assert!(row.get("peak_conflict_set").unwrap().as_f64().unwrap() > 0.0);
}
