//! PARULEL's parallel match: rule-level partitioning across workers.
//!
//! Each worker owns a private matcher (RETE or TREAT) built over a subset
//! of the program's rules; every working-memory delta is applied to all
//! workers **in parallel** (a rayon fork-join per batch), and the conflict
//! set is the union of the workers' sets.
//!
//! Rule-level partitioning was the decomposition of choice for
//! production-system machines of the PARULEL era (DADO, PSM): no shared
//! match state, no synchronization inside the match phase, perfect
//! determinism. Its weakness — one hot rule can dominate a worker — is
//! exactly what the *copy-and-constrain* transform (`parulel-engine`)
//! addresses by splitting hot rules into hash-disjoint copies first.

use crate::{Matcher, Rete, Treat};
use parulel_core::{ConflictSet, Program, RuleId, Wme};
use rayon::prelude::*;
use std::sync::Arc;

/// A matcher that distributes rules across `n` inner matchers and applies
/// deltas to them in parallel.
pub struct Partitioned<M: Matcher> {
    workers: Vec<M>,
    merged: ConflictSet,
    dirty: bool,
}

/// Round-robin rule partition: rule *i* goes to worker *i mod n*.
pub fn round_robin(num_rules: usize, n: usize) -> Vec<Vec<RuleId>> {
    let n = n.max(1);
    let mut parts = vec![Vec::new(); n];
    for i in 0..num_rules {
        parts[i % n].push(RuleId(i as u32));
    }
    parts
}

impl<M: Matcher> Partitioned<M> {
    /// Builds a partitioned matcher with `n` workers, constructing each
    /// worker with `make(program, rules)`.
    ///
    /// `n == 0` is clamped to one worker (a zero-worker matcher cannot
    /// exist); callers that consider `0` an input error must reject it
    /// themselves — the CLI does. The count actually in effect is always
    /// visible via [`num_workers`](Self::num_workers) and
    /// [`metrics`](Matcher::metrics), so reports never claim a shard
    /// count that was never used.
    pub fn new_with(
        program: Arc<Program>,
        n: usize,
        make: impl Fn(Arc<Program>, Vec<RuleId>) -> M,
    ) -> Self {
        let parts = round_robin(program.rules().len(), n);
        let workers = parts
            .into_iter()
            .map(|rules| make(program.clone(), rules))
            .collect();
        Partitioned {
            workers,
            merged: ConflictSet::new(),
            dirty: true,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

impl Partitioned<Rete> {
    /// `n` RETE workers over `program`.
    pub fn rete(program: Arc<Program>, n: usize) -> Self {
        Self::new_with(program, n, Rete::with_rules)
    }
}

impl Partitioned<Treat> {
    /// `n` TREAT workers over `program`.
    pub fn treat(program: Arc<Program>, n: usize) -> Self {
        Self::new_with(program, n, Treat::with_rules)
    }
}

impl<M: Matcher> Matcher for Partitioned<M> {
    fn add_wme(&mut self, wme: &Wme) {
        for w in &mut self.workers {
            w.add_wme(wme);
        }
        self.dirty = true;
    }

    fn remove_wme(&mut self, wme: &Wme) {
        for w in &mut self.workers {
            w.remove_wme(wme);
        }
        self.dirty = true;
    }

    fn apply(&mut self, removed: &[Wme], added: &[Wme]) {
        self.workers.par_iter_mut().for_each(|w| {
            w.apply(removed, added);
        });
        self.dirty = true;
    }

    fn seed(&mut self, wm: &parulel_core::WorkingMemory) {
        let all: Vec<Wme> = wm.iter().cloned().collect();
        self.workers.par_iter_mut().for_each(|w| {
            for wme in &all {
                w.add_wme(wme);
            }
        });
        self.dirty = true;
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        if self.dirty {
            let mut merged = ConflictSet::new();
            for w in &mut self.workers {
                for inst in w.conflict_set().iter() {
                    merged.insert(inst.clone());
                }
            }
            self.merged = merged;
            self.dirty = false;
        }
        &self.merged
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let per_shard: Vec<crate::MatcherMetrics> =
            self.workers.iter().map(|w| w.metrics()).collect();
        let mut m = crate::MatcherMetrics {
            kind: match per_shard.first().map(|s| s.kind) {
                Some("rete") => "partitioned-rete",
                Some("treat") => "partitioned-treat",
                _ => "partitioned",
            },
            shards: self.workers.len(),
            // Rule partitions are disjoint, so sums across shards are
            // exact totals (and `conflict_set` stays correct even when
            // the merged cache is stale).
            rules: per_shard.iter().map(|s| s.rules).sum(),
            conflict_set: per_shard.iter().map(|s| s.conflict_set).sum(),
            alpha_wmes: per_shard.iter().map(|s| s.alpha_wmes).sum(),
            beta_tokens: per_shard.iter().map(|s| s.beta_tokens).sum(),
            negative_counts: per_shard.iter().map(|s| s.negative_counts).sum(),
            reenumerations: per_shard.iter().map(|s| s.reenumerations).sum(),
            recomputes: per_shard.iter().map(|s| s.recomputes).sum(),
            per_shard: Vec::new(),
        };
        m.per_shard = per_shard;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveMatcher;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    const SRC: &str = "
        (literalize a x)
        (literalize b y)
        (p r1 (a ^x <v>) (b ^y <v>) --> (halt))
        (p r2 (a ^x <v>) -(b ^y <v>) --> (halt))
        (p r3 (b ^y { > 5 }) --> (halt))
        (p r4 (a ^x <v>) (a ^x <v>) --> (halt))";

    fn setup() -> (Arc<Program>, WorkingMemory) {
        let p = Arc::new(compile(SRC).unwrap());
        let mut wm = WorkingMemory::new(&p.classes);
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        for v in 0..8 {
            wm.insert(a, vec![Value::Int(v)]);
            if v % 2 == 0 {
                wm.insert(b, vec![Value::Int(v)]);
            }
        }
        (p, wm)
    }

    #[test]
    fn partitioned_equals_monolithic() {
        let (p, wm) = setup();
        let mut reference = NaiveMatcher::new(p.clone());
        reference.seed(&wm);
        let want = reference.conflict_set().sorted_keys();
        for n in [1, 2, 3, 8] {
            let mut m = Partitioned::rete(p.clone(), n);
            m.seed(&wm);
            assert_eq!(m.conflict_set().sorted_keys(), want, "rete n={n}");
            let mut m = Partitioned::treat(p.clone(), n);
            m.seed(&wm);
            assert_eq!(m.conflict_set().sorted_keys(), want, "treat n={n}");
        }
    }

    #[test]
    fn batch_apply_matches_single_steps() {
        let (p, wm) = setup();
        let all: Vec<Wme> = wm.sorted_snapshot();
        let mut batch = Partitioned::rete(p.clone(), 3);
        batch.apply(&[], &all);
        let mut single = Partitioned::rete(p.clone(), 3);
        for w in &all {
            single.add_wme(w);
        }
        assert_eq!(
            batch.conflict_set().sorted_keys(),
            single.conflict_set().sorted_keys()
        );
        // and removal of half the WMEs
        let (dead, _live) = all.split_at(all.len() / 2);
        batch.apply(dead, &[]);
        for w in dead {
            single.remove_wme(w);
        }
        assert_eq!(
            batch.conflict_set().sorted_keys(),
            single.conflict_set().sorted_keys()
        );
    }

    #[test]
    fn round_robin_covers_all_rules() {
        let parts = round_robin(10, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
        let mut all: Vec<u32> = parts.iter().flatten().map(|r| r.0).collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_rules_is_fine() {
        let (p, wm) = setup();
        let mut m = Partitioned::rete(p.clone(), 64);
        m.seed(&wm);
        assert!(!m.conflict_set().is_empty());
        assert_eq!(m.num_workers(), 64);
    }
}
