//! PARULEL's parallel match: rule-level partitioning across workers.
//!
//! Each worker owns a private matcher (RETE or TREAT) built over a subset
//! of the program's rules; every working-memory delta is applied to all
//! workers **in parallel** (a rayon fork-join per batch), and the conflict
//! set is the union of the workers' sets.
//!
//! Rule-level partitioning was the decomposition of choice for
//! production-system machines of the PARULEL era (DADO, PSM): no shared
//! match state, no synchronization inside the match phase, perfect
//! determinism. Its weakness — one hot rule can dominate a worker — is
//! exactly what the *copy-and-constrain* transform (`parulel-engine`)
//! addresses by splitting hot rules into hash-disjoint copies first.

use crate::{Matcher, Rete, Treat};
use parulel_core::{ConflictSet, CsEvent, Program, RuleId, Wme, WorkingMemory};
use parulel_vm::{EvalMode, Evaluator};
use rayon::prelude::*;
use std::sync::Arc;

/// A matcher that distributes rules across `n` inner matchers and applies
/// deltas to them in parallel.
///
/// The merged conflict set is maintained **incrementally**: after every
/// delta each worker's conflict-set journal ([`Matcher::drain_cs_events`])
/// is absorbed, and `conflict_set()` replays the buffered events against
/// the merged set instead of re-unioning every worker's set from scratch.
/// Rule partitions are disjoint, so workers can never disagree about a
/// key and in-order replay yields exactly the union. Workers that don't
/// journal (the trait default) force a full rebuild, as does
/// [`replace_rules`](Matcher::replace_rules).
pub struct Partitioned<M: Matcher> {
    workers: Vec<M>,
    /// Which rules each worker owns (parallel to `workers`).
    assignments: Vec<Vec<RuleId>>,
    merged: ConflictSet,
    /// Buffered journal events per worker, not yet replayed into `merged`.
    pending: Vec<Vec<CsEvent>>,
    dirty: bool,
    /// The merged set cannot be patched (journals unavailable or state
    /// replaced wholesale); rebuild it from the workers' sets.
    rebuild: bool,
    /// Diagnostic toggle: treat every merge as a rebuild (the pre-journal
    /// behavior). Exists so benchmarks can price the difference.
    force_full: bool,
    merge_rebuilds: u64,
    merge_patch_events: u64,
}

/// Round-robin rule partition: rule *i* goes to worker *i mod n*.
pub fn round_robin(num_rules: usize, n: usize) -> Vec<Vec<RuleId>> {
    let n = n.max(1);
    let mut parts = vec![Vec::new(); n];
    for i in 0..num_rules {
        parts[i % n].push(RuleId(i as u32));
    }
    parts
}

impl<M: Matcher> Partitioned<M> {
    /// Builds a partitioned matcher with `n` workers, constructing each
    /// worker with `make(program, rules)`.
    ///
    /// `n == 0` is clamped to one worker (a zero-worker matcher cannot
    /// exist); callers that consider `0` an input error must reject it
    /// themselves — the CLI does. The count actually in effect is always
    /// visible via [`num_workers`](Self::num_workers) and
    /// [`metrics`](Matcher::metrics), so reports never claim a shard
    /// count that was never used.
    pub fn new_with(
        program: Arc<Program>,
        n: usize,
        make: impl Fn(Arc<Program>, Vec<RuleId>) -> M,
    ) -> Self {
        let parts = round_robin(program.rules().len(), n);
        let workers: Vec<M> = parts
            .iter()
            .map(|rules| make(program.clone(), rules.clone()))
            .collect();
        let n = workers.len();
        Partitioned {
            workers,
            assignments: parts,
            merged: ConflictSet::new(),
            pending: vec![Vec::new(); n],
            dirty: true,
            rebuild: true,
            force_full: false,
            merge_rebuilds: 0,
            merge_patch_events: 0,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// When set, every merge falls back to the full per-worker re-union
    /// (the pre-incremental behavior). For benchmarking the incremental
    /// union against its predecessor; leave off otherwise.
    pub fn set_force_full_merge(&mut self, on: bool) {
        self.force_full = on;
    }

    /// Lifetime merge counters: `(full rebuilds, journal events replayed)`.
    pub fn merge_stats(&self) -> (u64, u64) {
        (self.merge_rebuilds, self.merge_patch_events)
    }

    /// Absorbs each worker's conflict-set journal into the per-worker
    /// pending buffers. A worker with no journal support forces a rebuild;
    /// a worker with an empty journal contributes nothing — in particular,
    /// a quiescent delta leaves the merged set clean (`dirty` stays
    /// false), so `conflict_set()` is free.
    fn absorb_deltas(&mut self) {
        for (i, w) in self.workers.iter_mut().enumerate() {
            match w.drain_cs_events() {
                None => {
                    self.rebuild = true;
                    self.dirty = true;
                }
                Some(events) => {
                    if !events.is_empty() {
                        self.dirty = true;
                        self.pending[i].extend(events);
                    }
                }
            }
        }
    }
}

impl Partitioned<Rete> {
    /// `n` RETE workers over `program`.
    pub fn rete(program: Arc<Program>, n: usize) -> Self {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        Self::rete_eval(program, n, eval)
    }

    /// `n` RETE workers sharing one compiled [`Evaluator`] (each worker
    /// gets a clone; the rule code objects themselves are `Arc`-shared).
    pub fn rete_eval(program: Arc<Program>, n: usize, eval: Evaluator) -> Self {
        Self::new_with(program, n, move |p, rules| {
            Rete::with_rules_eval(p, rules, true, eval.clone())
        })
    }
}

impl Partitioned<Treat> {
    /// `n` TREAT workers over `program`.
    pub fn treat(program: Arc<Program>, n: usize) -> Self {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        Self::treat_eval(program, n, eval)
    }

    /// `n` TREAT workers sharing one compiled [`Evaluator`].
    pub fn treat_eval(program: Arc<Program>, n: usize, eval: Evaluator) -> Self {
        Self::new_with(program, n, move |p, rules| {
            Treat::with_rules_eval(p, rules, true, eval.clone())
        })
    }
}

impl<M: Matcher> Matcher for Partitioned<M> {
    fn add_wme(&mut self, wme: &Wme) {
        for w in &mut self.workers {
            w.add_wme(wme);
        }
        self.absorb_deltas();
    }

    fn remove_wme(&mut self, wme: &Wme) {
        for w in &mut self.workers {
            w.remove_wme(wme);
        }
        self.absorb_deltas();
    }

    fn apply(&mut self, removed: &[Wme], added: &[Wme]) {
        self.workers.par_iter_mut().for_each(|w| {
            w.apply(removed, added);
        });
        self.absorb_deltas();
    }

    fn seed(&mut self, wm: &WorkingMemory) {
        let all: Vec<Wme> = wm.iter().cloned().collect();
        self.workers.par_iter_mut().for_each(|w| {
            for wme in &all {
                w.add_wme(wme);
            }
        });
        self.absorb_deltas();
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        if self.rebuild || (self.dirty && self.force_full) {
            let mut merged = ConflictSet::new();
            for (i, w) in self.workers.iter_mut().enumerate() {
                // Discard any buffered/journaled events: the full read
                // re-establishes the baseline they patched.
                self.pending[i].clear();
                let _ = w.drain_cs_events();
                for inst in w.conflict_set().iter() {
                    merged.insert(inst.clone());
                }
            }
            self.merged = merged;
            self.merge_rebuilds += 1;
            self.rebuild = false;
            self.dirty = false;
        } else if self.dirty {
            let Partitioned {
                workers,
                merged,
                pending,
                merge_patch_events,
                ..
            } = self;
            for (i, w) in workers.iter_mut().enumerate() {
                let events = std::mem::take(&mut pending[i]);
                if events.is_empty() {
                    continue;
                }
                *merge_patch_events += events.len() as u64;
                let cs = w.conflict_set();
                for ev in events {
                    match ev {
                        // An inserted key that is absent from the final
                        // set was removed by a later event; skipping it
                        // here and letting that Remove no-op keeps replay
                        // order-correct.
                        CsEvent::Insert(key) => {
                            if let Some(inst) = cs.get(&key) {
                                merged.insert(inst.clone());
                            }
                        }
                        CsEvent::Remove(key) => {
                            merged.remove(&key);
                        }
                    }
                }
            }
            self.dirty = false;
        }
        &self.merged
    }

    fn replace_rules(
        &mut self,
        program: &Arc<Program>,
        remove: &[RuleId],
        add: &[RuleId],
        wm: &WorkingMemory,
    ) -> bool {
        // Every removed rule keeps pointing at its owner; added rules are
        // spread from the first removed rule's owner onward so the new
        // copies land on distinct workers (the whole point of the split).
        let owner_of = |rid: RuleId| {
            self.assignments
                .iter()
                .position(|rules| rules.contains(&rid))
        };
        let Some(base) = remove.first().copied().and_then(owner_of) else {
            return false;
        };
        let n = self.workers.len();
        let mut per_worker: Vec<(Vec<RuleId>, Vec<RuleId>)> = vec![Default::default(); n];
        for &rid in remove {
            let Some(owner) = owner_of(rid) else {
                return false;
            };
            per_worker[owner].0.push(rid);
        }
        for (j, &rid) in add.iter().enumerate() {
            per_worker[(base + j) % n].1.push(rid);
        }
        for (i, (rm, ad)) in per_worker.iter().enumerate() {
            if rm.is_empty() && ad.is_empty() {
                continue;
            }
            if !self.workers[i].replace_rules(program, rm, ad, wm) {
                return false;
            }
            self.assignments[i].retain(|r| !rm.contains(r));
            self.assignments[i].extend(ad.iter().copied());
            self.assignments[i].sort();
        }
        self.rebuild = true;
        self.dirty = true;
        true
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let per_shard: Vec<crate::MatcherMetrics> =
            self.workers.iter().map(|w| w.metrics()).collect();
        let mut m = crate::MatcherMetrics {
            kind: match per_shard.first().map(|s| s.kind) {
                Some("rete") => "partitioned-rete",
                Some("treat") => "partitioned-treat",
                _ => "partitioned",
            },
            shards: self.workers.len(),
            // Rule partitions are disjoint, so sums across shards are
            // exact totals (and `conflict_set` stays correct even when
            // the merged cache is stale).
            rules: per_shard.iter().map(|s| s.rules).sum(),
            conflict_set: per_shard.iter().map(|s| s.conflict_set).sum(),
            alpha_wmes: per_shard.iter().map(|s| s.alpha_wmes).sum(),
            beta_tokens: per_shard.iter().map(|s| s.beta_tokens).sum(),
            negative_counts: per_shard.iter().map(|s| s.negative_counts).sum(),
            // Shards share no alpha state, so node/subscription/share-hit
            // totals are exact sums too (sharing only happens *within* a
            // shard's rule subset).
            alpha_nodes: per_shard.iter().map(|s| s.alpha_nodes).sum(),
            alpha_subscriptions: per_shard.iter().map(|s| s.alpha_subscriptions).sum(),
            alpha_share_hits: per_shard.iter().map(|s| s.alpha_share_hits).sum(),
            reenumerations: per_shard.iter().map(|s| s.reenumerations).sum(),
            recomputes: per_shard.iter().map(|s| s.recomputes).sum(),
            per_rule_work: {
                // Disjoint partitions: concatenating and sorting yields
                // the exact per-rule totals.
                let mut prw: Vec<(u32, usize)> = per_shard
                    .iter()
                    .flat_map(|s| s.per_rule_work.iter().copied())
                    .collect();
                prw.sort_unstable();
                prw
            },
            per_shard: Vec::new(),
        };
        m.per_shard = per_shard;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveMatcher;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    const SRC: &str = "
        (literalize a x)
        (literalize b y)
        (p r1 (a ^x <v>) (b ^y <v>) --> (halt))
        (p r2 (a ^x <v>) -(b ^y <v>) --> (halt))
        (p r3 (b ^y { > 5 }) --> (halt))
        (p r4 (a ^x <v>) (a ^x <v>) --> (halt))";

    fn setup() -> (Arc<Program>, WorkingMemory) {
        let p = Arc::new(compile(SRC).unwrap());
        let mut wm = WorkingMemory::new(&p.classes);
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        for v in 0..8 {
            wm.insert(a, vec![Value::Int(v)]);
            if v % 2 == 0 {
                wm.insert(b, vec![Value::Int(v)]);
            }
        }
        (p, wm)
    }

    #[test]
    fn partitioned_equals_monolithic() {
        let (p, wm) = setup();
        let mut reference = NaiveMatcher::new(p.clone());
        reference.seed(&wm);
        let want = reference.conflict_set().sorted_keys();
        for n in [1, 2, 3, 8] {
            let mut m = Partitioned::rete(p.clone(), n);
            m.seed(&wm);
            assert_eq!(m.conflict_set().sorted_keys(), want, "rete n={n}");
            let mut m = Partitioned::treat(p.clone(), n);
            m.seed(&wm);
            assert_eq!(m.conflict_set().sorted_keys(), want, "treat n={n}");
        }
    }

    #[test]
    fn batch_apply_matches_single_steps() {
        let (p, wm) = setup();
        let all: Vec<Wme> = wm.sorted_snapshot();
        let mut batch = Partitioned::rete(p.clone(), 3);
        batch.apply(&[], &all);
        let mut single = Partitioned::rete(p.clone(), 3);
        for w in &all {
            single.add_wme(w);
        }
        assert_eq!(
            batch.conflict_set().sorted_keys(),
            single.conflict_set().sorted_keys()
        );
        // and removal of half the WMEs
        let (dead, _live) = all.split_at(all.len() / 2);
        batch.apply(dead, &[]);
        for w in dead {
            single.remove_wme(w);
        }
        assert_eq!(
            batch.conflict_set().sorted_keys(),
            single.conflict_set().sorted_keys()
        );
    }

    #[test]
    fn round_robin_covers_all_rules() {
        let parts = round_robin(10, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
        let mut all: Vec<u32> = parts.iter().flatten().map(|r| r.0).collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_rules_is_fine() {
        let (p, wm) = setup();
        let mut m = Partitioned::rete(p.clone(), 64);
        m.seed(&wm);
        assert!(!m.conflict_set().is_empty());
        assert_eq!(m.num_workers(), 64);
        // S1 regression: round-robin over 64 workers leaves 60 shards
        // rule-less; they must not count as imbalance.
        let imb = m.metrics().imbalance();
        assert!(imb < 10.0, "rule-less shards inflated imbalance: {imb}");
    }

    #[test]
    fn incremental_union_tracks_per_delta_changes() {
        let (p, wm) = setup();
        let all: Vec<Wme> = wm.sorted_snapshot();
        let mut inc = Partitioned::rete(p.clone(), 3);
        let mut full = Partitioned::rete(p.clone(), 3);
        full.set_force_full_merge(true);
        inc.seed(&wm);
        full.seed(&wm);
        assert_eq!(
            inc.conflict_set().sorted_keys(),
            full.conflict_set().sorted_keys()
        );
        // Interleave adds/removes, comparing after every delta.
        for w in &all {
            inc.remove_wme(w);
            full.remove_wme(w);
            assert_eq!(
                inc.conflict_set().sorted_keys(),
                full.conflict_set().sorted_keys()
            );
            inc.add_wme(w);
            full.add_wme(w);
            assert_eq!(
                inc.conflict_set().sorted_keys(),
                full.conflict_set().sorted_keys()
            );
        }
        let (rebuilds, patched) = inc.merge_stats();
        assert_eq!(rebuilds, 1, "only the seed-time baseline rebuild");
        assert!(patched > 0, "later merges were journal replays");
        let (full_rebuilds, full_patched) = full.merge_stats();
        assert!(full_rebuilds > 1);
        assert_eq!(full_patched, 0);
    }

    #[test]
    fn quiescent_delta_leaves_merged_set_clean() {
        // S2: a delta that changes no worker's conflict set must not
        // force merged-set work on the next conflict_set() call.
        let src = "
            (literalize a x)
            (literalize inert x)
            (p r (a ^x <v>) (a ^x <v>) --> (halt))";
        let p = Arc::new(compile(src).unwrap());
        let mut wm = WorkingMemory::new(&p.classes);
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let inert = p.classes.id_of(p.interner.intern("inert")).unwrap();
        wm.insert(a, vec![Value::Int(1)]);
        let mut m = Partitioned::rete(p.clone(), 2);
        m.seed(&wm);
        assert_eq!(m.conflict_set().len(), 1);
        let (rebuilds, patched) = m.merge_stats();
        // `inert` matches no rule: conflict sets are untouched.
        let w = wm.insert(inert, vec![Value::Int(9)]);
        m.apply(&[], std::slice::from_ref(&w));
        assert_eq!(m.conflict_set().len(), 1);
        m.apply(&[w], &[]);
        assert_eq!(m.conflict_set().len(), 1);
        assert_eq!(
            m.merge_stats(),
            (rebuilds, patched),
            "quiescent deltas must not rebuild or patch the merged set"
        );
    }

    #[test]
    fn replace_rules_is_equivalent_to_fresh_build() {
        // Swap r3 for itself against the same program: state must match a
        // freshly-built matcher exactly.
        let (p, wm) = setup();
        let mut m = Partitioned::rete(p.clone(), 2);
        m.seed(&wm);
        let want = m.conflict_set().sorted_keys();
        assert!(m.replace_rules(&p, &[RuleId(2)], &[RuleId(2)], &wm));
        assert_eq!(m.conflict_set().sorted_keys(), want);
        let mut t = Partitioned::treat(p.clone(), 2);
        t.seed(&wm);
        assert!(t.replace_rules(&p, &[RuleId(2)], &[RuleId(2)], &wm));
        assert_eq!(t.conflict_set().sorted_keys(), want);
    }
}
