//! # parulel-match
//!
//! Match engines for the PARULEL reproduction. Matching — computing the
//! conflict set of all rule instantiations — dominates production-system
//! run time, and PARULEL's parallel cycle depends on *incremental*,
//! *state-saving* match: each cycle only the working-memory delta is
//! pushed through the network.
//!
//! Four engines, one [`Matcher`] trait:
//!
//! * [`NaiveMatcher`] — recomputes the conflict set from scratch on demand.
//!   Exists as the correctness oracle the incremental engines are
//!   property-tested against, and as the "no state saving" baseline in
//!   the Figure 2 ablation.
//! * [`Rete`] — the classic state-saving network (Forgy 1982): per-CE alpha
//!   memories with constant tests, hash-indexed equality joins, beta token
//!   memories, and counted negative nodes. Add *and* remove are
//!   incremental.
//! * [`Treat`] — Miranker's alpha-memory-only alternative: no beta
//!   memories; the conflict set itself is the only join state. Adds seed
//!   enumeration at each matching CE position; removes delete conflict-set
//!   entries directly. Cheaper on remove-heavy programs, pays join
//!   recomputation on adds.
//! * [`Partitioned`] — PARULEL's parallel match: rules are partitioned
//!   across workers, each owning a private RETE (or TREAT) over the same
//!   WME stream; deltas are applied to all workers in parallel (rayon) and
//!   the conflict set is the union. Combine with the copy-and-constrain
//!   transform (in `parulel-engine`) to split hot rules across workers.

#![warn(missing_docs)]

pub mod enumerate;
pub mod naive;
pub mod partitioned;
pub mod rete;
pub mod treat;

pub use naive::NaiveMatcher;
pub use partitioned::Partitioned;
pub use rete::Rete;
pub use treat::Treat;

use parulel_core::{ConflictSet, Wme, WorkingMemory};

/// A match engine: consumes working-memory changes, maintains the conflict
/// set.
pub trait Matcher: Send {
    /// Feeds one asserted WME through the network.
    fn add_wme(&mut self, wme: &Wme);

    /// Feeds one retracted WME through the network.
    fn remove_wme(&mut self, wme: &Wme);

    /// Applies a batch of changes (removes first, then adds — the order
    /// the engine applies deltas in). Parallel matchers override this to
    /// process the whole batch per worker.
    fn apply(&mut self, removed: &[Wme], added: &[Wme]) {
        for w in removed {
            self.remove_wme(w);
        }
        for w in added {
            self.add_wme(w);
        }
    }

    /// Seeds the network from an initial working memory.
    fn seed(&mut self, wm: &WorkingMemory) {
        for w in wm.iter() {
            self.add_wme(w);
        }
    }

    /// The current conflict set.
    fn conflict_set(&mut self) -> &ConflictSet;
}
