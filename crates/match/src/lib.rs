//! # parulel-match
//!
//! Match engines for the PARULEL reproduction. Matching — computing the
//! conflict set of all rule instantiations — dominates production-system
//! run time, and PARULEL's parallel cycle depends on *incremental*,
//! *state-saving* match: each cycle only the working-memory delta is
//! pushed through the network.
//!
//! Four engines, one [`Matcher`] trait:
//!
//! * [`NaiveMatcher`] — recomputes the conflict set from scratch on demand.
//!   Exists as the correctness oracle the incremental engines are
//!   property-tested against, and as the "no state saving" baseline in
//!   the Figure 2 ablation.
//! * [`Rete`] — the classic state-saving network (Forgy 1982): per-CE alpha
//!   memories with constant tests, hash-indexed equality joins, beta token
//!   memories, and counted negative nodes. Add *and* remove are
//!   incremental.
//! * [`Treat`] — Miranker's alpha-memory-only alternative: no beta
//!   memories; the conflict set itself is the only join state. Adds seed
//!   enumeration at each matching CE position; removes delete conflict-set
//!   entries directly. Cheaper on remove-heavy programs, pays join
//!   recomputation on adds.
//! * [`Partitioned`] — PARULEL's parallel match: rules are partitioned
//!   across workers, each owning a private RETE (or TREAT) over the same
//!   WME stream; deltas are applied to all workers in parallel (rayon) and
//!   the conflict set is the union. Combine with the copy-and-constrain
//!   transform (in `parulel-engine`) to split hot rules across workers.

#![warn(missing_docs)]

pub mod alpha;
pub mod arena;
pub mod enumerate;
pub mod naive;
pub mod partitioned;
pub mod rete;
pub mod treat;

pub use naive::NaiveMatcher;
pub use partitioned::Partitioned;
pub use rete::Rete;
pub use treat::Treat;

use parulel_core::{ConflictSet, CsEvent, Program, RuleId, Wme, WorkingMemory};
use std::sync::Arc;

/// A point-in-time report of a matcher's internal population, for the
/// engine's observability layer. Cheap to produce (a walk over the
/// network, no allocation proportional to WM) but not free — engines
/// sample it only when metrics collection is enabled.
#[derive(Clone, Debug, PartialEq)]
pub struct MatcherMetrics {
    /// Engine kind: `"naive"`, `"rete"`, `"treat"`,
    /// `"partitioned-rete"`, `"partitioned-treat"`.
    pub kind: &'static str,
    /// Workers actually in effect (1 for monolithic matchers). For
    /// [`Partitioned`] this is the real worker count after clamping, not
    /// the requested one.
    pub shards: usize,
    /// Rules this matcher covers.
    pub rules: usize,
    /// Current conflict-set size (for [`NaiveMatcher`] this reflects the
    /// last recompute; it may lag working memory until the next
    /// `conflict_set()` call).
    pub conflict_set: usize,
    /// WMEs held in alpha memories, summed across CEs (a WME passing
    /// several CEs' constant tests counts once per memory).
    pub alpha_wmes: usize,
    /// Partial-match tokens held in beta memories (RETE only; zero for
    /// TREAT/naive, which keep no beta state).
    pub beta_tokens: usize,
    /// Entries in counted-negative-node tables (RETE only).
    pub negative_counts: usize,
    /// Live nodes in the shared alpha network: distinct (class,
    /// constant-test) memories after deduplication (zero for naive,
    /// which has no network).
    pub alpha_nodes: usize,
    /// Total (rule, CE) subscriptions across those nodes. With sharing
    /// disabled this equals `alpha_nodes`; the gap is the state the
    /// dedup layer avoids keeping.
    pub alpha_subscriptions: usize,
    /// Lifetime count of alpha test evaluations whose result was fanned
    /// out to more than one subscriber — work the per-rule layout would
    /// have repeated. `> 0` proves sharing is live.
    pub alpha_share_hits: u64,
    /// Lifetime count of full per-rule re-enumerations (TREAT only:
    /// the cost paid when a negative blocker disappears).
    pub reenumerations: u64,
    /// Lifetime count of full conflict-set recomputes (naive only).
    pub recomputes: u64,
    /// Per-rule share of [`work`](Self::work): `(rule id, alpha + beta +
    /// conflict-set entries attributable to that rule)`, sorted by rule
    /// id. Populated by RETE and TREAT (and concatenated across shards by
    /// the partitioned matcher); empty for naive. Metrics-driven
    /// copy-and-constrain reads this to find the hottest rule.
    pub per_rule_work: Vec<(u32, usize)>,
    /// Per-worker reports (partitioned matchers only).
    pub per_shard: Vec<MatcherMetrics>,
}

impl Default for MatcherMetrics {
    fn default() -> Self {
        MatcherMetrics {
            kind: "unknown",
            shards: 1,
            rules: 0,
            conflict_set: 0,
            alpha_wmes: 0,
            beta_tokens: 0,
            negative_counts: 0,
            alpha_nodes: 0,
            alpha_subscriptions: 0,
            alpha_share_hits: 0,
            reenumerations: 0,
            recomputes: 0,
            per_rule_work: Vec::new(),
            per_shard: Vec::new(),
        }
    }
}

impl MatcherMetrics {
    /// A scalar proxy for how much match state this shard carries.
    pub fn work(&self) -> usize {
        self.alpha_wmes + self.beta_tokens + self.conflict_set
    }

    /// Max-over-mean of [`work`](Self::work) across shards: 1.0 is
    /// perfectly balanced (or unpartitioned/idle); 2.0 means the hottest
    /// shard carries twice the average — the skew copy-and-constrain
    /// exists to fix.
    ///
    /// Only shards that own at least one rule participate: with more
    /// workers than rules (a legal configuration) the surplus shards can
    /// never carry work, and counting their zeros would report huge
    /// imbalance for a perfectly balanced program.
    pub fn imbalance(&self) -> f64 {
        let works: Vec<f64> = self
            .per_shard
            .iter()
            .filter(|s| s.rules > 0)
            .map(|s| s.work() as f64)
            .collect();
        if works.len() < 2 {
            return 1.0;
        }
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        works.iter().cloned().fold(0.0f64, f64::max) / mean
    }
}

/// A match engine: consumes working-memory changes, maintains the conflict
/// set.
pub trait Matcher: Send {
    /// Feeds one asserted WME through the network.
    fn add_wme(&mut self, wme: &Wme);

    /// Feeds one retracted WME through the network.
    fn remove_wme(&mut self, wme: &Wme);

    /// Applies a batch of changes (removes first, then adds — the order
    /// the engine applies deltas in). Parallel matchers override this to
    /// process the whole batch per worker.
    fn apply(&mut self, removed: &[Wme], added: &[Wme]) {
        for w in removed {
            self.remove_wme(w);
        }
        for w in added {
            self.add_wme(w);
        }
    }

    /// Seeds the network from an initial working memory.
    fn seed(&mut self, wm: &WorkingMemory) {
        for w in wm.iter() {
            self.add_wme(w);
        }
    }

    /// The current conflict set.
    fn conflict_set(&mut self) -> &ConflictSet;

    /// Drains the conflict-set change events recorded since the last
    /// drain, enabling recording on first call.
    ///
    /// `None` means this matcher does not track deltas (or had not yet
    /// started recording): the caller must read the full conflict set once
    /// before relying on subsequent drains. The partitioned matcher uses
    /// this to patch its merged union incrementally. The default keeps
    /// matchers delta-blind.
    fn drain_cs_events(&mut self) -> Option<Vec<CsEvent>> {
        None
    }

    /// A snapshot of the matcher's internal population. The default is an
    /// empty report; the four shipped matchers all override it.
    fn metrics(&self) -> MatcherMetrics {
        MatcherMetrics::default()
    }

    /// Surgically swaps a set of rules for another against the *new*
    /// program `_program`: nets/memories for `_remove` are dropped (their
    /// conflict-set entries purged) and nets for `_add` are built and
    /// seeded from `_wm`. Both lists name rules by their ids **in the new
    /// program**; a rule id appearing in both lists is rebuilt (its
    /// definition changed). Returns `false` when the matcher does not
    /// support in-place replacement — the caller must then rebuild the
    /// whole matcher. Used by metrics-driven copy-and-constrain, which
    /// splits one hot rule without touching the others' state.
    fn replace_rules(
        &mut self,
        _program: &Arc<Program>,
        _remove: &[RuleId],
        _add: &[RuleId],
        _wm: &WorkingMemory,
    ) -> bool {
        false
    }
}

#[cfg(test)]
mod metrics_tests {
    use super::MatcherMetrics;

    fn shard(rules: usize, work: usize) -> MatcherMetrics {
        MatcherMetrics {
            rules,
            alpha_wmes: work,
            ..Default::default()
        }
    }

    fn with_shards(per_shard: Vec<MatcherMetrics>) -> MatcherMetrics {
        MatcherMetrics {
            per_shard,
            ..Default::default()
        }
    }

    #[test]
    fn imbalance_ignores_rule_less_shards() {
        // 4 rules spread over 64 workers, perfectly balanced: the 60
        // zero-work shards must not drag the mean down.
        let m = with_shards(
            (0..64)
                .map(|i| shard(usize::from(i < 4), if i < 4 { 10 } else { 0 }))
                .collect(),
        );
        assert_eq!(m.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_still_sees_real_skew() {
        let m = with_shards(vec![shard(1, 30), shard(1, 10), shard(0, 0)]);
        assert!((m.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_degenerate_cases_are_balanced() {
        let m = MatcherMetrics::default();
        assert_eq!(m.imbalance(), 1.0, "unpartitioned");
        let m = with_shards(vec![shard(1, 0), shard(1, 0)]);
        assert_eq!(m.imbalance(), 1.0, "idle shards");
        let m = with_shards(vec![shard(1, 5), shard(0, 0)]);
        assert_eq!(m.imbalance(), 1.0, "only one shard owns rules");
    }
}
