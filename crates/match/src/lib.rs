//! # parulel-match
//!
//! Match engines for the PARULEL reproduction. Matching — computing the
//! conflict set of all rule instantiations — dominates production-system
//! run time, and PARULEL's parallel cycle depends on *incremental*,
//! *state-saving* match: each cycle only the working-memory delta is
//! pushed through the network.
//!
//! Four engines, one [`Matcher`] trait:
//!
//! * [`NaiveMatcher`] — recomputes the conflict set from scratch on demand.
//!   Exists as the correctness oracle the incremental engines are
//!   property-tested against, and as the "no state saving" baseline in
//!   the Figure 2 ablation.
//! * [`Rete`] — the classic state-saving network (Forgy 1982): per-CE alpha
//!   memories with constant tests, hash-indexed equality joins, beta token
//!   memories, and counted negative nodes. Add *and* remove are
//!   incremental.
//! * [`Treat`] — Miranker's alpha-memory-only alternative: no beta
//!   memories; the conflict set itself is the only join state. Adds seed
//!   enumeration at each matching CE position; removes delete conflict-set
//!   entries directly. Cheaper on remove-heavy programs, pays join
//!   recomputation on adds.
//! * [`Partitioned`] — PARULEL's parallel match: rules are partitioned
//!   across workers, each owning a private RETE (or TREAT) over the same
//!   WME stream; deltas are applied to all workers in parallel (rayon) and
//!   the conflict set is the union. Combine with the copy-and-constrain
//!   transform (in `parulel-engine`) to split hot rules across workers.

#![warn(missing_docs)]

pub mod enumerate;
pub mod naive;
pub mod partitioned;
pub mod rete;
pub mod treat;

pub use naive::NaiveMatcher;
pub use partitioned::Partitioned;
pub use rete::Rete;
pub use treat::Treat;

use parulel_core::{ConflictSet, Wme, WorkingMemory};

/// A point-in-time report of a matcher's internal population, for the
/// engine's observability layer. Cheap to produce (a walk over the
/// network, no allocation proportional to WM) but not free — engines
/// sample it only when metrics collection is enabled.
#[derive(Clone, Debug, PartialEq)]
pub struct MatcherMetrics {
    /// Engine kind: `"naive"`, `"rete"`, `"treat"`,
    /// `"partitioned-rete"`, `"partitioned-treat"`.
    pub kind: &'static str,
    /// Workers actually in effect (1 for monolithic matchers). For
    /// [`Partitioned`] this is the real worker count after clamping, not
    /// the requested one.
    pub shards: usize,
    /// Rules this matcher covers.
    pub rules: usize,
    /// Current conflict-set size (for [`NaiveMatcher`] this reflects the
    /// last recompute; it may lag working memory until the next
    /// `conflict_set()` call).
    pub conflict_set: usize,
    /// WMEs held in alpha memories, summed across CEs (a WME passing
    /// several CEs' constant tests counts once per memory).
    pub alpha_wmes: usize,
    /// Partial-match tokens held in beta memories (RETE only; zero for
    /// TREAT/naive, which keep no beta state).
    pub beta_tokens: usize,
    /// Entries in counted-negative-node tables (RETE only).
    pub negative_counts: usize,
    /// Lifetime count of full per-rule re-enumerations (TREAT only:
    /// the cost paid when a negative blocker disappears).
    pub reenumerations: u64,
    /// Lifetime count of full conflict-set recomputes (naive only).
    pub recomputes: u64,
    /// Per-worker reports (partitioned matchers only).
    pub per_shard: Vec<MatcherMetrics>,
}

impl Default for MatcherMetrics {
    fn default() -> Self {
        MatcherMetrics {
            kind: "unknown",
            shards: 1,
            rules: 0,
            conflict_set: 0,
            alpha_wmes: 0,
            beta_tokens: 0,
            negative_counts: 0,
            reenumerations: 0,
            recomputes: 0,
            per_shard: Vec::new(),
        }
    }
}

impl MatcherMetrics {
    /// A scalar proxy for how much match state this shard carries.
    pub fn work(&self) -> usize {
        self.alpha_wmes + self.beta_tokens + self.conflict_set
    }

    /// Max-over-mean of [`work`](Self::work) across shards: 1.0 is
    /// perfectly balanced (or unpartitioned/idle); 2.0 means the hottest
    /// shard carries twice the average — the skew copy-and-constrain
    /// exists to fix.
    pub fn imbalance(&self) -> f64 {
        if self.per_shard.len() < 2 {
            return 1.0;
        }
        let works: Vec<f64> = self.per_shard.iter().map(|s| s.work() as f64).collect();
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        works.iter().cloned().fold(0.0f64, f64::max) / mean
    }
}

/// A match engine: consumes working-memory changes, maintains the conflict
/// set.
pub trait Matcher: Send {
    /// Feeds one asserted WME through the network.
    fn add_wme(&mut self, wme: &Wme);

    /// Feeds one retracted WME through the network.
    fn remove_wme(&mut self, wme: &Wme);

    /// Applies a batch of changes (removes first, then adds — the order
    /// the engine applies deltas in). Parallel matchers override this to
    /// process the whole batch per worker.
    fn apply(&mut self, removed: &[Wme], added: &[Wme]) {
        for w in removed {
            self.remove_wme(w);
        }
        for w in added {
            self.add_wme(w);
        }
    }

    /// Seeds the network from an initial working memory.
    fn seed(&mut self, wm: &WorkingMemory) {
        for w in wm.iter() {
            self.add_wme(w);
        }
    }

    /// The current conflict set.
    fn conflict_set(&mut self) -> &ConflictSet;

    /// A snapshot of the matcher's internal population. The default is an
    /// empty report; the four shipped matchers all override it.
    fn metrics(&self) -> MatcherMetrics {
        MatcherMetrics::default()
    }
}
