//! Flat generational arenas: the storage layer under the shared alpha
//! network.
//!
//! The pre-arena matchers kept one `FxHashMap<WmeId, Arc<Wme>>` per
//! (rule, CE) alpha memory and `Arc`'d every token payload — every join
//! candidate read chased a hash bucket and an `Arc` indirection. An
//! [`Arena`] stores payloads in one contiguous `Vec` slab: lookups are a
//! bounds-checked index, freed slots are recycled through a free list,
//! and iteration over live entries walks the slab densely in slot order.
//!
//! Handles are **generational** ([`WmeRef`]): each slot carries a
//! generation counter bumped on free, so a stale handle held by a token
//! after its WME was retracted can never silently read a recycled slot —
//! `get` returns `None` (and the debug invariant checker treats a stale
//! ref reachable from live state as a bug).

/// A generational handle into an [`Arena`]. 8 bytes, `Copy`, hashable —
/// tokens store these instead of `Arc<Wme>` payloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WmeRef {
    /// Slab slot index.
    pub slot: u32,
    /// Generation the slot had when this handle was issued.
    pub gen: u32,
}

enum Slot<T> {
    Occupied { gen: u32, value: T },
    /// Freed; `gen` is the generation the *next* occupant will get.
    Vacant { gen: u32 },
}

/// A flat slab with a free list and generational handles.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slab capacity actually allocated (live + vacant slots); the
    /// invariant checker compares this against the free list.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a value, recycling a freed slot if one exists.
    pub fn insert(&mut self, value: T) -> WmeRef {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let gen = match self.slots[slot as usize] {
                Slot::Vacant { gen } => gen,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.slots[slot as usize] = Slot::Occupied { gen, value };
            WmeRef { slot, gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot::Occupied { gen: 0, value });
            WmeRef { slot, gen: 0 }
        }
    }

    /// The value behind `r`, unless the slot was freed since `r` was
    /// issued (stale generation) — then `None`.
    #[inline]
    pub fn get(&self, r: WmeRef) -> Option<&T> {
        match self.slots.get(r.slot as usize) {
            Some(Slot::Occupied { gen, value }) if *gen == r.gen => Some(value),
            _ => None,
        }
    }

    /// Removes and returns the value behind `r`; `None` if already freed
    /// or stale. The slot's generation is bumped so `r` (and any copy of
    /// it) goes stale immediately.
    pub fn remove(&mut self, r: WmeRef) -> Option<T> {
        match self.slots.get_mut(r.slot as usize) {
            Some(slot @ Slot::Occupied { .. }) => {
                let Slot::Occupied { gen, .. } = *slot else {
                    unreachable!()
                };
                if gen != r.gen {
                    return None;
                }
                let Slot::Occupied { value, .. } =
                    std::mem::replace(slot, Slot::Vacant { gen: gen.wrapping_add(1) })
                else {
                    unreachable!()
                };
                self.free.push(r.slot);
                self.live -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// Dense iteration over live entries in slot order (the cache-friendly
    /// walk replace-rules reseeding and invariant checks use).
    pub fn iter(&self) -> impl Iterator<Item = (WmeRef, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { gen, value } => Some((
                WmeRef {
                    slot: i as u32,
                    gen: *gen,
                },
                value,
            )),
            Slot::Vacant { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let r1 = a.insert("one");
        let r2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(r1), Some(&"one"));
        assert_eq!(a.get(r2), Some(&"two"));
        assert_eq!(a.remove(r1), Some("one"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(r1), None, "freed handle is dead");
        assert_eq!(a.remove(r1), None, "double free is a no-op");
    }

    #[test]
    fn recycled_slot_gets_fresh_generation() {
        let mut a = Arena::new();
        let r1 = a.insert(10);
        a.remove(r1);
        let r2 = a.insert(20);
        assert_eq!(r2.slot, r1.slot, "slot recycled via the free list");
        assert_ne!(r2.gen, r1.gen, "generation bumped");
        assert_eq!(a.get(r1), None, "stale handle cannot read new occupant");
        assert_eq!(a.get(r2), Some(&20));
    }

    #[test]
    fn dense_iteration_skips_vacant_slots() {
        let mut a = Arena::new();
        let refs: Vec<WmeRef> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(refs[1]);
        a.remove(refs[3]);
        let live: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![0, 2, 4]);
        for (r, v) in a.iter() {
            assert_eq!(a.get(r), Some(v));
        }
    }
}
