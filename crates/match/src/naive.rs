//! The naive (recompute-everything) matcher: the correctness oracle.

use crate::enumerate::enumerate_rule;
use crate::Matcher;
use parulel_core::{ClassId, ConflictSet, FxHashMap, Program, RuleId, Wme, WmeId};
use parulel_vm::{EvalMode, Evaluator};
use std::sync::Arc;

/// Recomputes the full conflict set from a mirror of working memory every
/// time it is asked. O(|WM|^ces) worst case — use only as an oracle, a
/// baseline, or on small problems.
pub struct NaiveMatcher {
    program: Arc<Program>,
    eval: Evaluator,
    rules: Vec<RuleId>,
    by_class: Vec<FxHashMap<WmeId, Wme>>,
    cache: ConflictSet,
    dirty: bool,
    /// Lifetime count of full conflict-set recomputes.
    recomputes: u64,
}

impl NaiveMatcher {
    /// A naive matcher over every rule of `program`.
    pub fn new(program: Arc<Program>) -> Self {
        let rules = (0..program.rules().len() as u32).map(RuleId).collect();
        Self::with_rules(program, rules)
    }

    /// A naive matcher over a subset of rules (used by the partitioned
    /// parallel matcher).
    pub fn with_rules(program: Arc<Program>, rules: Vec<RuleId>) -> Self {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        Self::with_rules_eval(program, rules, eval)
    }

    /// Like [`with_rules`](Self::with_rules) with a caller-built
    /// [`Evaluator`] (shared-compilation path: the engine compiles once
    /// and hands out clones).
    pub fn with_rules_eval(program: Arc<Program>, rules: Vec<RuleId>, eval: Evaluator) -> Self {
        let classes = program.classes.len();
        NaiveMatcher {
            program,
            eval,
            rules,
            by_class: vec![FxHashMap::default(); classes],
            cache: ConflictSet::new(),
            dirty: true,
            recomputes: 0,
        }
    }

    fn class_wmes(&self, class: ClassId) -> Vec<Wme> {
        self.by_class[class.index()].values().cloned().collect()
    }

    fn recompute(&mut self) {
        self.recomputes += 1;
        let mut out = Vec::new();
        for &rid in &self.rules {
            let rule = self.program.rule(rid);
            enumerate_rule(
                &self.eval,
                rule,
                &|ce_idx| self.class_wmes(rule.ces[ce_idx].class),
                None,
                &mut out,
            );
        }
        self.cache = out.into_iter().collect();
        self.dirty = false;
    }
}

impl Matcher for NaiveMatcher {
    fn add_wme(&mut self, wme: &Wme) {
        self.by_class[wme.class.index()].insert(wme.id, wme.clone());
        self.dirty = true;
    }

    fn remove_wme(&mut self, wme: &Wme) {
        self.by_class[wme.class.index()].remove(&wme.id);
        self.dirty = true;
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        if self.dirty {
            self.recompute();
        }
        &self.cache
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        crate::MatcherMetrics {
            kind: "naive",
            rules: self.rules.len(),
            conflict_set: self.cache.len(),
            alpha_wmes: self.by_class.iter().map(|m| m.len()).sum(),
            recomputes: self.recomputes,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    fn setup() -> (Arc<Program>, WorkingMemory) {
        let p = Arc::new(
            compile(
                "(literalize job id status)
                 (literalize cpu id free)
                 (p assign (job ^id <j> ^status waiting) (cpu ^id <c> ^free yes)
                  --> (modify 1 ^status running) (modify 2 ^free no))",
            )
            .unwrap(),
        );
        let wm = WorkingMemory::new(&p.classes);
        (p, wm)
    }

    #[test]
    fn cross_product_conflict_set() {
        let (p, mut wm) = setup();
        let i = &p.interner;
        let (waiting, yes) = (i.intern("waiting"), i.intern("yes"));
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let cpu = p.classes.id_of(i.intern("cpu")).unwrap();
        for j in 0..3 {
            wm.insert(job, vec![Value::Int(j), Value::Sym(waiting)]);
        }
        for c in 0..2 {
            wm.insert(cpu, vec![Value::Int(c), Value::Sym(yes)]);
        }
        let mut m = NaiveMatcher::new(p.clone());
        m.seed(&wm);
        assert_eq!(m.conflict_set().len(), 6); // 3 jobs x 2 cpus
    }

    #[test]
    fn incremental_add_remove_invalidate_cache() {
        let (p, mut wm) = setup();
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let cpu = p.classes.id_of(i.intern("cpu")).unwrap();
        let waiting = i.intern("waiting");
        let yes = i.intern("yes");
        let mut m = NaiveMatcher::new(p.clone());
        m.seed(&wm);
        assert_eq!(m.conflict_set().len(), 0);
        let j = wm.insert(job, vec![Value::Int(1), Value::Sym(waiting)]);
        let c = wm.insert(cpu, vec![Value::Int(9), Value::Sym(yes)]);
        m.add_wme(&j);
        m.add_wme(&c);
        assert_eq!(m.conflict_set().len(), 1);
        m.remove_wme(&c);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn rule_subset_restricts_matches() {
        let p = Arc::new(
            compile(
                "(literalize a x)
                 (p r1 (a ^x 1) --> (halt))
                 (p r2 (a ^x 1) --> (halt))",
            )
            .unwrap(),
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        wm.insert(a, vec![Value::Int(1)]);
        let mut all = NaiveMatcher::new(p.clone());
        all.seed(&wm);
        assert_eq!(all.conflict_set().len(), 2);
        let mut only_r2 = NaiveMatcher::with_rules(p.clone(), vec![RuleId(1)]);
        only_r2.seed(&wm);
        assert_eq!(only_r2.conflict_set().len(), 1);
        assert_eq!(
            only_r2.conflict_set().iter().next().unwrap().rule,
            RuleId(1)
        );
    }
}
