//! An incremental RETE network (Forgy 1982), the state-saving matcher
//! PARULEL's cycle is built on.
//!
//! ## Structure
//!
//! One linear network per rule ("rule net"): level *k* of a net
//! corresponds to condition element *k* in join order.
//!
//! * Every level owns an **alpha memory**: the WMEs of the CE's class that
//!   pass its constant (alpha) tests, hash-indexed by the level's
//!   **equality join keys** (the `(slot, var)` pairs where the CE equates
//!   a field with a variable bound by an earlier CE).
//! * A **token** is a consistent match of the first *k* CEs: the matched
//!   positive WMEs, their ids (the token key), and the variable bindings.
//! * Positive levels join input tokens (the previous level's outputs, or
//!   the root token) with their alpha memory; candidates come from the
//!   hash index, residual beta tests and anchored rule tests run per
//!   candidate.
//! * Negative levels are **counted**: for each input token the level
//!   stores how many alpha WMEs are consistent with it; the token passes
//!   through while the count is zero. Adding a blocker retracts the
//!   downstream tokens; removing the last blocker re-propagates.
//! * The last level's outputs are the rule's instantiations, maintained
//!   directly in the [`ConflictSet`].
//!
//! Alpha memories are *not* shared across rules. Sharing is a
//! constant-factor optimization orthogonal to everything measured here,
//! and per-rule networks are what the partitioned parallel matcher needs
//! anyway (each worker owns whole rule nets).

use crate::Matcher;
use parulel_core::{
    ConditionElement, ConflictSet, FxHashMap, FxHashSet, InstKey, Instantiation, Polarity, Program,
    RuleId, TestExpr, Value, VarId, Wme, WmeId,
};
use std::sync::Arc;

type TokKey = Arc<[WmeId]>;
type KeyVals = Box<[Value]>;

/// A partial match: the first `k` CEs of a rule, satisfied consistently.
#[derive(Clone, Debug)]
struct Token {
    /// Ids of the positive WMEs matched so far (the identity).
    key: TokKey,
    /// The matched positive WMEs.
    wmes: Vec<Wme>,
    /// Variable bindings (full rule width).
    env: Box<[Value]>,
}

/// One level of a rule net.
struct Level {
    ce: ConditionElement,
    /// Rule tests anchored at this level.
    tests: Vec<TestExpr>,
    /// Equality join keys: `(slot, var)`.
    keys: Vec<(u16, VarId)>,
    /// Alpha memory: WMEs passing class + constant tests.
    alpha: FxHashMap<WmeId, Wme>,
    /// Alpha memory indexed by join-key values.
    alpha_index: FxHashMap<KeyVals, FxHashSet<WmeId>>,
    /// Input tokens (previous level's outputs) indexed by this level's
    /// join-key values.
    left_index: FxHashMap<KeyVals, FxHashSet<TokKey>>,
    /// Output tokens of this level.
    tokens: FxHashMap<TokKey, Token>,
    /// Negative levels: per input-token key, the number of alpha WMEs
    /// consistent with it. The token passes through iff the count is 0.
    neg_counts: FxHashMap<TokKey, u32>,
    /// Removal index: WME id → output tokens at this level that matched
    /// it positively. Retracting a WME touches only these tokens instead
    /// of scanning the level.
    by_wme: FxHashMap<WmeId, FxHashSet<TokKey>>,
    /// Cascade index: input-token key → output tokens at this level
    /// derived from it (pos levels extend the key by one id; neg levels
    /// pass it through unchanged).
    children: FxHashMap<TokKey, FxHashSet<TokKey>>,
}

impl Level {
    /// The input-token key an output token at this level derives from.
    fn parent_key(&self, key: &TokKey) -> TokKey {
        if self.is_negative() {
            key.clone()
        } else {
            key[..key.len() - 1].into()
        }
    }
}

impl Level {
    fn is_negative(&self) -> bool {
        self.ce.polarity == Polarity::Negative
    }

    fn wme_keyvals(&self, wme: &Wme) -> KeyVals {
        self.keys
            .iter()
            .map(|&(slot, _)| wme.field(slot as usize).join_key())
            .collect()
    }

    fn token_keyvals(&self, tok: &Token) -> KeyVals {
        self.keys
            .iter()
            .map(|&(_, var)| tok.env[var.index()].join_key())
            .collect()
    }

    /// Does `wme` extend/block `tok` at this level (beta tests only)?
    /// Uses a scratch env; bindings are not kept.
    fn beta_matches(&self, tok: &Token, wme: &Wme) -> bool {
        let mut scratch = tok.env.clone();
        self.ce.run_beta(wme, &mut scratch)
    }
}

/// One rule's network.
struct RuleNet {
    rule: RuleId,
    levels: Vec<Level>,
    root: Token,
}

/// The incremental RETE matcher.
pub struct Rete {
    nets: Vec<RuleNet>,
    cs: ConflictSet,
}

impl Rete {
    /// Builds a network for every rule of `program`.
    pub fn new(program: Arc<Program>) -> Self {
        let rules = (0..program.rules().len() as u32).map(RuleId).collect();
        Self::with_rules(program, rules)
    }

    /// Builds networks for a subset of rules (the partitioned matcher's
    /// workers use this).
    pub fn with_rules(program: Arc<Program>, rules: Vec<RuleId>) -> Self {
        let mut nets = Vec::with_capacity(rules.len());
        let mut cs = ConflictSet::new();
        for rid in rules {
            let rule = program.rule(rid);
            let mut levels: Vec<Level> = rule
                .ces
                .iter()
                .enumerate()
                .map(|(k, ce)| Level {
                    ce: ce.clone(),
                    tests: rule
                        .tests
                        .iter()
                        .filter(|t| t.anchor == k)
                        .map(|t| t.test.clone())
                        .collect(),
                    keys: ce.eq_join_keys(rule.vars_bound_by(k)),
                    alpha: FxHashMap::default(),
                    alpha_index: FxHashMap::default(),
                    left_index: FxHashMap::default(),
                    tokens: FxHashMap::default(),
                    neg_counts: FxHashMap::default(),
                    by_wme: FxHashMap::default(),
                    children: FxHashMap::default(),
                })
                .collect();
            let root = Token {
                key: Arc::from(Vec::new()),
                wmes: Vec::new(),
                env: vec![Value::NIL; rule.num_vars as usize].into(),
            };
            // Register the root token as input to level 0 and let it flow
            // through any leading negative levels (alphas are empty now).
            let kv = levels[0].token_keyvals(&root);
            levels[0]
                .left_index
                .entry(kv)
                .or_default()
                .insert(root.key.clone());
            let mut net = RuleNet {
                rule: rid,
                levels,
                root,
            };
            if net.levels[0].is_negative() {
                net.levels[0].neg_counts.insert(net.root.key.clone(), 0);
                let tok = net.root.clone();
                net.insert_token(0, tok, &mut cs);
            }
            nets.push(net);
        }
        Rete { nets, cs }
    }
}

impl RuleNet {
    /// Number of levels.
    fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Extends `tok` with `wme` at positive level `k`, if consistent.
    fn extend(&self, k: usize, tok: &Token, wme: &Wme) -> Option<Token> {
        let level = &self.levels[k];
        let mut env = tok.env.clone();
        if !level.ce.run_beta(wme, &mut env) {
            return None;
        }
        if !level.tests.iter().all(|t| t.check(&env)) {
            return None;
        }
        let mut key: Vec<WmeId> = tok.key.to_vec();
        key.push(wme.id);
        let mut wmes = tok.wmes.clone();
        wmes.push(wme.clone());
        Some(Token {
            key: key.into(),
            wmes,
            env,
        })
    }

    /// For a token passing *through* negative level `k`: anchored tests
    /// must still hold (env is unchanged).
    fn neg_pass_tests(&self, k: usize, tok: &Token) -> bool {
        self.levels[k].tests.iter().all(|t| t.check(&tok.env))
    }

    /// Inserts `tok` as an output of level `k` and propagates downstream.
    fn insert_token(&mut self, k: usize, tok: Token, cs: &mut ConflictSet) {
        if self.levels[k]
            .tokens
            .insert(tok.key.clone(), tok.clone())
            .is_some()
        {
            return; // already present (idempotent)
        }
        for id in tok.key.iter() {
            self.levels[k]
                .by_wme
                .entry(*id)
                .or_default()
                .insert(tok.key.clone());
        }
        let parent = self.levels[k].parent_key(&tok.key);
        self.levels[k]
            .children
            .entry(parent)
            .or_default()
            .insert(tok.key.clone());
        if k + 1 == self.depth() {
            cs.insert(Instantiation::new(
                self.rule,
                tok.wmes.clone(),
                tok.env.to_vec(),
            ));
            return;
        }
        let next = k + 1;
        let kv = self.levels[next].token_keyvals(&tok);
        self.levels[next]
            .left_index
            .entry(kv.clone())
            .or_default()
            .insert(tok.key.clone());
        if self.levels[next].is_negative() {
            let count = match self.levels[next].alpha_index.get(&kv) {
                Some(bucket) => {
                    let level = &self.levels[next];
                    bucket
                        .iter()
                        .filter(|wid| level.beta_matches(&tok, &level.alpha[wid]))
                        .count() as u32
                }
                None => 0,
            };
            self.levels[next].neg_counts.insert(tok.key.clone(), count);
            if count == 0 && self.neg_pass_tests(next, &tok) {
                self.insert_token(next, tok, cs);
            }
        } else {
            let candidates: Vec<Wme> = match self.levels[next].alpha_index.get(&kv) {
                Some(bucket) => {
                    let level = &self.levels[next];
                    bucket.iter().map(|wid| level.alpha[wid].clone()).collect()
                }
                None => Vec::new(),
            };
            for w in candidates {
                if let Some(t2) = self.extend(next, &tok, &w) {
                    self.insert_token(next, t2, cs);
                }
            }
        }
    }

    /// Removes the output token with `key` from level `k`, cascading into
    /// deeper levels and the conflict set. Tolerates already-absent keys.
    fn remove_output(&mut self, k: usize, key: &TokKey, cs: &mut ConflictSet) {
        let Some(tok) = self.levels[k].tokens.remove(key) else {
            return;
        };
        for id in tok.key.iter() {
            let emptied = match self.levels[k].by_wme.get_mut(id) {
                Some(set) => {
                    set.remove(&tok.key);
                    set.is_empty()
                }
                None => false,
            };
            if emptied {
                self.levels[k].by_wme.remove(id);
            }
        }
        let parent = self.levels[k].parent_key(&tok.key);
        let emptied = match self.levels[k].children.get_mut(&parent) {
            Some(set) => {
                set.remove(&tok.key);
                set.is_empty()
            }
            None => false,
        };
        if emptied {
            self.levels[k].children.remove(&parent);
        }
        if k + 1 == self.depth() {
            cs.remove(&InstKey {
                rule: self.rule,
                wmes: tok.key.clone(),
            });
            return;
        }
        let next = k + 1;
        let kv = self.levels[next].token_keyvals(&tok);
        let emptied = match self.levels[next].left_index.get_mut(&kv) {
            Some(bucket) => {
                bucket.remove(&tok.key);
                bucket.is_empty()
            }
            None => false,
        };
        if emptied {
            self.levels[next].left_index.remove(&kv);
        }
        if self.levels[next].is_negative() {
            self.levels[next].neg_counts.remove(&tok.key);
        }
        // Cascade: every output at the next level derived from this token.
        if let Some(kids) = self.levels[next].children.get(&tok.key) {
            let victims: Vec<TokKey> = kids.iter().cloned().collect();
            for v in victims {
                self.remove_output(next, &v, cs);
            }
        }
    }

    /// The input token of level `k` with `key`, if still live.
    fn input_token(&self, k: usize, key: &TokKey) -> Option<Token> {
        if k == 0 {
            (key.is_empty()).then(|| self.root.clone())
        } else {
            self.levels[k - 1].tokens.get(key).cloned()
        }
    }

    fn add_wme(&mut self, wme: &Wme, cs: &mut ConflictSet) {
        for k in 0..self.depth() {
            if !self.levels[k].ce.passes_alpha(wme) {
                continue;
            }
            let kv = self.levels[k].wme_keyvals(wme);
            self.levels[k].alpha.insert(wme.id, wme.clone());
            self.levels[k]
                .alpha_index
                .entry(kv.clone())
                .or_default()
                .insert(wme.id);
            let left: Vec<TokKey> = self.levels[k]
                .left_index
                .get(&kv)
                .map(|b| b.iter().cloned().collect())
                .unwrap_or_default();
            if self.levels[k].is_negative() {
                for tkey in left {
                    let Some(tok) = self.input_token(k, &tkey) else {
                        continue;
                    };
                    if self.levels[k].beta_matches(&tok, wme) {
                        let count = self.levels[k]
                            .neg_counts
                            .get_mut(&tkey)
                            .expect("input token without a negative count");
                        *count += 1;
                        if *count == 1 {
                            self.remove_output(k, &tkey, cs);
                        }
                    }
                }
            } else {
                for tkey in left {
                    let Some(tok) = self.input_token(k, &tkey) else {
                        continue;
                    };
                    if let Some(t2) = self.extend(k, &tok, wme) {
                        self.insert_token(k, t2, cs);
                    }
                }
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme, cs: &mut ConflictSet) {
        // 1. Drop the WME from every alpha memory it sits in, remembering
        //    the negative levels for the re-activation pass — together
        //    with a snapshot of the input tokens whose counts *included*
        //    this WME. Re-activation at a shallower level can re-insert
        //    tokens here with fresh counts (computed from the already-
        //    shrunk alpha memory); those must not be decremented again.
        let mut negs: Vec<(usize, FxHashSet<TokKey>)> = Vec::new();
        for k in 0..self.depth() {
            if self.levels[k].alpha.remove(&wme.id).is_some() {
                let kv = self.levels[k].wme_keyvals(wme);
                let emptied = match self.levels[k].alpha_index.get_mut(&kv) {
                    Some(bucket) => {
                        bucket.remove(&wme.id);
                        bucket.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    self.levels[k].alpha_index.remove(&kv);
                }
                if self.levels[k].is_negative() {
                    negs.push((k, self.levels[k].neg_counts.keys().cloned().collect()));
                }
            }
        }
        // 2. Retract every token that positively matched the WME, straight
        //    from the per-WME index; scanning shallow-to-deep lets the
        //    cascade do most of the work (deeper entries are usually gone
        //    by the time their level is reached).
        for k in 0..self.depth() {
            let victims: Vec<TokKey> = self.levels[k]
                .by_wme
                .get(&wme.id)
                .map(|set| set.iter().cloned().collect())
                .unwrap_or_default();
            for v in victims {
                self.remove_output(k, &v, cs);
            }
        }
        // 3. Negative re-activation: live input tokens that were blocked
        //    only by this WME start passing. Only tokens from the phase-1
        //    snapshot are decremented — entries created since then (by
        //    re-activation cascades at shallower levels) never counted the
        //    removed WME.
        for (k, counted) in negs {
            let kv = self.levels[k].wme_keyvals(wme);
            let left: Vec<TokKey> = self.levels[k]
                .left_index
                .get(&kv)
                .map(|b| b.iter().cloned().collect())
                .unwrap_or_default();
            for tkey in left {
                if !counted.contains(&tkey) {
                    continue;
                }
                let Some(tok) = self.input_token(k, &tkey) else {
                    continue;
                };
                if self.levels[k].beta_matches(&tok, wme) {
                    let count = self.levels[k]
                        .neg_counts
                        .get_mut(&tkey)
                        .expect("input token without a negative count");
                    *count -= 1;
                    if *count == 0 && self.neg_pass_tests(k, &tok) {
                        self.insert_token(k, tok, cs);
                    }
                }
            }
        }
    }
}

impl Matcher for Rete {
    fn add_wme(&mut self, wme: &Wme) {
        for net in &mut self.nets {
            net.add_wme(wme, &mut self.cs);
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        for net in &mut self.nets {
            net.remove_wme(wme, &mut self.cs);
        }
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        &self.cs
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let mut m = crate::MatcherMetrics {
            kind: "rete",
            rules: self.nets.len(),
            conflict_set: self.cs.len(),
            ..Default::default()
        };
        for net in &self.nets {
            for level in &net.levels {
                m.alpha_wmes += level.alpha.len();
                m.beta_tokens += level.tokens.len();
                m.negative_counts += level.neg_counts.len();
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::WorkingMemory;
    use parulel_lang::compile;

    fn prog(src: &str) -> Arc<Program> {
        Arc::new(compile(src).unwrap())
    }

    #[test]
    fn join_add_and_remove() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut m = Rete::new(p.clone());
        let e1 = wm.insert(edge, vec![Value::Int(1), Value::Int(2)]);
        let e2 = wm.insert(edge, vec![Value::Int(2), Value::Int(3)]);
        m.add_wme(&e1);
        assert_eq!(m.conflict_set().len(), 0);
        m.add_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1);
        let e3 = wm.insert(edge, vec![Value::Int(3), Value::Int(1)]);
        m.add_wme(&e3);
        assert_eq!(m.conflict_set().len(), 3); // 1-2-3, 2-3-1, 3-1-2
        m.remove_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1); // only 3-1-2 survives
        m.remove_wme(&e3);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn negative_node_blocks_and_reactivates() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut m = Rete::new(p.clone());
        let t = wm.insert(task, vec![Value::Int(7)]);
        m.add_wme(&t);
        assert_eq!(m.conflict_set().len(), 1);
        let l = wm.insert(lock, vec![Value::Int(7)]);
        m.add_wme(&l);
        assert_eq!(m.conflict_set().len(), 0);
        let l2 = wm.insert(lock, vec![Value::Int(7)]);
        m.add_wme(&l2);
        m.remove_wme(&l);
        assert_eq!(m.conflict_set().len(), 0, "second lock still blocks");
        m.remove_wme(&l2);
        assert_eq!(m.conflict_set().len(), 1, "last blocker gone");
    }

    #[test]
    fn leading_negative_ce() {
        let p = prog(
            "(literalize flag)
             (literalize item id)
             (p quiet -(flag) (item ^id <i>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let flag = p.classes.id_of(p.interner.intern("flag")).unwrap();
        let item = p.classes.id_of(p.interner.intern("item")).unwrap();
        let mut m = Rete::new(p.clone());
        let it = wm.insert(item, vec![Value::Int(1)]);
        m.add_wme(&it);
        assert_eq!(m.conflict_set().len(), 1);
        let f = wm.insert(flag, vec![]);
        m.add_wme(&f);
        assert_eq!(m.conflict_set().len(), 0);
        m.remove_wme(&f);
        assert_eq!(m.conflict_set().len(), 1);
    }

    #[test]
    fn anchored_tests_filter_joins() {
        let p = prog(
            "(literalize n v)
             (p asc (n ^v <a>) (n ^v <b>) (test (< <a> <b>)) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut m = Rete::new(p.clone());
        for v in [3, 1, 2] {
            let w = wm.insert(n, vec![Value::Int(v)]);
            m.add_wme(&w);
        }
        // ascending pairs of distinct values: (1,2) (1,3) (2,3)
        assert_eq!(m.conflict_set().len(), 3);
    }

    #[test]
    fn seed_order_does_not_matter() {
        let p = prog(
            "(literalize e a b)
             (p r (e ^a <x> ^b <y>) (e ^a <y> ^b <x>) -(e ^a <x> ^b <x>) --> (halt))",
        );
        let e = p.classes.id_of(p.interner.intern("e")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let wmes: Vec<Wme> = vec![
            wm.insert(e, vec![Value::Int(1), Value::Int(2)]),
            wm.insert(e, vec![Value::Int(2), Value::Int(1)]),
            wm.insert(e, vec![Value::Int(1), Value::Int(1)]),
            wm.insert(e, vec![Value::Int(3), Value::Int(3)]),
        ];
        // All 4! insertion orders must agree.
        let mut reference: Option<Vec<InstKey>> = None;
        let orders = permutations(&[0, 1, 2, 3]);
        for order in orders {
            let mut m = Rete::new(p.clone());
            for &i in &order {
                m.add_wme(&wmes[i]);
            }
            let keys = m.conflict_set().sorted_keys();
            match &reference {
                None => reference = Some(keys),
                Some(r) => assert_eq!(&keys, r, "order {order:?} diverged"),
            }
        }
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn reactivation_cascade_into_fresh_negative_counts() {
        // Regression: removing one WME that blocks at TWO negative levels.
        // Re-activation at the shallow level cascades a *fresh* input
        // token into the deep level, whose count (computed after the
        // removal) must not be decremented again when the deep level's
        // own re-activation pass runs.
        let p = prog(
            "(literalize a x)
             (literalize b x)
             (literalize c x)
             (p r (a ^x <v>) -(b ^x <v>) (c ^x <v>) -(b ^x <v>) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let c = p.classes.id_of(p.interner.intern("c")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let wa = wm.insert(a, vec![Value::Int(1)]);
        let wc = wm.insert(c, vec![Value::Int(1)]);
        let wb = wm.insert(b, vec![Value::Int(1)]);
        for w in [&wa, &wc, &wb] {
            m.add_wme(w);
        }
        assert_eq!(m.conflict_set().len(), 0, "blocked by b");
        // Removing the blocker must re-activate through BOTH negative
        // levels without panicking or double-decrementing.
        m.remove_wme(&wb);
        assert_eq!(m.conflict_set().len(), 1);
        // And re-adding it must retract again.
        m.add_wme(&wb);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn join_across_int_and_float_values() {
        // Int(2) and Float(2.0) are matches_eq-equal; the hash join must
        // not lose the pair to differing key hashes.
        let p = prog(
            "(literalize a x)
             (literalize b y)
             (p r (a ^x <v>) (b ^y <v>) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let w1 = wm.insert(a, vec![Value::Int(2)]);
        let w2 = wm.insert(b, vec![Value::Float(2.0)]);
        m.add_wme(&w1);
        m.add_wme(&w2);
        assert_eq!(m.conflict_set().len(), 1);
        m.remove_wme(&w2);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn add_then_remove_returns_to_empty_state() {
        let p = prog(
            "(literalize a x)
             (literalize b y)
             (p r (a ^x <v>) -(b ^y <v>) (a ^x { > 0 }) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let w1 = wm.insert(a, vec![Value::Int(5)]);
        let w2 = wm.insert(a, vec![Value::Int(-1)]);
        let w3 = wm.insert(b, vec![Value::Int(5)]);
        for w in [&w1, &w2, &w3] {
            m.add_wme(w);
        }
        for w in [&w1, &w2, &w3] {
            m.remove_wme(w);
        }
        assert_eq!(m.conflict_set().len(), 0);
        for net in &m.nets {
            for (k, level) in net.levels.iter().enumerate() {
                assert!(level.alpha.is_empty(), "level {k} alpha not empty");
                assert!(level.tokens.is_empty(), "level {k} tokens not empty");
                assert!(level.alpha_index.is_empty());
                assert!(level.by_wme.is_empty(), "level {k} wme index leaked");
                assert!(level.children.is_empty(), "level {k} child index leaked");
            }
        }
    }
}
