//! An incremental RETE network (Forgy 1982), the state-saving matcher
//! PARULEL's cycle is built on.
//!
//! ## Structure
//!
//! The constant-test layer is the crate-wide [`AlphaNetwork`]: alpha
//! memories are deduplicated by (class, constant-test) key and shared
//! across rules, WME payloads live once in a flat generational arena, and
//! a WME add runs each distinct test list once before fanning out to the
//! subscribing (rule, CE) endpoints. The beta layer stays per rule:
//!
//! * One linear network per rule ("rule net"): level *k* of a net
//!   corresponds to condition element *k* in join order. Each level holds
//!   a subscription to its shared alpha node plus a refcounted hash index
//!   over its **equality join keys** (the `(slot, var)` pairs where the
//!   CE equates a field with a variable bound by an earlier CE).
//! * A **token** is a consistent match of the first *k* CEs: the matched
//!   positive WMEs (as arena handles — 8 bytes each, no `Arc` chasing),
//!   their ids (the token key), and the variable bindings.
//! * Positive levels join input tokens (the previous level's outputs, or
//!   the root token) with their alpha node; candidates come from the
//!   shared hash index, residual beta tests and anchored rule tests run
//!   per candidate.
//! * Negative levels are **counted**: for each input token the level
//!   stores how many alpha WMEs are consistent with it; the token passes
//!   through while the count is zero. Adding a blocker retracts the
//!   downstream tokens; removing the last blocker re-propagates.
//! * The last level's outputs are the rule's instantiations, maintained
//!   directly in the [`ConflictSet`].
//!
//! ## Delivery discipline
//!
//! Because the shared network inserts membership *before* any beta
//! delivery, tokens created during an add compute negative counts that
//! already include the new WME. Delivery therefore increments only input
//! tokens captured in a pre-delivery snapshot of each hit negative
//! level's count table; tokens created (or re-created) mid-add always
//! carry the new WME's id, which no snapshot token can, so the two sets
//! are provably disjoint and nothing is double-counted.

use crate::alpha::{AlphaNetwork, KeyVals, NodeId};
use crate::arena::WmeRef;
use crate::Matcher;
use parulel_core::{
    ConditionElement, ConflictSet, CsEvent, FxHashMap, FxHashSet, InstKey, Instantiation, Polarity,
    Program, RuleId, Value, VarId, Wme, WorkingMemory,
};
use parulel_vm::{EvalMode, Evaluator};
use std::sync::Arc;

type TokKey = Arc<[WmeId]>;
use parulel_core::WmeId;

/// A partial match: the first `k` CEs of a rule, satisfied consistently.
#[derive(Clone, Debug)]
struct Token {
    /// Ids of the positive WMEs matched so far (the identity).
    key: TokKey,
    /// Arena handles of the matched positive WMEs — payloads stay in the
    /// shared store, tokens carry 8-byte refs.
    wmes: Vec<WmeRef>,
    /// Variable bindings (full rule width).
    env: Box<[Value]>,
}

/// One level of a rule net.
struct Level {
    ce: ConditionElement,
    /// Equality join keys: `(slot, var)`.
    keys: Vec<(u16, VarId)>,
    /// The join-key field slots (the shared index this level probes).
    slots: Box<[u16]>,
    /// This level's subscription in the shared alpha network.
    node: NodeId,
    /// Input tokens (previous level's outputs) indexed by this level's
    /// join-key values.
    left_index: FxHashMap<KeyVals, FxHashSet<TokKey>>,
    /// Output tokens of this level.
    tokens: FxHashMap<TokKey, Token>,
    /// Negative levels: per input-token key, the number of alpha WMEs
    /// consistent with it. The token passes through iff the count is 0.
    neg_counts: FxHashMap<TokKey, u32>,
    /// Removal index: WME id → output tokens at this level that matched
    /// it positively. Retracting a WME touches only these tokens instead
    /// of scanning the level.
    by_wme: FxHashMap<WmeId, FxHashSet<TokKey>>,
    /// Cascade index: input-token key → output tokens at this level
    /// derived from it (pos levels extend the key by one id; neg levels
    /// pass it through unchanged).
    children: FxHashMap<TokKey, FxHashSet<TokKey>>,
}

impl Level {
    /// The input-token key an output token at this level derives from.
    fn parent_key(&self, key: &TokKey) -> TokKey {
        if self.is_negative() {
            key.clone()
        } else {
            key[..key.len() - 1].into()
        }
    }

    fn is_negative(&self) -> bool {
        self.ce.polarity == Polarity::Negative
    }

    fn wme_keyvals(&self, wme: &Wme) -> KeyVals {
        self.keys
            .iter()
            .map(|&(slot, _)| wme.field(slot as usize).join_key())
            .collect()
    }

    fn token_keyvals(&self, tok: &Token) -> KeyVals {
        self.keys
            .iter()
            .map(|&(_, var)| tok.env[var.index()].join_key())
            .collect()
    }

    /// Does `wme` extend/block `tok` at this level (beta tests only)?
    /// Uses a scratch env; bindings are not kept. `rule`/`k` address this
    /// level's compiled code in the evaluator.
    fn beta_matches(&self, eval: &Evaluator, rule: RuleId, k: usize, tok: &Token, wme: &Wme) -> bool {
        let mut scratch = tok.env.clone();
        eval.run_beta(rule, k, wme, &mut scratch)
    }
}

/// One rule's beta network.
struct RuleNet {
    rule: RuleId,
    levels: Vec<Level>,
    root: Token,
}

/// The incremental RETE matcher: shared alpha network + per-rule beta
/// nets.
pub struct Rete {
    alpha: AlphaNetwork,
    eval: Evaluator,
    nets: Vec<RuleNet>,
    cs: ConflictSet,
}

impl Rete {
    /// Builds a network for every rule of `program`, with alpha sharing.
    pub fn new(program: Arc<Program>) -> Self {
        let rules = (0..program.rules().len() as u32).map(RuleId).collect();
        Self::with_rules(program, rules)
    }

    /// Builds networks for a subset of rules (the partitioned matcher's
    /// workers use this), with alpha sharing.
    pub fn with_rules(program: Arc<Program>, rules: Vec<RuleId>) -> Self {
        Self::with_rules_sharing(program, rules, true)
    }

    /// Like [`with_rules`](Self::with_rules) but with alpha-memory
    /// deduplication switchable — `dedup = false` keeps one node per
    /// (rule, CE), the per-rule baseline the joinbench ablation measures
    /// against.
    pub fn with_rules_sharing(program: Arc<Program>, rules: Vec<RuleId>, dedup: bool) -> Self {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        Self::with_rules_eval(program, rules, dedup, eval)
    }

    /// Like [`with_rules_sharing`](Self::with_rules_sharing) with a
    /// caller-built [`Evaluator`] (the engine compiles once and hands out
    /// clones; the alpha network inherits the evaluator's mode).
    pub fn with_rules_eval(
        program: Arc<Program>,
        rules: Vec<RuleId>,
        dedup: bool,
        eval: Evaluator,
    ) -> Self {
        let mut alpha = AlphaNetwork::new_with_eval(program.classes.len(), dedup, eval.mode());
        let mut nets = Vec::with_capacity(rules.len());
        let mut cs = ConflictSet::new();
        for rid in rules {
            nets.push(build_net(&program, rid, &mut alpha, &mut cs, &eval));
        }
        Rete {
            alpha,
            eval,
            nets,
            cs,
        }
    }
}

impl Rete {
    /// Verifies every cross-index of the network agrees (the
    /// differential suite calls this after each batch in debug builds so
    /// index leaks/desyncs surface at the op that caused them, not as a
    /// wrong conflict set much later). Panics with a description on
    /// violation.
    pub fn check_invariants(&self) {
        // Store/node/index/refcount agreement inside the shared layer.
        self.alpha.check_invariants();
        for net in &self.nets {
            let rule = net.rule.0;
            for (k, level) in net.levels.iter().enumerate() {
                // The level's subscription and shared index exist.
                assert!(
                    self.alpha.endpoints(level.node).contains(&crate::alpha::Endpoint {
                        rule: net.rule,
                        ce: k as u32
                    }),
                    "r{rule} L{k}: endpoint missing from its alpha node"
                );
                assert!(
                    self.alpha.index_len(level.node, &level.slots).is_some(),
                    "r{rule} L{k}: join index missing from its alpha node"
                );
                // Tokens and their removal/cascade indexes agree, and
                // every token ref resolves to the WME its key names.
                for (key, tok) in &level.tokens {
                    assert_eq!(key, &tok.key, "r{rule} L{k}: token filed under wrong key");
                    assert_eq!(
                        tok.key.len(),
                        tok.wmes.len(),
                        "r{rule} L{k}: token key/refs width mismatch"
                    );
                    for (id, &wref) in tok.key.iter().zip(&tok.wmes) {
                        let wme = self
                            .alpha
                            .try_wme(wref)
                            .unwrap_or_else(|| panic!("r{rule} L{k}: token holds stale ref"));
                        assert_eq!(wme.id, *id, "r{rule} L{k}: token ref/id mismatch");
                    }
                    for id in key.iter() {
                        assert!(
                            level.by_wme.get(id).is_some_and(|s| s.contains(key)),
                            "r{rule} L{k}: token missing from by_wme[{id}]"
                        );
                    }
                }
                for (id, keys) in &level.by_wme {
                    assert!(!keys.is_empty(), "r{rule} L{k}: empty by_wme[{id}] bucket");
                    for key in keys {
                        assert!(
                            level.tokens.contains_key(key),
                            "r{rule} L{k}: by_wme[{id}] points at dead token"
                        );
                    }
                }
                for (parent, kids) in &level.children {
                    assert!(!kids.is_empty(), "r{rule} L{k}: empty children bucket");
                    for kid in kids {
                        assert!(
                            level.tokens.contains_key(kid),
                            "r{rule} L{k}: children points at dead token"
                        );
                        assert_eq!(
                            &level.parent_key(kid),
                            parent,
                            "r{rule} L{k}: child filed under wrong parent"
                        );
                    }
                }
                // Left inputs are live tokens of the previous level (or
                // the permanent root entry at level 0).
                let mut left_keys: FxHashSet<&TokKey> = FxHashSet::default();
                for (kv, bucket) in &level.left_index {
                    assert!(!bucket.is_empty(), "r{rule} L{k}: empty left bucket");
                    for tkey in bucket {
                        let tok = if k == 0 {
                            assert!(tkey.is_empty(), "r{rule} L0: non-root left input");
                            net.root.clone()
                        } else {
                            net.levels[k - 1]
                                .tokens
                                .get(tkey)
                                .unwrap_or_else(|| {
                                    panic!("r{rule} L{k}: left input not live upstream")
                                })
                                .clone()
                        };
                        assert_eq!(
                            &level.token_keyvals(&tok),
                            kv,
                            "r{rule} L{k}: left input under wrong key"
                        );
                        left_keys.insert(tkey);
                    }
                }
                if level.is_negative() {
                    // Every live input has exactly one count; no orphans.
                    assert_eq!(
                        left_keys.len(),
                        level.neg_counts.len(),
                        "r{rule} L{k}: neg_counts/left_index desync"
                    );
                    for tkey in level.neg_counts.keys() {
                        assert!(
                            left_keys.contains(tkey),
                            "r{rule} L{k}: orphaned negative count"
                        );
                    }
                }
            }
            // The last level's outputs are exactly this rule's
            // conflict-set entries.
            if let Some(last) = net.levels.last() {
                for key in last.tokens.keys() {
                    let ik = InstKey {
                        rule: net.rule,
                        wmes: key.clone(),
                    };
                    assert!(
                        self.cs.contains(&ik),
                        "r{rule}: final token missing from conflict set"
                    );
                }
                let in_cs = self.cs.iter().filter(|i| i.rule == net.rule).count();
                assert_eq!(
                    in_cs,
                    last.tokens.len(),
                    "r{rule}: conflict set/final level desync"
                );
            }
        }
    }
}

/// Builds one rule's net — subscribing each level to the shared alpha
/// network — and derives its complete token set from the current store in
/// one batch pass (no per-WME replay: counts and joins are computed from
/// full node membership). On an empty store this degenerates to the
/// root-only state; `replace_rules` gets post-split nets for free.
///
/// Inserts into `cs` anything the net derives (a leading-negative rule
/// with no blockers matches the root token; a zero-CE rule has exactly
/// one vacuous instantiation, matching what enumeration-based matchers
/// produce).
fn build_net(
    program: &Program,
    rid: RuleId,
    alpha: &mut AlphaNetwork,
    cs: &mut ConflictSet,
    eval: &Evaluator,
) -> RuleNet {
    let rule = program.rule(rid);
    let mut levels: Vec<Level> = rule
        .ces
        .iter()
        .enumerate()
        .map(|(k, ce)| {
            let keys = ce.eq_join_keys(rule.vars_bound_by(k));
            let slots: Box<[u16]> = keys.iter().map(|&(slot, _)| slot).collect();
            let node = alpha.subscribe(ce, rid, k);
            alpha.subscribe_index(node, &slots);
            Level {
                ce: ce.clone(),
                keys,
                slots,
                node,
                left_index: FxHashMap::default(),
                tokens: FxHashMap::default(),
                neg_counts: FxHashMap::default(),
                by_wme: FxHashMap::default(),
                children: FxHashMap::default(),
            }
        })
        .collect();
    let root = Token {
        key: Arc::from(Vec::new()),
        wmes: Vec::new(),
        env: vec![Value::NIL; rule.num_vars as usize].into(),
    };
    if levels.is_empty() {
        // No CEs at all: both the `parulel-lang` parser (empty LHS) and
        // `Program::add_rule` (no positive CE) reject such rules, so this
        // is unreachable through the public pipeline — but match
        // vacuously (once, like enumeration-based matchers would) rather
        // than leave a latent `levels[0]` panic below.
        cs.insert(Instantiation::new(rid, Vec::<Wme>::new(), root.env.to_vec()));
        return RuleNet {
            rule: rid,
            levels,
            root,
        };
    }
    // Register the root token as input to level 0, then batch-derive the
    // token set from whatever the store already holds.
    let kv = levels[0].token_keyvals(&root);
    levels[0]
        .left_index
        .entry(kv)
        .or_default()
        .insert(root.key.clone());
    let mut net = RuleNet {
        rule: rid,
        levels,
        root,
    };
    net.activate_root(alpha, cs, eval);
    net
}

impl RuleNet {
    /// Number of levels.
    fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Drives the root token into level 0, computing counts/joins from
    /// full node membership — the batch half of net construction.
    fn activate_root(&mut self, alpha: &AlphaNetwork, cs: &mut ConflictSet, eval: &Evaluator) {
        let root = self.root.clone();
        if self.levels[0].is_negative() {
            let count = self.blocker_count(0, &root, alpha, eval);
            self.levels[0].neg_counts.insert(root.key.clone(), count);
            if count == 0 && self.neg_pass_tests(0, &root, eval) {
                self.insert_token(0, root, alpha, cs, eval);
            }
        } else {
            let kv = self.levels[0].token_keyvals(&root);
            let candidates: Vec<WmeRef> =
                match alpha.index_bucket(self.levels[0].node, &self.levels[0].slots, &kv) {
                    Some(bucket) => bucket.iter().copied().collect(),
                    None => Vec::new(),
                };
            for r in candidates {
                if let Some(t2) = self.extend(0, &root, r, alpha, eval) {
                    self.insert_token(0, t2, alpha, cs, eval);
                }
            }
        }
    }

    /// How many members of negative level `k`'s alpha node are consistent
    /// with `tok` (the level's count table value for a fresh input).
    fn blocker_count(&self, k: usize, tok: &Token, alpha: &AlphaNetwork, eval: &Evaluator) -> u32 {
        let level = &self.levels[k];
        let kv = level.token_keyvals(tok);
        match alpha.index_bucket(level.node, &level.slots, &kv) {
            Some(bucket) => bucket
                .iter()
                .filter(|&&r| level.beta_matches(eval, self.rule, k, tok, alpha.wme(r)))
                .count() as u32,
            None => 0,
        }
    }

    /// Extends `tok` with the WME behind `wref` at positive level `k`, if
    /// consistent. Copies the 8-byte handle, never the payload.
    fn extend(
        &self,
        k: usize,
        tok: &Token,
        wref: WmeRef,
        alpha: &AlphaNetwork,
        eval: &Evaluator,
    ) -> Option<Token> {
        let wme = alpha.wme(wref);
        let mut env = tok.env.clone();
        if !eval.run_beta(self.rule, k, wme, &mut env) {
            return None;
        }
        if !eval.tests_pass_at(self.rule, k, &env) {
            return None;
        }
        let mut key: Vec<WmeId> = tok.key.to_vec();
        key.push(wme.id);
        let mut wmes = tok.wmes.clone();
        wmes.push(wref);
        Some(Token {
            key: key.into(),
            wmes,
            env,
        })
    }

    /// For a token passing *through* negative level `k`: anchored tests
    /// must still hold (env is unchanged).
    fn neg_pass_tests(&self, k: usize, tok: &Token, eval: &Evaluator) -> bool {
        eval.tests_pass_at(self.rule, k, &tok.env)
    }

    /// Inserts `tok` as an output of level `k` and propagates downstream.
    fn insert_token(
        &mut self,
        k: usize,
        tok: Token,
        alpha: &AlphaNetwork,
        cs: &mut ConflictSet,
        eval: &Evaluator,
    ) {
        if self.levels[k]
            .tokens
            .insert(tok.key.clone(), tok.clone())
            .is_some()
        {
            return; // already present (idempotent)
        }
        for id in tok.key.iter() {
            self.levels[k]
                .by_wme
                .entry(*id)
                .or_default()
                .insert(tok.key.clone());
        }
        let parent = self.levels[k].parent_key(&tok.key);
        self.levels[k]
            .children
            .entry(parent)
            .or_default()
            .insert(tok.key.clone());
        if k + 1 == self.depth() {
            // The only place full WME payloads are cloned: materializing
            // the instantiation handed to the conflict set.
            let wmes: Vec<Wme> = tok.wmes.iter().map(|&r| alpha.wme(r).clone()).collect();
            cs.insert(Instantiation::new(self.rule, wmes, tok.env.to_vec()));
            return;
        }
        let next = k + 1;
        let kv = self.levels[next].token_keyvals(&tok);
        self.levels[next]
            .left_index
            .entry(kv.clone())
            .or_default()
            .insert(tok.key.clone());
        if self.levels[next].is_negative() {
            let count = self.blocker_count(next, &tok, alpha, eval);
            self.levels[next].neg_counts.insert(tok.key.clone(), count);
            if count == 0 && self.neg_pass_tests(next, &tok, eval) {
                self.insert_token(next, tok, alpha, cs, eval);
            }
        } else {
            // Handle copies only — candidate payloads stay in the shared
            // store; this Vec exists to end the borrow of `self.levels`
            // before the recursive insert below.
            let candidates: Vec<WmeRef> =
                match alpha.index_bucket(self.levels[next].node, &self.levels[next].slots, &kv) {
                    Some(bucket) => bucket.iter().copied().collect(),
                    None => Vec::new(),
                };
            for r in candidates {
                if let Some(t2) = self.extend(next, &tok, r, alpha, eval) {
                    self.insert_token(next, t2, alpha, cs, eval);
                }
            }
        }
    }

    /// Removes the output token with `key` from level `k`, cascading into
    /// deeper levels and the conflict set. Tolerates already-absent keys.
    fn remove_output(&mut self, k: usize, key: &TokKey, cs: &mut ConflictSet) {
        let Some(tok) = self.levels[k].tokens.remove(key) else {
            return;
        };
        for id in tok.key.iter() {
            let emptied = match self.levels[k].by_wme.get_mut(id) {
                Some(set) => {
                    set.remove(&tok.key);
                    set.is_empty()
                }
                None => false,
            };
            if emptied {
                self.levels[k].by_wme.remove(id);
            }
        }
        let parent = self.levels[k].parent_key(&tok.key);
        let emptied = match self.levels[k].children.get_mut(&parent) {
            Some(set) => {
                set.remove(&tok.key);
                set.is_empty()
            }
            None => false,
        };
        if emptied {
            self.levels[k].children.remove(&parent);
        }
        if k + 1 == self.depth() {
            cs.remove(&InstKey {
                rule: self.rule,
                wmes: tok.key.clone(),
            });
            return;
        }
        let next = k + 1;
        let kv = self.levels[next].token_keyvals(&tok);
        let emptied = match self.levels[next].left_index.get_mut(&kv) {
            Some(bucket) => {
                bucket.remove(&tok.key);
                bucket.is_empty()
            }
            None => false,
        };
        if emptied {
            self.levels[next].left_index.remove(&kv);
        }
        if self.levels[next].is_negative() {
            self.levels[next].neg_counts.remove(&tok.key);
        }
        // Cascade: every output at the next level derived from this token.
        if let Some(kids) = self.levels[next].children.get(&tok.key) {
            let victims: Vec<TokKey> = kids.iter().cloned().collect();
            for v in victims {
                self.remove_output(next, &v, cs);
            }
        }
    }

    /// The input token of level `k` with `key`, if still live.
    fn input_token(&self, k: usize, key: &TokKey) -> Option<Token> {
        if k == 0 {
            (key.is_empty()).then(|| self.root.clone())
        } else {
            self.levels[k - 1].tokens.get(key).cloned()
        }
    }

    /// Beta delivery for one added WME, at the levels (`hits`, ascending)
    /// whose shared alpha nodes it entered.
    #[allow(clippy::too_many_arguments)]
    fn deliver_add(
        &mut self,
        hits: &[usize],
        wref: WmeRef,
        wme: &Wme,
        alpha: &AlphaNetwork,
        cs: &mut ConflictSet,
        eval: &Evaluator,
    ) {
        // Node membership was updated before delivery, so any token
        // created from here on computes counts that already include the
        // new WME. Those freshly-built tokens are exactly the ones whose
        // key carries the new WME's id (every insert during an add
        // delivery descends from an extension with it, and the id is
        // fresh), so they are skipped by inspecting the key — tokens that
        // predate the add cannot reference the id. No per-delivery
        // snapshot of the count table is needed.
        for &k in hits {
            let kv = self.levels[k].wme_keyvals(wme);
            let left: Vec<TokKey> = self.levels[k]
                .left_index
                .get(&kv)
                .map(|b| b.iter().cloned().collect())
                .unwrap_or_default();
            if self.levels[k].is_negative() {
                for tkey in left {
                    if tkey.contains(&wme.id) {
                        continue; // built during this delivery: fresh count
                    }
                    let Some(tok) = self.input_token(k, &tkey) else {
                        continue;
                    };
                    if self.levels[k].beta_matches(eval, self.rule, k, &tok, wme) {
                        let count = self.levels[k]
                            .neg_counts
                            .get_mut(&tkey)
                            .expect("input token without a negative count");
                        *count += 1;
                        if *count == 1 {
                            self.remove_output(k, &tkey, cs);
                        }
                    }
                }
            } else {
                for tkey in left {
                    let Some(tok) = self.input_token(k, &tkey) else {
                        continue;
                    };
                    if let Some(t2) = self.extend(k, &tok, wref, alpha, eval) {
                        self.insert_token(k, t2, alpha, cs, eval);
                    }
                }
            }
        }
    }

    /// Beta retraction for one removed WME (already gone from the shared
    /// store), at the levels whose nodes it left.
    fn deliver_remove(
        &mut self,
        hits: &[usize],
        wme: &Wme,
        alpha: &AlphaNetwork,
        cs: &mut ConflictSet,
        eval: &Evaluator,
    ) {
        // 1. Retract every token that positively matched the WME, straight
        //    from the per-WME index; scanning shallow-to-deep lets the
        //    cascade do most of the work (deeper entries are usually gone
        //    by the time their level is reached). This phase only removes,
        //    never inserts.
        for k in 0..self.depth() {
            let victims: Vec<TokKey> = self.levels[k]
                .by_wme
                .get(&wme.id)
                .map(|set| set.iter().cloned().collect())
                .unwrap_or_default();
            for v in victims {
                self.remove_output(k, &v, cs);
            }
        }
        // 2. Negative re-activation, deepest level first: live input
        //    tokens that were blocked only by this WME start passing.
        //    A re-activation at level k only inserts tokens at levels
        //    deeper than k — whose counts are computed fresh from the
        //    already-shrunk membership and must not be decremented — and
        //    deepest-first ordering guarantees those levels were already
        //    handled, so every entry seen here predates the delivery and
        //    its count included the WME.
        let neg_hits: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&k| self.levels[k].is_negative())
            .collect();
        for &k in neg_hits.iter().rev() {
            let kv = self.levels[k].wme_keyvals(wme);
            let left: Vec<TokKey> = self.levels[k]
                .left_index
                .get(&kv)
                .map(|b| b.iter().cloned().collect())
                .unwrap_or_default();
            for tkey in left {
                let Some(tok) = self.input_token(k, &tkey) else {
                    continue;
                };
                if self.levels[k].beta_matches(eval, self.rule, k, &tok, wme) {
                    let count = self.levels[k]
                        .neg_counts
                        .get_mut(&tkey)
                        .expect("input token without a negative count");
                    *count -= 1;
                    if *count == 0 && self.neg_pass_tests(k, &tok, eval) {
                        self.insert_token(k, tok, alpha, cs, eval);
                    }
                }
            }
        }
    }
}

/// Groups the endpoints of `entered` alpha nodes by rule, yielding each
/// rule's hit CE positions sorted ascending (the shallow-to-deep delivery
/// order the beta pass relies on).
fn hits_by_rule(alpha: &AlphaNetwork, entered: &[NodeId]) -> FxHashMap<RuleId, Vec<usize>> {
    let mut by_rule: FxHashMap<RuleId, Vec<usize>> = FxHashMap::default();
    for &nid in entered {
        for ep in alpha.endpoints(nid) {
            by_rule.entry(ep.rule).or_default().push(ep.ce as usize);
        }
    }
    for hits in by_rule.values_mut() {
        hits.sort_unstable();
    }
    by_rule
}

impl Matcher for Rete {
    fn add_wme(&mut self, wme: &Wme) {
        // The shared layer runs each distinct test list once and stores
        // the payload once; beta delivery fans out to the subscribers.
        let (wref, entered) = self.alpha.add(wme);
        let mut by_rule = hits_by_rule(&self.alpha, &entered);
        for net in &mut self.nets {
            if let Some(hits) = by_rule.remove(&net.rule) {
                net.deliver_add(&hits, wref, wme, &self.alpha, &mut self.cs, &self.eval);
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let Some((payload, left)) = self.alpha.remove(wme.id) else {
            return; // never added — nothing can reference it
        };
        let mut by_rule = hits_by_rule(&self.alpha, &left);
        for net in &mut self.nets {
            if let Some(hits) = by_rule.remove(&net.rule) {
                net.deliver_remove(&hits, &payload, &self.alpha, &mut self.cs, &self.eval);
            }
        }
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        &self.cs
    }

    fn drain_cs_events(&mut self) -> Option<Vec<CsEvent>> {
        self.cs.drain_journal_or_enable()
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let mut m = crate::MatcherMetrics {
            kind: "rete",
            rules: self.nets.len(),
            conflict_set: self.cs.len(),
            alpha_nodes: self.alpha.node_count(),
            alpha_subscriptions: self.alpha.subscription_count(),
            alpha_share_hits: self.alpha.share_hits(),
            ..Default::default()
        };
        let mut cs_by_rule: FxHashMap<u32, usize> = FxHashMap::default();
        for inst in self.cs.iter() {
            *cs_by_rule.entry(inst.rule.0).or_default() += 1;
        }
        for net in &self.nets {
            let mut work = cs_by_rule.get(&net.rule.0).copied().unwrap_or(0);
            for level in &net.levels {
                // Per-subscription accounting (a shared node counts once
                // per subscribing level), so `alpha_wmes`, per-rule work
                // and the imbalance signal keep their pre-sharing values
                // and auto-ccc decisions are unchanged.
                let members = self.alpha.members(level.node).len();
                m.alpha_wmes += members;
                m.beta_tokens += level.tokens.len();
                m.negative_counts += level.neg_counts.len();
                work += members + level.tokens.len();
            }
            m.per_rule_work.push((net.rule.0, work));
        }
        m.per_rule_work.sort_unstable();
        m
    }

    fn replace_rules(
        &mut self,
        program: &Arc<Program>,
        remove: &[RuleId],
        add: &[RuleId],
        _wm: &WorkingMemory,
    ) -> bool {
        for &rid in remove {
            let mut i = 0;
            while i < self.nets.len() {
                if self.nets[i].rule != rid {
                    i += 1;
                    continue;
                }
                let net = self.nets.remove(i);
                // Release the shared subscriptions; nodes still used by
                // other rules (a split rule's unchanged CEs) survive with
                // their membership intact.
                for (k, level) in net.levels.iter().enumerate() {
                    self.alpha.unsubscribe_index(level.node, &level.slots);
                    self.alpha.unsubscribe(level.node, net.rule, k);
                }
            }
            let stale: Vec<InstKey> = self
                .cs
                .iter()
                .filter(|i| i.rule == rid)
                .map(|i| i.key())
                .collect();
            for k in stale {
                self.cs.remove(&k);
            }
        }
        // Recompile the evaluator against the new program before any net is
        // built (unchanged rules compile to identical code; surviving
        // alpha nodes keep their compiled test code untouched).
        self.eval = Evaluator::new(program.clone(), self.eval.mode());
        for &rid in add {
            // build_net batch-derives the new net's tokens from the shared
            // store — no per-WME replay of working memory.
            let net = build_net(program, rid, &mut self.alpha, &mut self.cs, &self.eval);
            self.nets.push(net);
        }
        // Net order is not semantically observable (the conflict set is a
        // set), but keep it sorted so metrics read deterministically.
        self.nets.sort_by_key(|n| n.rule);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::WorkingMemory;
    use parulel_lang::compile;

    fn prog(src: &str) -> Arc<Program> {
        Arc::new(compile(src).unwrap())
    }

    #[test]
    fn join_add_and_remove() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut m = Rete::new(p.clone());
        let e1 = wm.insert(edge, vec![Value::Int(1), Value::Int(2)]);
        let e2 = wm.insert(edge, vec![Value::Int(2), Value::Int(3)]);
        m.add_wme(&e1);
        assert_eq!(m.conflict_set().len(), 0);
        m.add_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1);
        let e3 = wm.insert(edge, vec![Value::Int(3), Value::Int(1)]);
        m.add_wme(&e3);
        assert_eq!(m.conflict_set().len(), 3); // 1-2-3, 2-3-1, 3-1-2
        m.remove_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1); // only 3-1-2 survives
        m.remove_wme(&e3);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn negative_node_blocks_and_reactivates() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut m = Rete::new(p.clone());
        let t = wm.insert(task, vec![Value::Int(7)]);
        m.add_wme(&t);
        assert_eq!(m.conflict_set().len(), 1);
        let l = wm.insert(lock, vec![Value::Int(7)]);
        m.add_wme(&l);
        assert_eq!(m.conflict_set().len(), 0);
        let l2 = wm.insert(lock, vec![Value::Int(7)]);
        m.add_wme(&l2);
        m.remove_wme(&l);
        assert_eq!(m.conflict_set().len(), 0, "second lock still blocks");
        m.remove_wme(&l2);
        assert_eq!(m.conflict_set().len(), 1, "last blocker gone");
    }

    #[test]
    fn leading_negative_ce() {
        let p = prog(
            "(literalize flag)
             (literalize item id)
             (p quiet -(flag) (item ^id <i>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let flag = p.classes.id_of(p.interner.intern("flag")).unwrap();
        let item = p.classes.id_of(p.interner.intern("item")).unwrap();
        let mut m = Rete::new(p.clone());
        let it = wm.insert(item, vec![Value::Int(1)]);
        m.add_wme(&it);
        assert_eq!(m.conflict_set().len(), 1);
        let f = wm.insert(flag, vec![]);
        m.add_wme(&f);
        assert_eq!(m.conflict_set().len(), 0);
        m.remove_wme(&f);
        assert_eq!(m.conflict_set().len(), 1);
    }

    #[test]
    fn anchored_tests_filter_joins() {
        let p = prog(
            "(literalize n v)
             (p asc (n ^v <a>) (n ^v <b>) (test (< <a> <b>)) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut m = Rete::new(p.clone());
        for v in [3, 1, 2] {
            let w = wm.insert(n, vec![Value::Int(v)]);
            m.add_wme(&w);
        }
        // ascending pairs of distinct values: (1,2) (1,3) (2,3)
        assert_eq!(m.conflict_set().len(), 3);
    }

    #[test]
    fn seed_order_does_not_matter() {
        let p = prog(
            "(literalize e a b)
             (p r (e ^a <x> ^b <y>) (e ^a <y> ^b <x>) -(e ^a <x> ^b <x>) --> (halt))",
        );
        let e = p.classes.id_of(p.interner.intern("e")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let wmes: Vec<Wme> = vec![
            wm.insert(e, vec![Value::Int(1), Value::Int(2)]),
            wm.insert(e, vec![Value::Int(2), Value::Int(1)]),
            wm.insert(e, vec![Value::Int(1), Value::Int(1)]),
            wm.insert(e, vec![Value::Int(3), Value::Int(3)]),
        ];
        // All 4! insertion orders must agree.
        let mut reference: Option<Vec<InstKey>> = None;
        let orders = permutations(&[0, 1, 2, 3]);
        for order in orders {
            let mut m = Rete::new(p.clone());
            for &i in &order {
                m.add_wme(&wmes[i]);
            }
            let keys = m.conflict_set().sorted_keys();
            match &reference {
                None => reference = Some(keys),
                Some(r) => assert_eq!(&keys, r, "order {order:?} diverged"),
            }
        }
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn reactivation_cascade_into_fresh_negative_counts() {
        // Regression: removing one WME that blocks at TWO negative levels.
        // Re-activation at the shallow level cascades a *fresh* input
        // token into the deep level, whose count (computed after the
        // removal) must not be decremented again when the deep level's
        // own re-activation pass runs.
        let p = prog(
            "(literalize a x)
             (literalize b x)
             (literalize c x)
             (p r (a ^x <v>) -(b ^x <v>) (c ^x <v>) -(b ^x <v>) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let c = p.classes.id_of(p.interner.intern("c")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let wa = wm.insert(a, vec![Value::Int(1)]);
        let wc = wm.insert(c, vec![Value::Int(1)]);
        let wb = wm.insert(b, vec![Value::Int(1)]);
        for w in [&wa, &wc, &wb] {
            m.add_wme(w);
        }
        assert_eq!(m.conflict_set().len(), 0, "blocked by b");
        // Removing the blocker must re-activate through BOTH negative
        // levels without panicking or double-decrementing.
        m.remove_wme(&wb);
        assert_eq!(m.conflict_set().len(), 1);
        // And re-adding it must retract again. Both negative levels share
        // one alpha node here, so this also exercises the add-side
        // snapshot discipline.
        m.add_wme(&wb);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn join_across_int_and_float_values() {
        // Int(2) and Float(2.0) are matches_eq-equal; the hash join must
        // not lose the pair to differing key hashes.
        let p = prog(
            "(literalize a x)
             (literalize b y)
             (p r (a ^x <v>) (b ^y <v>) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let w1 = wm.insert(a, vec![Value::Int(2)]);
        let w2 = wm.insert(b, vec![Value::Float(2.0)]);
        m.add_wme(&w1);
        m.add_wme(&w2);
        assert_eq!(m.conflict_set().len(), 1);
        m.remove_wme(&w2);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn add_then_remove_returns_to_empty_state() {
        let p = prog(
            "(literalize a x)
             (literalize b y)
             (p r (a ^x <v>) -(b ^y <v>) (a ^x { > 0 }) --> (halt))",
        );
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        let b = p.classes.id_of(p.interner.intern("b")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Rete::new(p.clone());
        let w1 = wm.insert(a, vec![Value::Int(5)]);
        let w2 = wm.insert(a, vec![Value::Int(-1)]);
        let w3 = wm.insert(b, vec![Value::Int(5)]);
        for w in [&w1, &w2, &w3] {
            m.add_wme(w);
        }
        for w in [&w1, &w2, &w3] {
            m.remove_wme(w);
        }
        assert_eq!(m.conflict_set().len(), 0);
        assert_eq!(m.alpha.store_len(), 0, "arena did not drain");
        for net in &m.nets {
            for (k, level) in net.levels.iter().enumerate() {
                assert!(
                    m.alpha.members(level.node).is_empty(),
                    "level {k} node membership not empty"
                );
                assert!(level.tokens.is_empty(), "level {k} tokens not empty");
                assert!(level.by_wme.is_empty(), "level {k} wme index leaked");
                assert!(level.children.is_empty(), "level {k} child index leaked");
                // The only permanent entry is the root token registered as
                // level 0's input (plus its count when level 0 is
                // negative) — everything else must drain.
                if k == 0 {
                    let entries: usize = level.left_index.values().map(|b| b.len()).sum();
                    assert_eq!(entries, 1, "level 0 must keep exactly the root input");
                    assert!(
                        level.left_index.values().flatten().all(|t| t.is_empty()),
                        "level 0 left input is not the root token"
                    );
                    let want_counts = usize::from(level.is_negative());
                    assert_eq!(level.neg_counts.len(), want_counts, "level 0 neg_counts");
                } else {
                    assert!(level.left_index.is_empty(), "level {k} left index leaked");
                    assert!(level.neg_counts.is_empty(), "level {k} neg counts leaked");
                }
            }
        }
        m.check_invariants();
    }

    #[test]
    fn replace_rules_swap_matches_fresh_build() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let mut wm = WorkingMemory::new(&p.classes);
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
        }
        let mut m = Rete::new(p.clone());
        for w in wm.iter() {
            m.add_wme(w);
        }
        let want = m.conflict_set().sorted_keys();
        assert!(m.replace_rules(&p, &[RuleId(0)], &[RuleId(0)], &wm));
        assert_eq!(m.conflict_set().sorted_keys(), want);
        m.check_invariants();
    }

    #[test]
    fn identical_ces_share_alpha_nodes_across_rules() {
        // Three rules, all over class `n` with the same constant test on
        // one CE: with sharing, the network keeps one node per distinct
        // key and reports fan-out; without it, one node per subscription.
        let src = "(literalize n v w)
             (p r1 (n ^v 1 ^w <x>) (n ^v 1 ^w <y>) --> (halt))
             (p r2 (n ^v 1 ^w <x>) --> (halt))
             (p r3 (n ^v 2 ^w <x>) --> (halt))";
        let p = prog(src);
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let rules: Vec<RuleId> = (0..3).map(RuleId).collect();
        let mut shared = Rete::with_rules_sharing(p.clone(), rules.clone(), true);
        let mut solo = Rete::with_rules_sharing(p.clone(), rules, false);
        let mut wm = WorkingMemory::new(&p.classes);
        for v in [1, 1, 2] {
            let w = wm.insert(n, vec![Value::Int(v), Value::Int(0)]);
            shared.add_wme(&w);
            solo.add_wme(&w);
        }
        assert_eq!(
            shared.conflict_set().sorted_keys(),
            solo.conflict_set().sorted_keys(),
            "sharing must not change the conflict set"
        );
        let ms = shared.metrics();
        let mp = solo.metrics();
        assert_eq!(ms.alpha_subscriptions, 4, "4 (rule, CE) endpoints");
        assert_eq!(ms.alpha_nodes, 2, "deduped to 2 distinct keys");
        assert!(ms.alpha_share_hits > 0, "fan-out was recorded");
        assert_eq!(mp.alpha_nodes, 4, "baseline keeps one node each");
        assert_eq!(mp.alpha_share_hits, 0);
        assert_eq!(
            ms.alpha_wmes, mp.alpha_wmes,
            "per-subscription accounting is layout-independent"
        );
        shared.check_invariants();
        solo.check_invariants();
    }
}
