//! The shared alpha network: one constant-test layer for all rules.
//!
//! Forgy's RETE derives much of its win from running each distinct alpha
//! (constant) test *once* per WME change and fanning the result out to
//! every production that uses it. The per-rule matchers in this crate
//! historically skipped that sharing — every (rule, CE) pair owned a
//! private alpha memory, so a WME add re-ran identical class/constant
//! tests and re-stored the same payload once per subscriber.
//!
//! [`AlphaNetwork`] centralizes that layer:
//!
//! * WME payloads live once, in a flat generational [`Arena`] (the
//!   [`WmeRef`] handles are what tokens and index buckets store).
//! * Alpha memories are **nodes** deduplicated by their sharing key —
//!   `(class, alpha-test list)` with tests in slot order. Subscribing a
//!   (rule, CE) endpoint to an existing key refcounts the node instead of
//!   creating state.
//! * Nodes are bucketed **by class**: an add hashes to its class bucket
//!   and never visits nodes (hence rules) of other classes.
//! * Each node can carry hash **indexes** over field-slot lists (the
//!   equality-join keys RETE levels probe), themselves refcounted and
//!   shared by slot list.
//!
//! `add` runs each distinct test list once per WME and reports which
//! nodes it entered; `share_hits` counts the evaluations that fanned out
//! to more than one subscriber — the work the old per-rule layout would
//! have repeated.
//!
//! Deduplication can be disabled (`dedup = false`) to reproduce the
//! per-rule baseline for the joinbench ablation: same API, one node per
//! subscription.

use crate::arena::{Arena, WmeRef};
use parulel_core::{
    ClassId, ConditionElement, FieldTest, FxHashMap, FxHashSet, RuleId, Value, Wme, WmeId,
};
use parulel_vm::{compile_field_tests, EvalMode, FieldTestCode};

/// Join-key values, boxed (map key for index buckets).
pub type KeyVals = Box<[Value]>;

/// Handle to an alpha node. Plain slab index: node lifetime is governed by
/// subscriptions, and subscribers drop their handles when they
/// unsubscribe, so stale handles cannot occur in correct use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw slab index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A (rule, CE) subscription to an alpha node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Endpoint {
    /// Subscribing rule.
    pub rule: RuleId,
    /// CE position within that rule (join order).
    pub ce: u32,
}

/// A refcounted hash index over one slot list of a node's membership.
struct AlphaIndex {
    /// Subscribers sharing this slot list.
    refs: u32,
    /// Join-key values → members with those values.
    map: FxHashMap<KeyVals, FxHashSet<WmeRef>>,
}

/// One shared alpha memory: the WMEs of `class` passing `tests`.
struct AlphaNode {
    class: ClassId,
    /// Alpha-layer tests in slot order (the sharing key, with `class`).
    tests: Vec<FieldTest>,
    /// The tests compiled to bytecode, when the owning network runs in
    /// [`EvalMode::Bytecode`]. Compiled once at node creation — the node
    /// is exactly the unit of alpha sharing, so each distinct test list
    /// compiles once no matter how many rules subscribe.
    code: Option<FieldTestCode>,
    /// Subscribed (rule, CE) endpoints; the length is the refcount.
    endpoints: Vec<Endpoint>,
    /// Membership: WME id → arena handle.
    members: FxHashMap<WmeId, WmeRef>,
    /// Hash indexes over the membership, keyed (and shared) by slot list.
    indexes: FxHashMap<Box<[u16]>, AlphaIndex>,
}

impl AlphaNode {
    fn passes(&self, wme: &Wme) -> bool {
        match &self.code {
            Some(code) => code.passes(wme),
            None => {
                let mut empty: [Value; 0] = [];
                self.tests.iter().all(|t| t.check_wme(wme, &mut empty))
            }
        }
    }
}

fn keyvals_of(slots: &[u16], wme: &Wme) -> KeyVals {
    slots
        .iter()
        .map(|&s| wme.field(s as usize).join_key())
        .collect()
}

/// The shared alpha network + WME store one matcher instance owns.
/// (Partitioned matchers give each shard its own network: shards process
/// deltas in parallel and share no state by design.)
pub struct AlphaNetwork {
    /// Every added WME, stored once.
    store: Arena<Wme>,
    /// WME id → arena handle.
    by_id: FxHashMap<WmeId, WmeRef>,
    /// Node slab (`None` = freed slot).
    nodes: Vec<Option<AlphaNode>>,
    free_nodes: Vec<u32>,
    /// Sharing key → node, when `dedup` is on.
    by_key: FxHashMap<(ClassId, Vec<FieldTest>), NodeId>,
    /// Class → nodes of that class (the add-side routing table).
    by_class: Vec<Vec<NodeId>>,
    /// Lifetime count of test evaluations that served more than one
    /// subscriber (the per-rule layout would have re-run each of these).
    share_hits: u64,
    dedup: bool,
    /// Whether nodes run their tests as compiled bytecode or via the IR.
    mode: EvalMode,
}

impl AlphaNetwork {
    /// An empty network over `num_classes` classes, in the default
    /// [`EvalMode`]. `dedup = false` keeps one node per subscription (the
    /// ablation baseline).
    pub fn new(num_classes: usize, dedup: bool) -> Self {
        Self::new_with_eval(num_classes, dedup, EvalMode::default())
    }

    /// Like [`new`](Self::new) with an explicit evaluation mode.
    pub fn new_with_eval(num_classes: usize, dedup: bool, mode: EvalMode) -> Self {
        AlphaNetwork {
            store: Arena::new(),
            by_id: FxHashMap::default(),
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            by_key: FxHashMap::default(),
            by_class: vec![Vec::new(); num_classes],
            share_hits: 0,
            dedup,
            mode,
        }
    }

    fn node(&self, n: NodeId) -> &AlphaNode {
        self.nodes[n.index()].as_ref().expect("freed alpha node")
    }

    fn node_mut(&mut self, n: NodeId) -> &mut AlphaNode {
        self.nodes[n.index()].as_mut().expect("freed alpha node")
    }

    /// Subscribes `(rule, ce_idx)` to the node for `ce`'s class +
    /// alpha-test key, creating (and seeding from the store) the node if
    /// no subscriber shares the key yet.
    pub fn subscribe(&mut self, ce: &ConditionElement, rule: RuleId, ce_idx: usize) -> NodeId {
        let ep = Endpoint {
            rule,
            ce: ce_idx as u32,
        };
        let tests: Vec<FieldTest> = ce.alpha_tests().cloned().collect();
        if self.dedup {
            if let Some(&nid) = self.by_key.get(&(ce.class, tests.clone())) {
                self.node_mut(nid).endpoints.push(ep);
                return nid;
            }
        }
        let code = match self.mode {
            EvalMode::Bytecode => Some(compile_field_tests(&tests)),
            EvalMode::Tree => None,
        };
        let mut node = AlphaNode {
            class: ce.class,
            tests,
            code,
            endpoints: vec![ep],
            members: FxHashMap::default(),
            indexes: FxHashMap::default(),
        };
        // Seed membership with everything already stored (dense arena
        // walk; no other node pays for this).
        for (wref, wme) in self.store.iter() {
            if wme.class == node.class && node.passes(wme) {
                node.members.insert(wme.id, wref);
            }
        }
        let nid = match self.free_nodes.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Some(node);
                NodeId(slot)
            }
            None => {
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        };
        let class = self.node(nid).class;
        if self.dedup {
            self.by_key
                .insert((class, self.node(nid).tests.clone()), nid);
        }
        if class.index() >= self.by_class.len() {
            self.by_class.resize(class.index() + 1, Vec::new());
        }
        self.by_class[class.index()].push(nid);
        nid
    }

    /// Drops one `(rule, ce_idx)` subscription from `node`; the node (and
    /// its indexes) are freed when the last subscriber leaves.
    pub fn unsubscribe(&mut self, node: NodeId, rule: RuleId, ce_idx: usize) {
        let ep = Endpoint {
            rule,
            ce: ce_idx as u32,
        };
        let n = self.node_mut(node);
        let pos = n
            .endpoints
            .iter()
            .position(|e| *e == ep)
            .expect("unsubscribe without a matching subscription");
        n.endpoints.swap_remove(pos);
        if n.endpoints.is_empty() {
            let freed = self.nodes[node.index()].take().expect("freed alpha node");
            if self.dedup {
                self.by_key.remove(&(freed.class, freed.tests));
            }
            self.by_class[freed.class.index()].retain(|&x| x != node);
            self.free_nodes.push(node.0);
        }
    }

    /// Registers (or refcounts) a hash index over `slots` on `node`,
    /// seeding it from the current membership if new. An empty slot list
    /// is legal — the index then has a single bucket holding the whole
    /// membership, which keeps the join probe uniform for key-less CEs.
    pub fn subscribe_index(&mut self, node: NodeId, slots: &[u16]) {
        let n = self.node_mut(node);
        if let Some(idx) = n.indexes.get_mut(slots) {
            idx.refs += 1;
            return;
        }
        let mut map: FxHashMap<KeyVals, FxHashSet<WmeRef>> = FxHashMap::default();
        let member_refs: Vec<WmeRef> = n.members.values().copied().collect();
        for wref in member_refs {
            let wme = self.store.get(wref).expect("member with stale ref");
            map.entry(keyvals_of(slots, wme)).or_default().insert(wref);
        }
        self.node_mut(node)
            .indexes
            .insert(slots.into(), AlphaIndex { refs: 1, map });
    }

    /// Drops one reference to `node`'s index over `slots`, freeing the
    /// index when the last reference leaves. Call *before* `unsubscribe`
    /// (the node may die with it).
    pub fn unsubscribe_index(&mut self, node: NodeId, slots: &[u16]) {
        let n = self.node_mut(node);
        let idx = n
            .indexes
            .get_mut(slots)
            .expect("unsubscribe_index without a matching index");
        idx.refs -= 1;
        if idx.refs == 0 {
            n.indexes.remove(slots);
        }
    }

    /// Stores `wme` and routes it through its class bucket: each node's
    /// test list runs **once**, membership and indexes are updated, and
    /// the nodes it entered are returned for the caller's beta delivery.
    pub fn add(&mut self, wme: &Wme) -> (WmeRef, Vec<NodeId>) {
        debug_assert!(
            !self.by_id.contains_key(&wme.id),
            "WME {} added twice",
            wme.id
        );
        let wref = self.store.insert(wme.clone());
        self.by_id.insert(wme.id, wref);
        let mut entered = Vec::new();
        let bucket: Vec<NodeId> = match self.by_class.get(wme.class.index()) {
            Some(b) => b.clone(),
            None => Vec::new(),
        };
        for nid in bucket {
            let node = self.nodes[nid.index()].as_mut().expect("freed alpha node");
            let subs = node.endpoints.len();
            if subs > 1 {
                // One evaluation served `subs` subscribers.
                self.share_hits += (subs - 1) as u64;
            }
            if !node.passes(wme) {
                continue;
            }
            node.members.insert(wme.id, wref);
            for (slots, idx) in node.indexes.iter_mut() {
                idx.map
                    .entry(keyvals_of(slots, wme))
                    .or_default()
                    .insert(wref);
            }
            entered.push(nid);
        }
        (wref, entered)
    }

    /// Removes the WME with `id` from the store and from every node whose
    /// membership holds it (routed by membership — tests never re-run).
    /// Returns the payload and the nodes it left; `None` if `id` was
    /// never added.
    pub fn remove(&mut self, id: WmeId) -> Option<(Wme, Vec<NodeId>)> {
        let wref = self.by_id.remove(&id)?;
        let wme = self.store.remove(wref).expect("store/by_id desync");
        let mut left = Vec::new();
        let bucket: Vec<NodeId> = match self.by_class.get(wme.class.index()) {
            Some(b) => b.clone(),
            None => Vec::new(),
        };
        for nid in bucket {
            let node = self.nodes[nid.index()].as_mut().expect("freed alpha node");
            if node.members.remove(&id).is_none() {
                continue;
            }
            for (slots, idx) in node.indexes.iter_mut() {
                let kv = keyvals_of(slots, &wme);
                if let Some(b) = idx.map.get_mut(&kv) {
                    b.remove(&wref);
                    if b.is_empty() {
                        idx.map.remove(&kv);
                    }
                }
            }
            left.push(nid);
        }
        Some((wme, left))
    }

    /// The payload behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is stale — live match state must never hold refs to
    /// removed WMEs.
    #[inline]
    pub fn wme(&self, r: WmeRef) -> &Wme {
        self.store.get(r).expect("stale WmeRef in live match state")
    }

    /// Non-panicking variant of [`wme`](Self::wme), for invariant checks
    /// that want to report staleness themselves.
    pub fn try_wme(&self, r: WmeRef) -> Option<&Wme> {
        self.store.get(r)
    }

    /// The arena handle for a stored WME id.
    pub fn lookup(&self, id: WmeId) -> Option<WmeRef> {
        self.by_id.get(&id).copied()
    }

    /// Membership of `node`.
    pub fn members(&self, node: NodeId) -> &FxHashMap<WmeId, WmeRef> {
        &self.node(node).members
    }

    /// Subscribed endpoints of `node`.
    pub fn endpoints(&self, node: NodeId) -> &[Endpoint] {
        &self.node(node).endpoints
    }

    /// The members of `node` whose `slots` values equal `kv`, via the
    /// node's shared index over `slots`.
    ///
    /// # Panics
    /// Panics if no index over `slots` was subscribed.
    pub fn index_bucket(&self, node: NodeId, slots: &[u16], kv: &[Value]) -> Option<&FxHashSet<WmeRef>> {
        self.node(node)
            .indexes
            .get(slots)
            .expect("index probe without a subscription")
            .map
            .get(kv)
    }

    /// Total entries in `node`'s index over `slots`, or `None` if no such
    /// index is subscribed (invariant checks probe this).
    pub fn index_len(&self, node: NodeId, slots: &[u16]) -> Option<usize> {
        self.node(node)
            .indexes
            .get(slots)
            .map(|idx| idx.map.values().map(|b| b.len()).sum())
    }

    /// Dense walk over every stored WME.
    pub fn store_iter(&self) -> impl Iterator<Item = (WmeRef, &Wme)> {
        self.store.iter()
    }

    /// Stored WMEs (= working-memory size for a seeded matcher).
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Live alpha nodes (distinct (class, test-list) memories).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Total (rule, CE) subscriptions across live nodes.
    pub fn subscription_count(&self) -> usize {
        self.nodes
            .iter()
            .flatten()
            .map(|n| n.endpoints.len())
            .sum()
    }

    /// Lifetime [`share_hits`](Self) counter: alpha test evaluations whose
    /// result was fanned out to more than one subscriber.
    pub fn share_hits(&self) -> u64 {
        self.share_hits
    }
}

impl AlphaNetwork {
    /// Verifies store/node/index agreement (called from tests and the
    /// debug-build differential twins). Panics with a description on
    /// violation.
    pub fn check_invariants(&self) {
        // Store and id map mirror each other.
        assert_eq!(self.store.len(), self.by_id.len(), "store/by_id desync");
        for (id, &wref) in &self.by_id {
            let wme = self.store.get(wref).expect("by_id holds stale ref");
            assert_eq!(wme.id, *id, "by_id filed under wrong id");
        }
        // Free list points only at freed slots.
        for &slot in &self.free_nodes {
            assert!(
                self.nodes[slot as usize].is_none(),
                "free list points at live node"
            );
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            let nid = NodeId(i as u32);
            assert!(!node.endpoints.is_empty(), "node {i}: zero refcount yet live");
            assert_eq!(
                self.by_class[node.class.index()]
                    .iter()
                    .filter(|&&x| x == nid)
                    .count(),
                1,
                "node {i}: class bucket entry missing or duplicated"
            );
            if self.dedup {
                assert_eq!(
                    self.by_key.get(&(node.class, node.tests.clone())),
                    Some(&nid),
                    "node {i}: sharing key does not resolve back"
                );
            }
            // Membership = exactly the stored WMEs of the class passing
            // the tests.
            for (id, &wref) in &node.members {
                let wme = self.store.get(wref).expect("member holds stale ref");
                assert_eq!(wme.id, *id, "node {i}: member filed under wrong id");
                assert_eq!(wme.class, node.class, "node {i}: member of wrong class");
                assert!(node.passes(wme), "node {i}: member fails its own tests");
            }
            let expect: usize = self
                .store
                .iter()
                .filter(|(_, w)| w.class == node.class && node.passes(w))
                .count();
            assert_eq!(
                node.members.len(),
                expect,
                "node {i}: membership incomplete"
            );
            for (slots, idx) in &node.indexes {
                assert!(idx.refs > 0, "node {i}: zero-ref index kept");
                let mut indexed = 0usize;
                for (kv, bucket) in &idx.map {
                    assert!(!bucket.is_empty(), "node {i}: empty index bucket");
                    for &wref in bucket {
                        let wme = self.store.get(wref).expect("index holds stale ref");
                        assert!(
                            node.members.contains_key(&wme.id),
                            "node {i}: indexed non-member"
                        );
                        assert_eq!(
                            &keyvals_of(slots, wme),
                            kv,
                            "node {i}: member filed under wrong index key"
                        );
                        indexed += 1;
                    }
                }
                assert_eq!(indexed, node.members.len(), "node {i}: index desync");
            }
        }
        // Class buckets and the key map point only at live nodes.
        for (c, bucket) in self.by_class.iter().enumerate() {
            for nid in bucket {
                let node = self.nodes[nid.index()]
                    .as_ref()
                    .unwrap_or_else(|| panic!("class {c} bucket holds freed node"));
                assert_eq!(node.class.index(), c, "node in wrong class bucket");
            }
        }
        for nid in self.by_key.values() {
            assert!(
                self.nodes[nid.index()].is_some(),
                "by_key holds freed node"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Program, Value, WorkingMemory};
    use parulel_lang::compile;
    use std::sync::Arc;

    fn prog(src: &str) -> Arc<Program> {
        Arc::new(compile(src).unwrap())
    }

    /// Two rules over the same class with identical constant tests, one
    /// with a different test.
    fn three_rule_setup() -> (Arc<Program>, WorkingMemory) {
        let p = prog(
            "(literalize n v w)
             (p r1 (n ^v 1 ^w <x>) --> (halt))
             (p r2 (n ^v 1 ^w <y>) --> (halt))
             (p r3 (n ^v 2 ^w <z>) --> (halt))",
        );
        let wm = WorkingMemory::new(&p.classes);
        (p, wm)
    }

    fn subscribe_all(net: &mut AlphaNetwork, p: &Program) -> Vec<NodeId> {
        let mut ids = Vec::new();
        for rule in p.rules() {
            for (k, ce) in rule.ces.iter().enumerate() {
                ids.push(net.subscribe(ce, rule.id, k));
            }
        }
        ids
    }

    #[test]
    fn dedup_shares_nodes_and_counts_hits() {
        let (p, mut wm) = three_rule_setup();
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut net = AlphaNetwork::new(p.classes.len(), true);
        let ids = subscribe_all(&mut net, &p);
        assert_eq!(ids[0], ids[1], "identical alpha keys share a node");
        assert_ne!(ids[0], ids[2], "different constant ⇒ different node");
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.subscription_count(), 3);

        let w = wm.insert(n, vec![Value::Int(1), Value::Int(9)]);
        let (_, entered) = net.add(&w);
        assert_eq!(entered, vec![ids[0]], "entered the shared node only");
        assert_eq!(net.members(ids[0]).len(), 1);
        assert!(net.members(ids[2]).is_empty());
        assert_eq!(net.share_hits(), 1, "one evaluation served two rules");
        net.check_invariants();
    }

    #[test]
    fn dedup_off_keeps_per_rule_nodes() {
        let (p, mut wm) = three_rule_setup();
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut net = AlphaNetwork::new(p.classes.len(), false);
        let ids = subscribe_all(&mut net, &p);
        assert_ne!(ids[0], ids[1], "no sharing with dedup off");
        assert_eq!(net.node_count(), 3);
        let w = wm.insert(n, vec![Value::Int(1), Value::Int(9)]);
        let (_, entered) = net.add(&w);
        assert_eq!(entered.len(), 2, "both per-rule copies entered");
        assert_eq!(net.share_hits(), 0, "nothing shared, nothing saved");
        net.check_invariants();
    }

    #[test]
    fn late_subscription_seeds_from_store() {
        let (p, mut wm) = three_rule_setup();
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut net = AlphaNetwork::new(p.classes.len(), true);
        let w1 = wm.insert(n, vec![Value::Int(1), Value::Int(9)]);
        let w2 = wm.insert(n, vec![Value::Int(2), Value::Int(9)]);
        net.add(&w1);
        net.add(&w2);
        let ids = subscribe_all(&mut net, &p);
        assert_eq!(net.members(ids[0]).len(), 1, "v=1 node seeded");
        assert_eq!(net.members(ids[2]).len(), 1, "v=2 node seeded");
        net.subscribe_index(ids[0], &[1]);
        let kv = [Value::Int(9).join_key()];
        let bucket = net.index_bucket(ids[0], &[1], &kv).unwrap();
        assert_eq!(bucket.len(), 1, "index seeded from membership");
        net.check_invariants();
    }

    #[test]
    fn unsubscribe_refcounts_and_frees() {
        let (p, _) = three_rule_setup();
        let mut net = AlphaNetwork::new(p.classes.len(), true);
        let ids = subscribe_all(&mut net, &p);
        net.unsubscribe(ids[0], p.rules()[0].id, 0);
        assert_eq!(net.node_count(), 2, "shared node survives one leaver");
        net.unsubscribe(ids[1], p.rules()[1].id, 0);
        assert_eq!(net.node_count(), 1, "last subscriber frees the node");
        // The freed slot is recycled by the next subscription.
        let rule = &p.rules()[0];
        let again = net.subscribe(&rule.ces[0], rule.id, 0);
        assert_eq!(again.index(), ids[0].index(), "slab slot reused");
        net.check_invariants();
    }

    #[test]
    fn add_remove_keeps_indexes_in_sync() {
        let (p, mut wm) = three_rule_setup();
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let mut net = AlphaNetwork::new(p.classes.len(), true);
        let ids = subscribe_all(&mut net, &p);
        net.subscribe_index(ids[0], &[1]);
        net.subscribe_index(ids[0], &[]); // key-less probe shares a bucket
        let w1 = wm.insert(n, vec![Value::Int(1), Value::Int(4)]);
        let w2 = wm.insert(n, vec![Value::Int(1), Value::Int(4)]);
        net.add(&w1);
        net.add(&w2);
        let kv = [Value::Int(4).join_key()];
        assert_eq!(net.index_bucket(ids[0], &[1], &kv).unwrap().len(), 2);
        assert_eq!(net.index_bucket(ids[0], &[], &[]).unwrap().len(), 2);
        let (payload, left) = net.remove(w1.id).unwrap();
        assert_eq!(payload.id, w1.id);
        assert_eq!(left, vec![ids[0]]);
        assert_eq!(net.index_bucket(ids[0], &[1], &kv).unwrap().len(), 1);
        assert_eq!(net.store_len(), 1);
        assert!(net.remove(w1.id).is_none(), "double remove is None");
        net.check_invariants();
    }
}
