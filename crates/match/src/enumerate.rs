//! Shared combination enumeration: the non-state-saving core used by the
//! naive matcher (over the whole working memory) and by TREAT (over its
//! alpha memories, seeded at one CE position).

use parulel_core::{Instantiation, Polarity, Rule, Value, Wme};
use parulel_vm::Evaluator;

/// Enumerates every instantiation of `rule`, depth-first over its CEs in
/// join order.
///
/// * `eval` runs every CE and anchored test — tree-walk or bytecode,
///   whichever mode the owning matcher was built with.
/// * `candidates(ce_idx)` supplies candidate WMEs for the CE at `ce_idx`
///   (any superset of the alpha-passing set is fine; alpha and beta tests
///   are re-checked here).
/// * `fixed` optionally pins one CE position to a single WME — TREAT uses
///   this to enumerate only the matches that involve a newly added WME.
/// * Matches are pushed to `out`.
pub fn enumerate_rule(
    eval: &Evaluator,
    rule: &Rule,
    candidates: &dyn Fn(usize) -> Vec<Wme>,
    fixed: Option<(usize, &Wme)>,
    out: &mut Vec<Instantiation>,
) {
    let mut env = vec![Value::NIL; rule.num_vars as usize];
    let mut wmes: Vec<Wme> = Vec::with_capacity(rule.num_positive());
    dfs(eval, rule, candidates, fixed, 0, &mut env, &mut wmes, out);
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    eval: &Evaluator,
    rule: &Rule,
    candidates: &dyn Fn(usize) -> Vec<Wme>,
    fixed: Option<(usize, &Wme)>,
    ce_idx: usize,
    env: &mut Vec<Value>,
    wmes: &mut Vec<Wme>,
    out: &mut Vec<Instantiation>,
) {
    if ce_idx == rule.ces.len() {
        out.push(Instantiation::new(rule.id, wmes.clone(), env.clone()));
        return;
    }
    let ce = &rule.ces[ce_idx];
    match ce.polarity {
        Polarity::Positive => {
            let cands: Vec<Wme> = match fixed {
                Some((fi, w)) if fi == ce_idx => vec![(*w).clone()],
                _ => candidates(ce_idx),
            };
            for w in cands {
                let saved = env.clone();
                if eval.matches(rule.id, ce_idx, &w, env)
                    && eval.tests_pass_at(rule.id, ce_idx, env)
                {
                    wmes.push(w);
                    dfs(eval, rule, candidates, fixed, ce_idx + 1, env, wmes, out);
                    wmes.pop();
                }
                *env = saved;
            }
        }
        Polarity::Negative => {
            let blocked = candidates(ce_idx).into_iter().any(|w| {
                let mut scratch = env.clone();
                eval.matches(rule.id, ce_idx, &w, &mut scratch)
            });
            if !blocked && eval.tests_pass_at(rule.id, ce_idx, env) {
                dfs(eval, rule, candidates, fixed, ce_idx + 1, env, wmes, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{ClassId, Program, Value, WmeId};
    use parulel_lang::compile;
    use std::sync::Arc;

    fn ev(p: &Program) -> Evaluator {
        Evaluator::new(Arc::new(p.clone()), parulel_vm::EvalMode::default())
    }

    fn wme(class: u32, id: u64, fields: Vec<Value>) -> Wme {
        Wme::new(WmeId(id), ClassId(class), fields)
    }

    #[test]
    fn joins_with_variable_consistency() {
        let p = compile(
            "(literalize edge from to)
             (p two-hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        )
        .unwrap();
        let i = &p.interner;
        let (x, y, z) = (i.intern("x"), i.intern("y"), i.intern("z"));
        let wmes = vec![
            wme(0, 1, vec![Value::Sym(x), Value::Sym(y)]),
            wme(0, 2, vec![Value::Sym(y), Value::Sym(z)]),
            wme(0, 3, vec![Value::Sym(z), Value::Sym(x)]),
        ];
        let mut out = Vec::new();
        enumerate_rule(&ev(&p), &p.rules()[0], &|_| wmes.clone(), None, &mut out);
        // x->y->z, y->z->x, z->x->y
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fixed_position_restricts_enumeration() {
        let p = compile(
            "(literalize edge from to)
             (p two-hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        )
        .unwrap();
        let i = &p.interner;
        let (x, y, z) = (i.intern("x"), i.intern("y"), i.intern("z"));
        let wmes = vec![
            wme(0, 1, vec![Value::Sym(x), Value::Sym(y)]),
            wme(0, 2, vec![Value::Sym(y), Value::Sym(z)]),
        ];
        let fresh = wme(0, 3, vec![Value::Sym(z), Value::Sym(x)]);
        let mut all = wmes.clone();
        all.push(fresh.clone());
        let mut out = Vec::new();
        // only matches with the fresh wme in position 0
        enumerate_rule(&ev(&p), &p.rules()[0], &|_| all.clone(), Some((0, &fresh)), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].wmes[0].id, WmeId(3));
    }

    #[test]
    fn negative_ce_blocks() {
        let p = compile(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        )
        .unwrap();
        let rule = &p.rules()[0];
        let t1 = wme(0, 1, vec![Value::Int(1)]);
        let t2 = wme(0, 2, vec![Value::Int(2)]);
        let lock1 = wme(1, 3, vec![Value::Int(1)]);
        let tasks = vec![t1, t2];
        let locks = vec![lock1];
        let mut out = Vec::new();
        enumerate_rule(
            &ev(&p),
            rule,
            &|ce| {
                if ce == 0 {
                    tasks.clone()
                } else {
                    locks.clone()
                }
            },
            None,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].wmes[0].id, WmeId(2));
    }

    #[test]
    fn anchored_tests_prune() {
        let p = compile(
            "(literalize n v)
             (p big (n ^v <a>) (test (> <a> 5)) (n ^v <b>) (test (< <b> <a>)) --> (halt))",
        )
        .unwrap();
        let wmes = vec![
            wme(0, 1, vec![Value::Int(3)]),
            wme(0, 2, vec![Value::Int(7)]),
            wme(0, 3, vec![Value::Int(9)]),
        ];
        let mut out = Vec::new();
        enumerate_rule(&ev(&p), &p.rules()[0], &|_| wmes.clone(), None, &mut out);
        // <a> ∈ {7, 9}; <b> < <a>: (7,3), (9,3), (9,7)
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn same_wme_may_fill_two_ces() {
        let p = compile(
            "(literalize n v)
             (p pair (n ^v <a>) (n ^v <a>) --> (halt))",
        )
        .unwrap();
        let wmes = vec![wme(0, 1, vec![Value::Int(3)])];
        let mut out = Vec::new();
        enumerate_rule(&ev(&p), &p.rules()[0], &|_| wmes.clone(), None, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].wmes.len(), 2);
        assert_eq!(out[0].wmes[0].id, out[0].wmes[1].id);
    }
}
