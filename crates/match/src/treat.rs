//! The TREAT matcher (Miranker 1987): alpha memories only, no beta state.
//!
//! TREAT keeps no join state beyond the conflict set itself; its alpha
//! memories live in the crate-wide shared [`AlphaNetwork`], one
//! subscription per (rule, CE):
//!
//! * **Add** — the shared network routes the WME through its class
//!   bucket, running each *distinct* constant-test list once, and returns
//!   the nodes it entered; the subscribing (rule, CE) endpoints are read
//!   off those nodes. For each positive CE position hit, the rule is
//!   enumerated with that position pinned to the new WME (so only matches
//!   involving it are computed). If a *negative* CE's node was entered,
//!   existing instantiations of that rule consistent with the new blocker
//!   are deleted. Rules whose CEs the WME cannot satisfy are never
//!   touched — the pre-sharing implementation tested the WME against
//!   every CE of every rule on each add.
//! * **Remove** — one network removal evicts the WME from every node it
//!   was in; every conflict-set entry that positively matched it is
//!   deleted (an O(conflict set) sweep, which is exactly TREAT's bet:
//!   conflict sets are small). If it left a negative CE's node, the rule
//!   is re-enumerated (some matches it was blocking may now exist).
//!
//! Compared to RETE, TREAT trades join *recomputation* on adds for zero
//! beta-memory maintenance — historically a good trade for remove-heavy
//! OPS5 programs. Figure 2 of the reproduction measures this trade.

use crate::alpha::{AlphaNetwork, NodeId};
use crate::enumerate::enumerate_rule;
use crate::Matcher;
use parulel_core::{
    ConflictSet, CsEvent, FxHashMap, InstKey, Polarity, Program, RuleId, Wme, WorkingMemory,
};
use parulel_vm::{EvalMode, Evaluator};
use std::sync::Arc;

/// One rule's subscriptions into the shared network.
struct RuleSubs {
    rule: RuleId,
    /// One node handle per CE, in join order. Distinct rules (or distinct
    /// CEs of one rule) with the same (class, constant-test) key hold the
    /// same handle.
    nodes: Vec<NodeId>,
}

/// The TREAT matcher.
pub struct Treat {
    program: Arc<Program>,
    eval: Evaluator,
    rules: Vec<RuleSubs>,
    alpha: AlphaNetwork,
    cs: ConflictSet,
    /// Lifetime count of full per-rule re-enumerations (the remove-side
    /// cost TREAT pays when a negative blocker disappears).
    reenumerations: u64,
}

impl Treat {
    /// A TREAT matcher over every rule of `program`, with alpha sharing.
    pub fn new(program: Arc<Program>) -> Self {
        let rules = (0..program.rules().len() as u32).map(RuleId).collect();
        Self::with_rules(program, rules)
    }

    /// A TREAT matcher over a subset of rules, with alpha sharing.
    pub fn with_rules(program: Arc<Program>, rules: Vec<RuleId>) -> Self {
        Self::with_rules_sharing(program, rules, true)
    }

    /// Like [`with_rules`](Self::with_rules) but with alpha-memory
    /// deduplication switchable — the per-rule baseline of the joinbench
    /// ablation.
    pub fn with_rules_sharing(program: Arc<Program>, rules: Vec<RuleId>, dedup: bool) -> Self {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        Self::with_rules_eval(program, rules, dedup, eval)
    }

    /// Like [`with_rules_sharing`](Self::with_rules_sharing) with a
    /// caller-built [`Evaluator`] (the engine compiles once and hands out
    /// clones; the alpha network inherits the evaluator's mode).
    pub fn with_rules_eval(
        program: Arc<Program>,
        rules: Vec<RuleId>,
        dedup: bool,
        eval: Evaluator,
    ) -> Self {
        let mut alpha = AlphaNetwork::new_with_eval(program.classes.len(), dedup, eval.mode());
        let subs = rules
            .into_iter()
            .map(|rid| RuleSubs {
                rule: rid,
                nodes: program
                    .rule(rid)
                    .ces
                    .iter()
                    .enumerate()
                    .map(|(ci, ce)| alpha.subscribe(ce, rid, ci))
                    .collect(),
            })
            .collect();
        Treat {
            program,
            eval,
            rules: subs,
            alpha,
            cs: ConflictSet::new(),
            reenumerations: 0,
        }
    }

    /// The current members of one subscription, as owned WMEs (the shape
    /// [`enumerate_rule`] wants its candidate sets in).
    fn members_of(&self, node: NodeId) -> Vec<Wme> {
        self.alpha
            .members(node)
            .values()
            .map(|&r| self.alpha.wme(r).clone())
            .collect()
    }

    /// Re-derives every instantiation of one rule from its alpha nodes
    /// (used after a negative blocker disappears).
    fn reenumerate_rule(&mut self, rule_idx: usize) {
        self.reenumerations += 1;
        let ra = &self.rules[rule_idx];
        let rule = self.program.rule(ra.rule);
        // Drop existing entries for this rule…
        let stale: Vec<InstKey> = self
            .cs
            .iter()
            .filter(|i| i.rule == ra.rule)
            .map(|i| i.key())
            .collect();
        for k in stale {
            self.cs.remove(&k);
        }
        // …and rebuild from scratch.
        let mut found = Vec::new();
        enumerate_rule(
            &self.eval,
            rule,
            &|ce| self.members_of(ra.nodes[ce]),
            None,
            &mut found,
        );
        for inst in found {
            self.cs.insert(inst);
        }
    }
}

impl Treat {
    /// Verifies the shared layer and this matcher's subscriptions agree
    /// (called from tests and the debug-build differential twins).
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        self.alpha.check_invariants();
        for ra in &self.rules {
            let rule = self.program.rule(ra.rule);
            assert_eq!(
                ra.nodes.len(),
                rule.ces.len(),
                "rule {}: one subscription per CE",
                ra.rule.0
            );
            for (ci, &node) in ra.nodes.iter().enumerate() {
                assert!(
                    self.alpha
                        .endpoints(node)
                        .contains(&crate::alpha::Endpoint {
                            rule: ra.rule,
                            ce: ci as u32
                        }),
                    "rule {} CE {ci}: endpoint missing from its node",
                    ra.rule.0
                );
            }
        }
    }
}

impl Matcher for Treat {
    fn add_wme(&mut self, wme: &Wme) {
        // Phase 1: one pass through the shared network — each distinct
        // constant-test list runs once, membership lands in every node the
        // WME passes *before* any enumeration (so intra-rule self-joins
        // find it).
        let (_, entered) = self.alpha.add(wme);
        // Route node entries to (rule, CE) endpoints.
        let mut hits: FxHashMap<RuleId, (Vec<usize>, bool)> = FxHashMap::default();
        for &nid in &entered {
            for ep in self.alpha.endpoints(nid) {
                let ce = &self.program.rule(ep.rule).ces[ep.ce as usize];
                let entry = hits.entry(ep.rule).or_default();
                match ce.polarity {
                    Polarity::Positive => entry.0.push(ep.ce as usize),
                    Polarity::Negative => entry.1 = true,
                }
            }
        }
        // Phase 2: seeded enumeration + negative sweeps, in rule order.
        for ri in 0..self.rules.len() {
            let ra = &self.rules[ri];
            let Some((mut pos_hits, neg_hit)) = hits.remove(&ra.rule) else {
                continue;
            };
            pos_hits.sort_unstable();
            let rule = self.program.rule(ra.rule);
            let mut found = Vec::new();
            for &p in &pos_hits {
                enumerate_rule(
                    &self.eval,
                    rule,
                    &|ce| self.members_of(ra.nodes[ce]),
                    Some((p, wme)),
                    &mut found,
                );
            }
            for inst in found {
                self.cs.insert(inst);
            }
            if neg_hit {
                // The new WME may block existing instantiations: an
                // instantiation dies if the blocker is consistent with its
                // bindings at some negative CE the WME alpha-passes.
                let victims: Vec<InstKey> = self
                    .cs
                    .iter()
                    .filter(|inst| inst.rule == ra.rule)
                    .filter(|inst| {
                        rule.ces
                            .iter()
                            .enumerate()
                            .filter(|(ci, ce)| {
                                ce.polarity == Polarity::Negative
                                    && self.eval.passes_alpha(ra.rule, *ci, wme)
                            })
                            .any(|(ci, _)| {
                                let mut scratch = inst.env.to_vec();
                                self.eval.run_beta(ra.rule, ci, wme, &mut scratch)
                            })
                    })
                    .map(|inst| inst.key())
                    .collect();
                for k in victims {
                    self.cs.remove(&k);
                }
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let Some((_, left)) = self.alpha.remove(wme.id) else {
            return; // never added — no alpha or conflict-set state
        };
        // Rules whose negative CE lost a member may gain matches.
        let mut neg_rules: Vec<usize> = Vec::new();
        for (ri, ra) in self.rules.iter().enumerate() {
            let rule = self.program.rule(ra.rule);
            let left_neg = ra.nodes.iter().enumerate().any(|(ci, node)| {
                rule.ces[ci].polarity == Polarity::Negative && left.contains(node)
            });
            if left_neg {
                neg_rules.push(ri);
            }
        }
        self.cs.retract_wme(wme.id);
        for ri in neg_rules {
            self.reenumerate_rule(ri);
        }
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        &self.cs
    }

    fn drain_cs_events(&mut self) -> Option<Vec<CsEvent>> {
        self.cs.drain_journal_or_enable()
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let mut cs_by_rule: FxHashMap<u32, usize> = FxHashMap::default();
        for inst in self.cs.iter() {
            *cs_by_rule.entry(inst.rule.0).or_default() += 1;
        }
        // Alpha accounting stays per subscription (a shared node counts
        // once per subscribing CE), so work/imbalance keep their
        // pre-sharing values and auto-ccc decisions are unchanged.
        let mut per_rule_work: Vec<(u32, usize)> = self
            .rules
            .iter()
            .map(|ra| {
                let alphas: usize = ra
                    .nodes
                    .iter()
                    .map(|&n| self.alpha.members(n).len())
                    .sum();
                (
                    ra.rule.0,
                    alphas + cs_by_rule.get(&ra.rule.0).copied().unwrap_or(0),
                )
            })
            .collect();
        per_rule_work.sort_unstable();
        crate::MatcherMetrics {
            kind: "treat",
            rules: self.rules.len(),
            conflict_set: self.cs.len(),
            alpha_wmes: per_rule_work
                .iter()
                .map(|&(rid, work)| work - cs_by_rule.get(&rid).copied().unwrap_or(0))
                .sum(),
            alpha_nodes: self.alpha.node_count(),
            alpha_subscriptions: self.alpha.subscription_count(),
            alpha_share_hits: self.alpha.share_hits(),
            reenumerations: self.reenumerations,
            per_rule_work,
            ..Default::default()
        }
    }

    fn replace_rules(
        &mut self,
        program: &Arc<Program>,
        remove: &[RuleId],
        add: &[RuleId],
        _wm: &WorkingMemory,
    ) -> bool {
        // Rule ids are stable across the transform, so swapping the
        // program under the untouched rules is sound: their definitions
        // are identical in the new program. The evaluator is recompiled
        // wholesale (cheap, and unchanged rules produce identical code);
        // surviving alpha nodes keep their already-compiled test code.
        self.program = program.clone();
        self.eval = Evaluator::new(program.clone(), self.eval.mode());
        for &rid in remove {
            let mut i = 0;
            while i < self.rules.len() {
                if self.rules[i].rule != rid {
                    i += 1;
                    continue;
                }
                let ra = self.rules.remove(i);
                // Nodes still subscribed by other rules (a split rule's
                // unchanged CEs) survive with their membership intact.
                for (ci, &node) in ra.nodes.iter().enumerate() {
                    self.alpha.unsubscribe(node, ra.rule, ci);
                }
            }
            let stale: Vec<InstKey> = self
                .cs
                .iter()
                .filter(|i| i.rule == rid)
                .map(|i| i.key())
                .collect();
            for k in stale {
                self.cs.remove(&k);
            }
        }
        for &rid in add {
            let rule = program.rule(rid);
            // subscribe() seeds fresh nodes from the shared store; shared
            // nodes already hold their members — no WM replay either way.
            let ra = RuleSubs {
                rule: rid,
                nodes: rule
                    .ces
                    .iter()
                    .enumerate()
                    .map(|(ci, ce)| self.alpha.subscribe(ce, rid, ci))
                    .collect(),
            };
            let mut found = Vec::new();
            enumerate_rule(
                &self.eval,
                rule,
                &|ce| self.members_of(ra.nodes[ce]),
                None,
                &mut found,
            );
            for inst in found {
                self.cs.insert(inst);
            }
            self.rules.push(ra);
        }
        self.rules.sort_by_key(|ra| ra.rule);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    fn prog(src: &str) -> Arc<Program> {
        Arc::new(compile(src).unwrap())
    }

    #[test]
    fn incremental_join() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let e1 = wm.insert(edge, vec![Value::Int(1), Value::Int(2)]);
        let e2 = wm.insert(edge, vec![Value::Int(2), Value::Int(3)]);
        m.add_wme(&e1);
        m.add_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1);
        m.remove_wme(&e1);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn self_loop_joins_itself() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let e = wm.insert(edge, vec![Value::Int(5), Value::Int(5)]);
        m.add_wme(&e);
        assert_eq!(m.conflict_set().len(), 1, "5->5->5 via the same WME");
    }

    #[test]
    fn negative_blocker_add_and_remove() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let t = wm.insert(task, vec![Value::Int(1)]);
        m.add_wme(&t);
        assert_eq!(m.conflict_set().len(), 1);
        let l = wm.insert(lock, vec![Value::Int(1)]);
        m.add_wme(&l);
        assert_eq!(m.conflict_set().len(), 0);
        m.remove_wme(&l);
        assert_eq!(m.conflict_set().len(), 1);
    }

    #[test]
    fn blocker_only_kills_consistent_matches() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let t1 = wm.insert(task, vec![Value::Int(1)]);
        let t2 = wm.insert(task, vec![Value::Int(2)]);
        m.add_wme(&t1);
        m.add_wme(&t2);
        assert_eq!(m.conflict_set().len(), 2);
        let l = wm.insert(lock, vec![Value::Int(1)]);
        m.add_wme(&l);
        let cs = m.conflict_set();
        assert_eq!(cs.len(), 1);
        assert!(cs.iter().all(|i| i.wmes[0].id == t2.id));
    }

    #[test]
    fn shared_nodes_route_adds_without_full_rule_scan() {
        // Two rules sharing a constant test plus one rule that cannot
        // match the added class at all: sharing dedups the node, and the
        // conflict set agrees with the per-rule baseline.
        let src = "(literalize n v w)
             (literalize other x)
             (p r1 (n ^v 1 ^w <x>) (n ^v 1 ^w <y>) --> (halt))
             (p r2 (n ^v 1 ^w <x>) --> (halt))
             (p r3 (other ^x <z>) --> (halt))";
        let p = prog(src);
        let n = p.classes.id_of(p.interner.intern("n")).unwrap();
        let rules: Vec<RuleId> = (0..3).map(RuleId).collect();
        let mut shared = Treat::with_rules_sharing(p.clone(), rules.clone(), true);
        let mut solo = Treat::with_rules_sharing(p.clone(), rules, false);
        let mut wm = WorkingMemory::new(&p.classes);
        for v in [1, 1, 2] {
            let w = wm.insert(n, vec![Value::Int(v), Value::Int(0)]);
            shared.add_wme(&w);
            solo.add_wme(&w);
        }
        assert_eq!(
            shared.conflict_set().sorted_keys(),
            solo.conflict_set().sorted_keys()
        );
        let ms = shared.metrics();
        assert_eq!(ms.alpha_subscriptions, 4);
        assert_eq!(ms.alpha_nodes, 2, "r1's CEs and r2's CE collapse into one");
        assert!(ms.alpha_share_hits > 0);
        assert_eq!(solo.metrics().alpha_nodes, 4);
        shared.check_invariants();
        solo.check_invariants();
    }
}
