//! The TREAT matcher (Miranker 1987): alpha memories only, no beta state.
//!
//! TREAT keeps one alpha memory per (rule, CE) and maintains the conflict
//! set *directly*:
//!
//! * **Add** — the WME enters every alpha memory whose constant tests it
//!   passes; then, for each *positive* CE position it entered, the rule is
//!   enumerated with that position pinned to the new WME (so only matches
//!   involving it are computed). If it entered a *negative* CE's alpha,
//!   existing instantiations of that rule consistent with the new blocker
//!   are deleted.
//! * **Remove** — the WME leaves its alpha memories; every conflict-set
//!   entry that positively matched it is deleted (an O(conflict set)
//!   sweep, which is exactly TREAT's bet: conflict sets are small).
//!   If it left a negative CE's alpha, the rule is re-enumerated (some
//!   matches it was blocking may now exist).
//!
//! Compared to RETE, TREAT trades join *recomputation* on adds for zero
//! beta-memory maintenance — historically a good trade for remove-heavy
//! OPS5 programs. Figure 2 of the reproduction measures this trade.

use crate::enumerate::enumerate_rule;
use crate::Matcher;
use parulel_core::{
    ConflictSet, CsEvent, FxHashMap, InstKey, Polarity, Program, RuleId, Wme, WmeId, WorkingMemory,
};
use std::sync::Arc;

/// Per-rule alpha memories.
struct RuleAlphas {
    rule: RuleId,
    /// One memory per CE, in join order.
    mems: Vec<FxHashMap<WmeId, Wme>>,
}

/// The TREAT matcher.
pub struct Treat {
    program: Arc<Program>,
    rules: Vec<RuleAlphas>,
    cs: ConflictSet,
    /// Lifetime count of full per-rule re-enumerations (the remove-side
    /// cost TREAT pays when a negative blocker disappears).
    reenumerations: u64,
}

impl Treat {
    /// A TREAT matcher over every rule of `program`.
    pub fn new(program: Arc<Program>) -> Self {
        let rules = (0..program.rules().len() as u32).map(RuleId).collect();
        Self::with_rules(program, rules)
    }

    /// A TREAT matcher over a subset of rules.
    pub fn with_rules(program: Arc<Program>, rules: Vec<RuleId>) -> Self {
        let alphas = rules
            .into_iter()
            .map(|rid| RuleAlphas {
                rule: rid,
                mems: vec![FxHashMap::default(); program.rule(rid).ces.len()],
            })
            .collect();
        Treat {
            program,
            rules: alphas,
            cs: ConflictSet::new(),
            reenumerations: 0,
        }
    }

    /// Re-derives every instantiation of one rule from its alpha memories
    /// (used after a negative blocker disappears).
    fn reenumerate_rule(&mut self, rule_idx: usize) {
        self.reenumerations += 1;
        let ra = &self.rules[rule_idx];
        let rule = self.program.rule(ra.rule);
        // Drop existing entries for this rule…
        let stale: Vec<InstKey> = self
            .cs
            .iter()
            .filter(|i| i.rule == ra.rule)
            .map(|i| i.key())
            .collect();
        for k in stale {
            self.cs.remove(&k);
        }
        // …and rebuild from scratch.
        let mut found = Vec::new();
        enumerate_rule(
            rule,
            &|ce| ra.mems[ce].values().cloned().collect(),
            None,
            &mut found,
        );
        for inst in found {
            self.cs.insert(inst);
        }
    }
}

impl Matcher for Treat {
    fn add_wme(&mut self, wme: &Wme) {
        // Phase 1: alpha insertion (all rules see the WME before any
        // enumeration, so intra-rule self-joins find it).
        let mut entered: Vec<(usize, Vec<usize>, bool)> = Vec::new(); // (rule idx, pos CE idxs, hit neg)
        for (ri, ra) in self.rules.iter_mut().enumerate() {
            let rule = self.program.rule(ra.rule);
            let mut pos_hits = Vec::new();
            let mut neg_hit = false;
            for (ci, ce) in rule.ces.iter().enumerate() {
                if ce.passes_alpha(wme) {
                    ra.mems[ci].insert(wme.id, wme.clone());
                    match ce.polarity {
                        Polarity::Positive => pos_hits.push(ci),
                        Polarity::Negative => neg_hit = true,
                    }
                }
            }
            if !pos_hits.is_empty() || neg_hit {
                entered.push((ri, pos_hits, neg_hit));
            }
        }
        // Phase 2: seeded enumeration + negative sweeps.
        for (ri, pos_hits, neg_hit) in entered {
            let ra = &self.rules[ri];
            let rule = self.program.rule(ra.rule);
            let mut found = Vec::new();
            for &p in &pos_hits {
                enumerate_rule(
                    rule,
                    &|ce| ra.mems[ce].values().cloned().collect(),
                    Some((p, wme)),
                    &mut found,
                );
            }
            for inst in found {
                self.cs.insert(inst);
            }
            if neg_hit {
                // The new WME may block existing instantiations: an
                // instantiation dies if the blocker is consistent with its
                // bindings at some negative CE the WME alpha-passes.
                let victims: Vec<InstKey> = self
                    .cs
                    .iter()
                    .filter(|inst| inst.rule == ra.rule)
                    .filter(|inst| {
                        rule.ces
                            .iter()
                            .filter(|ce| ce.polarity == Polarity::Negative && ce.passes_alpha(wme))
                            .any(|ce| {
                                let mut scratch = inst.env.to_vec();
                                ce.run_beta(wme, &mut scratch)
                            })
                    })
                    .map(|inst| inst.key())
                    .collect();
                for k in victims {
                    self.cs.remove(&k);
                }
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let mut neg_rules: Vec<usize> = Vec::new();
        for (ri, ra) in self.rules.iter_mut().enumerate() {
            let rule = self.program.rule(ra.rule);
            let mut left_neg = false;
            for (ci, ce) in rule.ces.iter().enumerate() {
                if ra.mems[ci].remove(&wme.id).is_some() && ce.polarity == Polarity::Negative {
                    left_neg = true;
                }
            }
            if left_neg {
                neg_rules.push(ri);
            }
        }
        self.cs.retract_wme(wme.id);
        for ri in neg_rules {
            self.reenumerate_rule(ri);
        }
    }

    fn conflict_set(&mut self) -> &ConflictSet {
        &self.cs
    }

    fn drain_cs_events(&mut self) -> Option<Vec<CsEvent>> {
        self.cs.drain_journal_or_enable()
    }

    fn metrics(&self) -> crate::MatcherMetrics {
        let mut cs_by_rule: FxHashMap<u32, usize> = FxHashMap::default();
        for inst in self.cs.iter() {
            *cs_by_rule.entry(inst.rule.0).or_default() += 1;
        }
        let mut per_rule_work: Vec<(u32, usize)> = self
            .rules
            .iter()
            .map(|ra| {
                let alphas: usize = ra.mems.iter().map(|m| m.len()).sum();
                (
                    ra.rule.0,
                    alphas + cs_by_rule.get(&ra.rule.0).copied().unwrap_or(0),
                )
            })
            .collect();
        per_rule_work.sort_unstable();
        crate::MatcherMetrics {
            kind: "treat",
            rules: self.rules.len(),
            conflict_set: self.cs.len(),
            alpha_wmes: self
                .rules
                .iter()
                .map(|ra| ra.mems.iter().map(|m| m.len()).sum::<usize>())
                .sum(),
            reenumerations: self.reenumerations,
            per_rule_work,
            ..Default::default()
        }
    }

    fn replace_rules(
        &mut self,
        program: &Arc<Program>,
        remove: &[RuleId],
        add: &[RuleId],
        wm: &WorkingMemory,
    ) -> bool {
        // Rule ids are stable across the transform, so swapping the
        // program under the untouched rules is sound: their definitions
        // are identical in the new program.
        self.program = program.clone();
        for &rid in remove {
            self.rules.retain(|ra| ra.rule != rid);
            let stale: Vec<InstKey> = self
                .cs
                .iter()
                .filter(|i| i.rule == rid)
                .map(|i| i.key())
                .collect();
            for k in stale {
                self.cs.remove(&k);
            }
        }
        for &rid in add {
            let rule = program.rule(rid);
            let mut ra = RuleAlphas {
                rule: rid,
                mems: vec![FxHashMap::default(); rule.ces.len()],
            };
            for w in wm.iter() {
                for (ci, ce) in rule.ces.iter().enumerate() {
                    if ce.passes_alpha(w) {
                        ra.mems[ci].insert(w.id, w.clone());
                    }
                }
            }
            let mut found = Vec::new();
            enumerate_rule(rule, &|ce| ra.mems[ce].values().cloned().collect(), None, &mut found);
            for inst in found {
                self.cs.insert(inst);
            }
            self.rules.push(ra);
        }
        self.rules.sort_by_key(|ra| ra.rule);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    fn prog(src: &str) -> Arc<Program> {
        Arc::new(compile(src).unwrap())
    }

    #[test]
    fn incremental_join() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let e1 = wm.insert(edge, vec![Value::Int(1), Value::Int(2)]);
        let e2 = wm.insert(edge, vec![Value::Int(2), Value::Int(3)]);
        m.add_wme(&e1);
        m.add_wme(&e2);
        assert_eq!(m.conflict_set().len(), 1);
        m.remove_wme(&e1);
        assert_eq!(m.conflict_set().len(), 0);
    }

    #[test]
    fn self_loop_joins_itself() {
        let p = prog(
            "(literalize edge from to)
             (p hop (edge ^from <a> ^to <b>) (edge ^from <b> ^to <c>) --> (halt))",
        );
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let e = wm.insert(edge, vec![Value::Int(5), Value::Int(5)]);
        m.add_wme(&e);
        assert_eq!(m.conflict_set().len(), 1, "5->5->5 via the same WME");
    }

    #[test]
    fn negative_blocker_add_and_remove() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let t = wm.insert(task, vec![Value::Int(1)]);
        m.add_wme(&t);
        assert_eq!(m.conflict_set().len(), 1);
        let l = wm.insert(lock, vec![Value::Int(1)]);
        m.add_wme(&l);
        assert_eq!(m.conflict_set().len(), 0);
        m.remove_wme(&l);
        assert_eq!(m.conflict_set().len(), 1);
    }

    #[test]
    fn blocker_only_kills_consistent_matches() {
        let p = prog(
            "(literalize task id)
             (literalize lock id)
             (p free (task ^id <t>) -(lock ^id <t>) --> (halt))",
        );
        let task = p.classes.id_of(p.interner.intern("task")).unwrap();
        let lock = p.classes.id_of(p.interner.intern("lock")).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let mut m = Treat::new(p.clone());
        let t1 = wm.insert(task, vec![Value::Int(1)]);
        let t2 = wm.insert(task, vec![Value::Int(2)]);
        m.add_wme(&t1);
        m.add_wme(&t2);
        assert_eq!(m.conflict_set().len(), 2);
        let l = wm.insert(lock, vec![Value::Int(1)]);
        m.add_wme(&l);
        let cs = m.conflict_set();
        assert_eq!(cs.len(), 1);
        assert!(cs.iter().all(|i| i.wmes[0].id == t2.id));
    }
}
