//! Shared generator machinery for the matcher property suites
//! (`equivalence.rs`, `differential.rs`): random well-formed programs
//! over two small classes, and random WM operation streams.

#![allow(dead_code)] // each test crate uses a subset

use parulel_core::ir::{
    Action, ConditionElement, FieldCheck, FieldTest, Polarity, Rule, RuleId, RuleTest, VarId,
};
use parulel_core::{ClassRegistry, Expr, Interner, PredOp, Program, TestExpr, Value};
use proptest::prelude::*;

/// Raw material for one field test; the builder repairs invalid variable
/// references so every generated program is well-formed.
#[derive(Clone, Debug)]
pub enum CheckSpec {
    Const(u8, i64),  // pred-op code, constant
    OneOf(Vec<i64>), // membership
    Var(u8, u16),    // pred-op code, var index (mod bound count, or fresh bind)
}

#[derive(Clone, Debug)]
pub struct CeSpec {
    pub class: u8,
    pub negated: bool,
    pub tests: Vec<(u8, CheckSpec)>, // (slot hint, check)
}

/// Raw material for one RHS expression; the builder clamps variable
/// references to the rule's exported bindings (falling back to a
/// constant when none exist). Only overflow-free integer arithmetic is
/// generated, so an expression can never fail at runtime and both
/// evaluation backends must produce a value.
#[derive(Clone, Debug)]
pub enum ExprSpec {
    Const(i64),
    Var(u16),              // index into the exported vars (mod count)
    Bin(u8, i64, u16),     // op code, const lhs, exported-var rhs
}

/// Raw material for one RHS action (engine-level suites only; the
/// matcher suites generate LHS-only rules).
#[derive(Clone, Debug)]
pub enum ActionSpec {
    Make { class: u8, exprs: Vec<ExprSpec> },
    RemoveCe(u8),                       // positive-CE ordinal (mod count)
    ModifyCe(u8, u8, ExprSpec),         // ce, slot, new value
    WriteLine(Vec<ExprSpec>),
}

#[derive(Clone, Debug)]
pub struct RuleSpec {
    pub ces: Vec<CeSpec>,
    pub cross_test: bool, // add a (test (< v0 v1)) if ≥2 vars end up bound
    pub actions: Vec<ActionSpec>,
}

#[derive(Clone, Debug)]
pub enum Op {
    Add { class: u8, fields: Vec<i64> },
    Remove(usize), // index into live wmes (mod len)
}

pub fn pred(code: u8) -> PredOp {
    match code % 6 {
        0 => PredOp::Eq,
        1 => PredOp::Ne,
        2 => PredOp::Lt,
        3 => PredOp::Le,
        4 => PredOp::Gt,
        _ => PredOp::Ge,
    }
}

pub const ARITY: usize = 2;

/// Builds a valid program from random specs. Classes: c0 and c1, both of
/// arity 2 (small domain ⇒ plenty of joins and collisions).
pub fn build_program(specs: &[RuleSpec]) -> Program {
    build_program_in(&Interner::new(), specs)
}

/// [`build_program`] into an existing symbol space — the reload suites
/// need the replacement program's symbol ids interchangeable with the
/// running engine's.
pub fn build_program_in(interner: &Interner, specs: &[RuleSpec]) -> Program {
    let interner = interner.clone();
    let mut classes = ClassRegistry::new();
    for c in 0..2 {
        classes
            .declare(
                interner.intern(&format!("c{c}")),
                (0..ARITY)
                    .map(|f| interner.intern(&format!("f{f}")))
                    .collect(),
            )
            .unwrap();
    }
    let mut program = Program::new(interner.clone(), classes);
    for (ri, spec) in specs.iter().enumerate() {
        let mut next_var: u16 = 0;
        let mut exported: u16 = 0; // vars bound by positive CEs so far
        let mut ces = Vec::new();
        for (ci, ce_spec) in spec.ces.iter().enumerate() {
            let negated = ce_spec.negated && ci > 0;
            let mut tests = Vec::new();
            let mut bound_here: Vec<VarId> = Vec::new();
            for (slot_hint, check) in &ce_spec.tests {
                let slot = (*slot_hint as usize % ARITY) as u16;
                let check = match check {
                    CheckSpec::Const(p, v) => FieldCheck::Const(pred(*p), Value::Int(v % 4)),
                    CheckSpec::OneOf(vs) => {
                        FieldCheck::OneOf(vs.iter().map(|v| Value::Int(v % 4)).collect())
                    }
                    CheckSpec::Var(p, idx) => {
                        // Visible vars: exported ones, plus any bound
                        // earlier in this same CE.
                        let visible = exported + bound_here.len() as u16;
                        if visible == 0 || *idx % 4 == 0 {
                            // fresh bind
                            let v = VarId(next_var);
                            next_var += 1;
                            bound_here.push(v);
                            FieldCheck::Bind(v)
                        } else {
                            // Pick among visible vars (only positive
                            // binds are exported).
                            let pool: Vec<VarId> = (0..exported)
                                .map(VarId)
                                .chain(bound_here.iter().copied())
                                .collect();
                            let v = pool[*idx as usize % pool.len()];
                            FieldCheck::Var(pred(*p), v)
                        }
                    }
                };
                tests.push(FieldTest { slot, check });
            }
            if !negated {
                exported += bound_here.len() as u16;
            }
            ces.push(ConditionElement {
                class: parulel_core::ClassId((ce_spec.class % 2) as u32),
                polarity: if negated {
                    Polarity::Negative
                } else {
                    Polarity::Positive
                },
                tests,
            });
        }
        // Exported-variable ids are allocated interleaved with locals, so
        // "first two exported vars" are not necessarily VarId(0),VarId(1).
        // Collect the actual exported ids in order.
        let exported_ids: Vec<VarId> = ces
            .iter()
            .filter(|ce| ce.polarity == Polarity::Positive)
            .flat_map(|ce| ce.bound_vars())
            .collect();
        let mut tests = Vec::new();
        if spec.cross_test && exported_ids.len() >= 2 {
            let (a, b) = (exported_ids[0], exported_ids[1]);
            // anchor: after the CE that binds `b` (scan prefix counts)
            let mut anchor = 0;
            let mut seen = 0usize;
            for (k, ce) in ces.iter().enumerate() {
                if ce.polarity == Polarity::Positive {
                    seen += ce.bound_vars().count();
                }
                if seen >= 2 {
                    anchor = k;
                    break;
                }
            }
            tests.push(RuleTest {
                anchor,
                test: TestExpr {
                    op: PredOp::Le,
                    lhs: Expr::Var(a),
                    rhs: Expr::Var(b),
                },
            });
        }
        // RHS: clamp every reference so the action always validates.
        let expr = |spec: &ExprSpec| -> Expr {
            let var = |i: u16| {
                if exported_ids.is_empty() {
                    Expr::Const(Value::Int(1))
                } else {
                    Expr::Var(exported_ids[i as usize % exported_ids.len()])
                }
            };
            match spec {
                ExprSpec::Const(v) => Expr::Const(Value::Int(v % 4)),
                ExprSpec::Var(i) => var(*i),
                // Add/Sub/Mul only: never divides, never errors.
                ExprSpec::Bin(op, lhs, rhs) => Expr::Bin(
                    match op % 3 {
                        0 => parulel_core::BinOp::Add,
                        1 => parulel_core::BinOp::Sub,
                        _ => parulel_core::BinOp::Mul,
                    },
                    Box::new(Expr::Const(Value::Int(lhs % 4))),
                    Box::new(var(*rhs)),
                ),
            }
        };
        let num_pos = ces.iter().filter(|ce| ce.polarity == Polarity::Positive).count();
        let actions = spec
            .actions
            .iter()
            .map(|a| match a {
                ActionSpec::Make { class, exprs } => Action::Make {
                    class: parulel_core::ClassId((class % 2) as u32),
                    fields: (0..ARITY)
                        .map(|f| {
                            exprs
                                .get(f)
                                .map(&expr)
                                .unwrap_or(Expr::Const(Value::Int(0)))
                        })
                        .collect(),
                },
                ActionSpec::RemoveCe(ce) => Action::Remove {
                    ce: ce % num_pos.max(1) as u8,
                },
                ActionSpec::ModifyCe(ce, slot, e) => Action::Modify {
                    ce: ce % num_pos.max(1) as u8,
                    sets: vec![((*slot as usize % ARITY) as u16, expr(e))],
                },
                ActionSpec::WriteLine(exprs) => Action::Write(exprs.iter().map(&expr).collect()),
            })
            .collect();
        let rule = Rule {
            id: RuleId(0),
            name: interner.intern(&format!("r{ri}")),
            ces,
            tests,
            binds: vec![],
            actions,
            num_vars: next_var,
        };
        program.add_rule(rule).unwrap();
    }
    program
}

pub fn check_spec() -> impl Strategy<Value = CheckSpec> {
    prop_oneof![
        (any::<u8>(), -4i64..4).prop_map(|(p, v)| CheckSpec::Const(p % 2, v)), // Eq/Ne consts
        prop::collection::vec(0i64..4, 1..3).prop_map(CheckSpec::OneOf),
        (any::<u8>(), any::<u16>()).prop_map(|(p, i)| CheckSpec::Var(p % 2, i)),
    ]
}

pub fn ce_spec() -> impl Strategy<Value = CeSpec> {
    (
        any::<u8>(),
        any::<bool>(),
        prop::collection::vec((any::<u8>(), check_spec()), 0..3),
    )
        .prop_map(|(class, negated, tests)| CeSpec {
            class,
            negated,
            tests,
        })
}

pub fn rule_spec() -> impl Strategy<Value = RuleSpec> {
    (prop::collection::vec(ce_spec(), 1..4), any::<bool>()).prop_map(|(ces, cross_test)| RuleSpec {
        ces,
        cross_test,
        actions: vec![],
    })
}

pub fn expr_spec() -> impl Strategy<Value = ExprSpec> {
    prop_oneof![
        (0i64..4).prop_map(ExprSpec::Const),
        any::<u16>().prop_map(ExprSpec::Var),
        (any::<u8>(), 0i64..4, any::<u16>()).prop_map(|(op, l, r)| ExprSpec::Bin(op, l, r)),
    ]
}

pub fn action_spec() -> impl Strategy<Value = ActionSpec> {
    prop_oneof![
        3 => (any::<u8>(), prop::collection::vec(expr_spec(), 0..3))
            .prop_map(|(class, exprs)| ActionSpec::Make {
                class: class % 2,
                exprs,
            }),
        2 => any::<u8>().prop_map(ActionSpec::RemoveCe),
        2 => (any::<u8>(), any::<u8>(), expr_spec())
            .prop_map(|(ce, slot, e)| ActionSpec::ModifyCe(ce, slot, e)),
        1 => prop::collection::vec(expr_spec(), 0..3).prop_map(ActionSpec::WriteLine),
    ]
}

/// [`rule_spec`] plus a random RHS — the engine-level differential
/// suites exercise the fire path, not just matching.
pub fn rule_spec_with_actions() -> impl Strategy<Value = RuleSpec> {
    (rule_spec(), prop::collection::vec(action_spec(), 0..3)).prop_map(|(mut spec, actions)| {
        spec.actions = actions;
        spec
    })
}

pub fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), prop::collection::vec(0i64..4, ARITY))
            .prop_map(|(class, fields)| Op::Add { class: class % 2, fields }),
        1 => any::<usize>().prop_map(Op::Remove),
    ]
}
