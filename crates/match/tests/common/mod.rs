//! Shared generator machinery for the matcher property suites
//! (`equivalence.rs`, `differential.rs`): random well-formed programs
//! over two small classes, and random WM operation streams.

#![allow(dead_code)] // each test crate uses a subset

use parulel_core::ir::{
    ConditionElement, FieldCheck, FieldTest, Polarity, Rule, RuleId, RuleTest, VarId,
};
use parulel_core::{ClassRegistry, Expr, Interner, PredOp, Program, TestExpr, Value};
use proptest::prelude::*;

/// Raw material for one field test; the builder repairs invalid variable
/// references so every generated program is well-formed.
#[derive(Clone, Debug)]
pub enum CheckSpec {
    Const(u8, i64),  // pred-op code, constant
    OneOf(Vec<i64>), // membership
    Var(u8, u16),    // pred-op code, var index (mod bound count, or fresh bind)
}

#[derive(Clone, Debug)]
pub struct CeSpec {
    pub class: u8,
    pub negated: bool,
    pub tests: Vec<(u8, CheckSpec)>, // (slot hint, check)
}

#[derive(Clone, Debug)]
pub struct RuleSpec {
    pub ces: Vec<CeSpec>,
    pub cross_test: bool, // add a (test (< v0 v1)) if ≥2 vars end up bound
}

#[derive(Clone, Debug)]
pub enum Op {
    Add { class: u8, fields: Vec<i64> },
    Remove(usize), // index into live wmes (mod len)
}

pub fn pred(code: u8) -> PredOp {
    match code % 6 {
        0 => PredOp::Eq,
        1 => PredOp::Ne,
        2 => PredOp::Lt,
        3 => PredOp::Le,
        4 => PredOp::Gt,
        _ => PredOp::Ge,
    }
}

pub const ARITY: usize = 2;

/// Builds a valid program from random specs. Classes: c0 and c1, both of
/// arity 2 (small domain ⇒ plenty of joins and collisions).
pub fn build_program(specs: &[RuleSpec]) -> Program {
    let interner = Interner::new();
    let mut classes = ClassRegistry::new();
    for c in 0..2 {
        classes
            .declare(
                interner.intern(&format!("c{c}")),
                (0..ARITY)
                    .map(|f| interner.intern(&format!("f{f}")))
                    .collect(),
            )
            .unwrap();
    }
    let mut program = Program::new(interner.clone(), classes);
    for (ri, spec) in specs.iter().enumerate() {
        let mut next_var: u16 = 0;
        let mut exported: u16 = 0; // vars bound by positive CEs so far
        let mut ces = Vec::new();
        for (ci, ce_spec) in spec.ces.iter().enumerate() {
            let negated = ce_spec.negated && ci > 0;
            let mut tests = Vec::new();
            let mut bound_here: Vec<VarId> = Vec::new();
            for (slot_hint, check) in &ce_spec.tests {
                let slot = (*slot_hint as usize % ARITY) as u16;
                let check = match check {
                    CheckSpec::Const(p, v) => FieldCheck::Const(pred(*p), Value::Int(v % 4)),
                    CheckSpec::OneOf(vs) => {
                        FieldCheck::OneOf(vs.iter().map(|v| Value::Int(v % 4)).collect())
                    }
                    CheckSpec::Var(p, idx) => {
                        // Visible vars: exported ones, plus any bound
                        // earlier in this same CE.
                        let visible = exported + bound_here.len() as u16;
                        if visible == 0 || *idx % 4 == 0 {
                            // fresh bind
                            let v = VarId(next_var);
                            next_var += 1;
                            bound_here.push(v);
                            FieldCheck::Bind(v)
                        } else {
                            // Pick among visible vars (only positive
                            // binds are exported).
                            let pool: Vec<VarId> = (0..exported)
                                .map(VarId)
                                .chain(bound_here.iter().copied())
                                .collect();
                            let v = pool[*idx as usize % pool.len()];
                            FieldCheck::Var(pred(*p), v)
                        }
                    }
                };
                tests.push(FieldTest { slot, check });
            }
            if !negated {
                exported += bound_here.len() as u16;
            }
            ces.push(ConditionElement {
                class: parulel_core::ClassId((ce_spec.class % 2) as u32),
                polarity: if negated {
                    Polarity::Negative
                } else {
                    Polarity::Positive
                },
                tests,
            });
        }
        // Exported-variable ids are allocated interleaved with locals, so
        // "first two exported vars" are not necessarily VarId(0),VarId(1).
        // Collect the actual exported ids in order.
        let exported_ids: Vec<VarId> = ces
            .iter()
            .filter(|ce| ce.polarity == Polarity::Positive)
            .flat_map(|ce| ce.bound_vars())
            .collect();
        let mut tests = Vec::new();
        if spec.cross_test && exported_ids.len() >= 2 {
            let (a, b) = (exported_ids[0], exported_ids[1]);
            // anchor: after the CE that binds `b` (scan prefix counts)
            let mut anchor = 0;
            let mut seen = 0usize;
            for (k, ce) in ces.iter().enumerate() {
                if ce.polarity == Polarity::Positive {
                    seen += ce.bound_vars().count();
                }
                if seen >= 2 {
                    anchor = k;
                    break;
                }
            }
            tests.push(RuleTest {
                anchor,
                test: TestExpr {
                    op: PredOp::Le,
                    lhs: Expr::Var(a),
                    rhs: Expr::Var(b),
                },
            });
        }
        let rule = Rule {
            id: RuleId(0),
            name: interner.intern(&format!("r{ri}")),
            ces,
            tests,
            binds: vec![],
            actions: vec![],
            num_vars: next_var,
        };
        program.add_rule(rule).unwrap();
    }
    program
}

pub fn check_spec() -> impl Strategy<Value = CheckSpec> {
    prop_oneof![
        (any::<u8>(), -4i64..4).prop_map(|(p, v)| CheckSpec::Const(p % 2, v)), // Eq/Ne consts
        prop::collection::vec(0i64..4, 1..3).prop_map(CheckSpec::OneOf),
        (any::<u8>(), any::<u16>()).prop_map(|(p, i)| CheckSpec::Var(p % 2, i)),
    ]
}

pub fn ce_spec() -> impl Strategy<Value = CeSpec> {
    (
        any::<u8>(),
        any::<bool>(),
        prop::collection::vec((any::<u8>(), check_spec()), 0..3),
    )
        .prop_map(|(class, negated, tests)| CeSpec {
            class,
            negated,
            tests,
        })
}

pub fn rule_spec() -> impl Strategy<Value = RuleSpec> {
    (prop::collection::vec(ce_spec(), 1..4), any::<bool>())
        .prop_map(|(ces, cross_test)| RuleSpec { ces, cross_test })
}

pub fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), prop::collection::vec(0i64..4, ARITY))
            .prop_map(|(class, fields)| Op::Add { class: class % 2, fields }),
        1 => any::<usize>().prop_map(Op::Remove),
    ]
}
