//! Property tests: the incremental matchers (RETE, TREAT, partitioned)
//! must agree with the naive recompute oracle on the conflict set after
//! every working-memory operation, for random programs and random
//! add/remove sequences.

mod common;

use common::{build_program, op, rule_spec, CeSpec, CheckSpec, Op, RuleSpec};
use parulel_core::{Value, Wme, WorkingMemory};
use parulel_match::{Matcher, NaiveMatcher, Partitioned, Rete, Treat};
use proptest::prelude::*;
use std::sync::Arc;

fn run_equivalence(specs: Vec<RuleSpec>, ops: Vec<Op>, workers: usize) {
    let program = Arc::new(build_program(&specs));
    let mut wm = WorkingMemory::new(&program.classes);
    let mut naive = NaiveMatcher::new(program.clone());
    let mut rete = Rete::new(program.clone());
    let mut treat = Treat::new(program.clone());
    let mut part = Partitioned::rete(program.clone(), workers);
    let mut live: Vec<Wme> = Vec::new();

    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::Add { class, fields } => {
                let w = wm.insert(
                    parulel_core::ClassId(class as u32),
                    fields.into_iter().map(Value::Int).collect::<Vec<_>>(),
                );
                naive.add_wme(&w);
                rete.add_wme(&w);
                treat.add_wme(&w);
                part.add_wme(&w);
                live.push(w);
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let w = live.remove(i % live.len());
                wm.remove(w.id);
                naive.remove_wme(&w);
                rete.remove_wme(&w);
                treat.remove_wme(&w);
                part.remove_wme(&w);
            }
        }
        let want = naive.conflict_set().sorted_keys();
        assert_eq!(
            rete.conflict_set().sorted_keys(),
            want,
            "RETE diverged at step {step}"
        );
        assert_eq!(
            treat.conflict_set().sorted_keys(),
            want,
            "TREAT diverged at step {step}"
        );
        assert_eq!(
            part.conflict_set().sorted_keys(),
            want,
            "Partitioned diverged at step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_matchers_agree_with_naive(
        specs in prop::collection::vec(rule_spec(), 1..4),
        ops in prop::collection::vec(op(), 1..25),
        workers in 1usize..4,
    ) {
        run_equivalence(specs, ops, workers);
    }
}

/// A deterministic regression harness for shapes proptest found valuable:
/// negative CEs whose blockers come and go around joins.
#[test]
fn negation_churn_regression() {
    let specs = vec![RuleSpec {
        ces: vec![
            CeSpec {
                class: 0,
                negated: false,
                tests: vec![(0, CheckSpec::Var(0, 0))],
            },
            CeSpec {
                class: 1,
                negated: true,
                tests: vec![(0, CheckSpec::Var(0, 1))],
            },
        ],
        cross_test: false,
        actions: vec![],
    }];
    let mut ops = Vec::new();
    for i in 0..12 {
        ops.push(Op::Add {
            class: (i % 2) as u8,
            fields: vec![i % 3, (i + 1) % 3],
        });
    }
    for i in 0..8 {
        ops.push(Op::Remove(i as usize * 7));
    }
    run_equivalence(specs, ops, 2);
}
