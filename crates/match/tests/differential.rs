//! Differential property suite over the *batched* delta path.
//!
//! The serving daemon and the engine's `inject` path deliver WM changes
//! to the matchers as batches through `Matcher::apply(removed, added)`,
//! not one `add_wme`/`remove_wme` at a time — and the partitioned
//! matcher overrides `apply` with its own sharded implementation. These
//! tests pin the contract the kernel relies on:
//!
//! 1. After every batch, all incremental matchers (RETE, TREAT, and the
//!    partitioned wrappers around each) produce a conflict set identical
//!    to the naive recompute oracle's — so any pair of matchers is
//!    interchangeable mid-stream.
//! 2. For every matcher, `apply` is equivalent to the per-WME loop it
//!    documents (removes first, then adds), so batch size can never
//!    change match semantics.
//! 3. `seed` is equivalent to adding every seeded WME incrementally.
//! 4. `replace_rules` mid-stream (the auto-ccc path) leaves every
//!    matcher agreeing with the oracle, before and after further
//!    batches.
//!
//! The incremental matchers run with alpha sharing both on (default)
//! and off, so the shared-network dedup layer is property-tested against
//! the per-rule baseline as well as the oracle. In debug builds,
//! invariant-checked RETE and TREAT twins ride along: subscription
//! refcounts, arena live counts, and every index cross-reference are
//! asserted after each batch (and after each `replace_rules`), so a
//! desync surfaces at the op that caused it.
//!
//! Each property runs 256 generated cases; with the oracle comparison
//! transitively covering every matcher pair, that is ≥256 cases per
//! pair.

mod common;

use common::{build_program, op, rule_spec, Op, RuleSpec};
use parulel_core::{RuleId, Value, Wme, WorkingMemory};
use parulel_match::{Matcher, NaiveMatcher, Partitioned, Rete, Treat};
use proptest::prelude::*;
use std::sync::Arc;

/// All rule ids of `program`, the subset every matcher covers here.
fn all_rules(program: &parulel_core::Program) -> Vec<RuleId> {
    (0..program.rules().len() as u32).map(RuleId).collect()
}

/// 256 cases per property (the ISSUE's floor for each matcher pair).
const CASES: u32 = 256;

/// Materializes one batch against the working memory: removes are
/// resolved against the currently-live WMEs (indices mod the live
/// count), then adds are inserted. Returns the `(removed, added)`
/// slices every matcher receives.
fn materialize(
    wm: &mut WorkingMemory,
    live: &mut Vec<Wme>,
    batch: Vec<Op>,
) -> (Vec<Wme>, Vec<Wme>) {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    // `apply` is specified removes-first-then-adds; mirror that split
    // here so the WM and the matchers see the same net change.
    for o in &batch {
        if let Op::Remove(i) = o {
            if live.is_empty() {
                continue;
            }
            let w = live.remove(i % live.len());
            wm.remove(w.id);
            removed.push(w);
        }
    }
    for o in batch {
        if let Op::Add { class, fields } = o {
            let w = wm.insert(
                parulel_core::ClassId(class as u32),
                fields.into_iter().map(Value::Int).collect::<Vec<_>>(),
            );
            live.push(w.clone());
            added.push(w);
        }
    }
    (removed, added)
}

/// Property 1: after every `apply` batch, all matchers agree with the
/// naive oracle (and hence with each other).
fn run_batched_differential(specs: Vec<RuleSpec>, batches: Vec<Vec<Op>>, workers: usize) {
    let program = Arc::new(build_program(&specs));
    let mut wm = WorkingMemory::new(&program.classes);
    let mut live: Vec<Wme> = Vec::new();

    let rules = all_rules(&program);
    let mut naive = NaiveMatcher::new(program.clone());
    let mut matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
        ("rete", Box::new(Rete::new(program.clone()))),
        ("treat", Box::new(Treat::new(program.clone()))),
        (
            "rete-solo-alpha",
            Box::new(Rete::with_rules_sharing(
                program.clone(),
                rules.clone(),
                false,
            )),
        ),
        (
            "treat-solo-alpha",
            Box::new(Treat::with_rules_sharing(program.clone(), rules, false)),
        ),
        (
            "partitioned-rete",
            Box::new(Partitioned::rete(program.clone(), workers)),
        ),
        (
            "partitioned-treat",
            Box::new(Partitioned::treat(program.clone(), workers)),
        ),
    ];
    // Concrete RETE/TREAT twins ride along so the debug-only structural
    // invariants (subscription refcounts, arena live counts, index
    // mirrors, token cross-references, left_index and neg_counts
    // hygiene) are checked at the batch that violates them — the boxed
    // instances only get compared by conflict set.
    #[cfg(debug_assertions)]
    let mut rete_chk = Rete::new(program.clone());
    #[cfg(debug_assertions)]
    let mut treat_chk = Treat::new(program.clone());

    for (step, batch) in batches.into_iter().enumerate() {
        let (removed, added) = materialize(&mut wm, &mut live, batch);
        naive.apply(&removed, &added);
        let want = naive.conflict_set().sorted_keys();
        for (name, m) in matchers.iter_mut() {
            m.apply(&removed, &added);
            assert_eq!(
                m.conflict_set().sorted_keys(),
                want,
                "{name} diverged from naive after batch {step} \
                 (-{} +{} wmes)",
                removed.len(),
                added.len()
            );
        }
        #[cfg(debug_assertions)]
        {
            rete_chk.apply(&removed, &added);
            rete_chk.check_invariants();
            treat_chk.apply(&removed, &added);
            treat_chk.check_invariants();
        }
    }
}

/// Property 4: swapping every rule out and back in via `replace_rules`
/// mid-stream (the path `--auto-ccc` exercises) is a no-op for match
/// semantics: each matcher still agrees with the untouched oracle right
/// after the swap and across further batches. Debug twins assert the
/// structural invariants — in particular that subscription refcounts
/// and arena live counts survive the unsubscribe/resubscribe churn.
fn run_replace_rules_churn(
    specs: Vec<RuleSpec>,
    before: Vec<Vec<Op>>,
    after: Vec<Vec<Op>>,
    workers: usize,
) {
    let program = Arc::new(build_program(&specs));
    let rules = all_rules(&program);
    let mut wm = WorkingMemory::new(&program.classes);
    let mut live: Vec<Wme> = Vec::new();

    let mut naive = NaiveMatcher::new(program.clone());
    let mut matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
        ("rete", Box::new(Rete::new(program.clone()))),
        ("treat", Box::new(Treat::new(program.clone()))),
        (
            "partitioned-rete",
            Box::new(Partitioned::rete(program.clone(), workers)),
        ),
        (
            "partitioned-treat",
            Box::new(Partitioned::treat(program.clone(), workers)),
        ),
    ];
    #[cfg(debug_assertions)]
    let mut rete_chk = Rete::new(program.clone());
    #[cfg(debug_assertions)]
    let mut treat_chk = Treat::new(program.clone());

    let step_all = |naive: &mut NaiveMatcher,
                        matchers: &mut Vec<(&str, Box<dyn Matcher>)>,
                        removed: &[Wme],
                        added: &[Wme],
                        when: &str| {
        naive.apply(removed, added);
        let want = naive.conflict_set().sorted_keys();
        for (name, m) in matchers.iter_mut() {
            m.apply(removed, added);
            assert_eq!(
                m.conflict_set().sorted_keys(),
                want,
                "{name} diverged from naive {when} replace_rules"
            );
        }
    };

    for batch in before {
        let (removed, added) = materialize(&mut wm, &mut live, batch);
        step_all(&mut naive, &mut matchers, &removed, &added, "before");
        #[cfg(debug_assertions)]
        {
            rete_chk.apply(&removed, &added);
            treat_chk.apply(&removed, &added);
        }
    }

    // Swap every rule out and straight back in. The shared alpha network
    // must release each CE's subscription and re-acquire it, rebuilding
    // identical memories from the WME store.
    let want = naive.conflict_set().sorted_keys();
    for (name, m) in matchers.iter_mut() {
        m.replace_rules(&program, &rules, &rules, &wm);
        assert_eq!(
            m.conflict_set().sorted_keys(),
            want,
            "{name}: replace_rules(all, all) changed the conflict set"
        );
    }
    #[cfg(debug_assertions)]
    {
        rete_chk.replace_rules(&program, &rules, &rules, &wm);
        rete_chk.check_invariants();
        treat_chk.replace_rules(&program, &rules, &rules, &wm);
        treat_chk.check_invariants();
    }

    for batch in after {
        let (removed, added) = materialize(&mut wm, &mut live, batch);
        step_all(&mut naive, &mut matchers, &removed, &added, "after");
        #[cfg(debug_assertions)]
        {
            rete_chk.apply(&removed, &added);
            rete_chk.check_invariants();
            treat_chk.apply(&removed, &added);
            treat_chk.check_invariants();
        }
    }
}

/// Property 2: for each matcher kind, one instance driven through
/// `apply` and a twin driven through the per-WME loop stay identical.
fn run_apply_vs_per_op(specs: Vec<RuleSpec>, batches: Vec<Vec<Op>>, workers: usize) {
    let program = Arc::new(build_program(&specs));
    let mut wm = WorkingMemory::new(&program.classes);
    let mut live: Vec<Wme> = Vec::new();

    type Pair = (&'static str, Box<dyn Matcher>, Box<dyn Matcher>);
    let mut pairs: Vec<Pair> = vec![
        (
            "naive",
            Box::new(NaiveMatcher::new(program.clone())),
            Box::new(NaiveMatcher::new(program.clone())),
        ),
        (
            "rete",
            Box::new(Rete::new(program.clone())),
            Box::new(Rete::new(program.clone())),
        ),
        (
            "treat",
            Box::new(Treat::new(program.clone())),
            Box::new(Treat::new(program.clone())),
        ),
        (
            "partitioned-rete",
            Box::new(Partitioned::rete(program.clone(), workers)),
            Box::new(Partitioned::rete(program.clone(), workers)),
        ),
        (
            "partitioned-treat",
            Box::new(Partitioned::treat(program.clone(), workers)),
            Box::new(Partitioned::treat(program.clone(), workers)),
        ),
    ];

    // Invariant-checked RETE twin on the *per-WME* path, so leaks
    // reachable only through add_wme/remove_wme (not apply) surface too.
    #[cfg(debug_assertions)]
    let mut rete_chk = Rete::new(program.clone());

    for (step, batch) in batches.into_iter().enumerate() {
        let (removed, added) = materialize(&mut wm, &mut live, batch);
        for (name, batched, per_op) in pairs.iter_mut() {
            batched.apply(&removed, &added);
            for w in &removed {
                per_op.remove_wme(w);
            }
            for w in &added {
                per_op.add_wme(w);
            }
            assert_eq!(
                batched.conflict_set().sorted_keys(),
                per_op.conflict_set().sorted_keys(),
                "{name}: apply() and the per-WME loop diverged at batch {step}"
            );
        }
        #[cfg(debug_assertions)]
        {
            for w in &removed {
                rete_chk.remove_wme(w);
            }
            for w in &added {
                rete_chk.add_wme(w);
            }
            rete_chk.check_invariants();
        }
    }
}

/// Property 3: `seed(wm)` equals building the same WM one `add_wme` at a
/// time, for every matcher.
fn run_seed_vs_incremental(specs: Vec<RuleSpec>, adds: Vec<Op>, workers: usize) {
    let program = Arc::new(build_program(&specs));
    let mut wm = WorkingMemory::new(&program.classes);
    let mut wmes = Vec::new();
    for o in adds {
        if let Op::Add { class, fields } = o {
            wmes.push(wm.insert(
                parulel_core::ClassId(class as u32),
                fields.into_iter().map(Value::Int).collect::<Vec<_>>(),
            ));
        }
    }
    type Builder = fn(Arc<parulel_core::Program>, usize) -> Box<dyn Matcher>;
    let builders: Vec<(&str, Builder)> = vec![
        ("naive", |p, _| Box::new(NaiveMatcher::new(p))),
        ("rete", |p, _| Box::new(Rete::new(p))),
        ("treat", |p, _| Box::new(Treat::new(p))),
        ("partitioned-rete", |p, n| Box::new(Partitioned::rete(p, n))),
        ("partitioned-treat", |p, n| {
            Box::new(Partitioned::treat(p, n))
        }),
    ];
    for (name, build) in builders {
        let mut seeded = build(program.clone(), workers);
        seeded.seed(&wm);
        let mut incremental = build(program.clone(), workers);
        for w in &wmes {
            incremental.add_wme(w);
        }
        assert_eq!(
            seeded.conflict_set().sorted_keys(),
            incremental.conflict_set().sorted_keys(),
            "{name}: seed() and incremental build diverged"
        );
    }
}

fn batch() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: CASES, ..ProptestConfig::default() })]

    #[test]
    fn batched_apply_agrees_across_all_matchers(
        specs in prop::collection::vec(rule_spec(), 1..4),
        batches in prop::collection::vec(batch(), 1..6),
        workers in 1usize..4,
    ) {
        run_batched_differential(specs, batches, workers);
    }

    #[test]
    fn apply_is_equivalent_to_the_per_wme_loop(
        specs in prop::collection::vec(rule_spec(), 1..4),
        batches in prop::collection::vec(batch(), 1..6),
        workers in 1usize..4,
    ) {
        run_apply_vs_per_op(specs, batches, workers);
    }

    #[test]
    fn replace_rules_is_transparent_mid_stream(
        specs in prop::collection::vec(rule_spec(), 1..4),
        before in prop::collection::vec(batch(), 1..4),
        after in prop::collection::vec(batch(), 1..4),
        workers in 1usize..4,
    ) {
        run_replace_rules_churn(specs, before, after, workers);
    }

    #[test]
    fn seed_is_equivalent_to_incremental_build(
        specs in prop::collection::vec(rule_spec(), 1..4),
        adds in prop::collection::vec(op(), 1..20),
        workers in 1usize..4,
    ) {
        run_seed_vs_incremental(specs, adds, workers);
    }
}

/// Deterministic regression: a batch that removes a join partner and
/// re-adds an identical-valued WME in the same `apply` call — the net
/// conflict set must treat these as distinct WMEs (the removed ID is
/// gone; the add is a new ID).
#[test]
fn remove_and_readd_in_one_batch() {
    use common::{CeSpec, CheckSpec};
    let specs = vec![RuleSpec {
        ces: vec![
            CeSpec {
                class: 0,
                negated: false,
                tests: vec![(0, CheckSpec::Var(0, 0))],
            },
            CeSpec {
                class: 1,
                negated: false,
                tests: vec![(0, CheckSpec::Var(0, 1))],
            },
        ],
        cross_test: false,
        actions: vec![],
    }];
    let mut batches = vec![vec![
        Op::Add {
            class: 0,
            fields: vec![1, 2],
        },
        Op::Add {
            class: 1,
            fields: vec![1, 3],
        },
    ]];
    // churn: drop the c1 partner and replace it with an equal-valued WME,
    // repeatedly, inside single batches
    for _ in 0..6 {
        batches.push(vec![
            Op::Remove(1),
            Op::Add {
                class: 1,
                fields: vec![1, 3],
            },
        ]);
    }
    run_batched_differential(specs.clone(), batches.clone(), 2);
    run_apply_vs_per_op(specs, batches, 2);
}
