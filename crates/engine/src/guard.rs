//! Per-run resource budgets: wall-clock, working-memory size, conflict-set
//! width, and per-cycle delta size.
//!
//! PARULEL programs are ordinary programs — they loop, they blow up
//! combinatorially, they generate unbounded working memories. An embedding
//! application needs the engine to fail *predictably* when that happens:
//! at a cycle boundary, with a structured [`EngineError`] naming the cycle
//! and the offending rules, and with a checkpoint of the last consistent
//! state available for inspection or resume.
//!
//! All checks happen at cycle boundaries, where engine state is
//! consistent: the conflict-set check before anything fires, the delta
//! check after RHS evaluation but before the delta is applied, and the
//! working-memory check after the cycle commits. A trip therefore never
//! leaves working memory, the matcher, and the refraction table out of
//! sync with each other.

use crate::fire::{EngineError, FireResult};
use parulel_core::{ConflictSet, FxHashMap, Instantiation, Program, RuleId};
use std::time::{Duration, Instant};

/// How many offending rules a budget error names.
const MAX_NAMED_RULES: usize = 3;

/// Resource budgets for one run. `None` everywhere (the default) means
/// unlimited — zero overhead beyond a few branch checks per cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Wall-clock budget for one [`run`](crate::ParallelEngine::run)
    /// call, checked before each cycle starts.
    pub timeout: Option<Duration>,
    /// Maximum live WMEs after a cycle commits.
    pub max_wm: Option<usize>,
    /// Maximum conflict-set width at a cycle start.
    pub max_conflict_set: Option<usize>,
    /// Maximum changes (adds + removes) in one cycle's merged delta.
    pub max_delta: Option<usize>,
}

impl Budgets {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True iff every budget is disabled.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }

    /// Checks the wall-clock budget at the boundary before `cycle`.
    pub fn check_deadline(&self, cycle: u64, started: Instant) -> Result<(), EngineError> {
        let Some(budget) = self.timeout else {
            return Ok(());
        };
        let elapsed = started.elapsed();
        if elapsed > budget {
            return Err(EngineError::Timeout {
                cycle,
                elapsed,
                budget,
            });
        }
        Ok(())
    }

    /// Checks conflict-set width at the start of `cycle`. On a trip the
    /// error names the rules with the most instantiations.
    pub fn check_conflict_set(
        &self,
        cycle: u64,
        cs: &ConflictSet,
        program: &Program,
    ) -> Result<(), EngineError> {
        let Some(budget) = self.max_conflict_set else {
            return Ok(());
        };
        let width = cs.len();
        if width > budget {
            let counts = rule_counts(cs.iter().map(|inst| (inst.rule, 1usize)));
            return Err(EngineError::ConflictSetBudget {
                cycle,
                width,
                budget,
                rules: worst_rules(counts, program),
            });
        }
        Ok(())
    }

    /// Checks the cycle's total delta size from the per-instantiation fire
    /// results, *before* the merged delta is applied. `results` and
    /// `fired` are parallel vectors (result `i` came from instantiation
    /// `i`), so a trip can attribute changes to rules.
    pub fn check_delta(
        &self,
        cycle: u64,
        results: &[FireResult],
        fired: &[Instantiation],
        program: &Program,
    ) -> Result<(), EngineError> {
        let Some(budget) = self.max_delta else {
            return Ok(());
        };
        let size: usize = results.iter().map(|r| r.delta.len()).sum();
        if size > budget {
            let counts = rule_counts(
                fired
                    .iter()
                    .zip(results)
                    .map(|(inst, r)| (inst.rule, r.delta.len())),
            );
            return Err(EngineError::DeltaBudget {
                cycle,
                size,
                budget,
                rules: worst_rules(counts, program),
            });
        }
        Ok(())
    }

    /// Checks working-memory size after `cycle` committed.
    pub fn check_wm(&self, cycle: u64, wm_len: usize) -> Result<(), EngineError> {
        let Some(budget) = self.max_wm else {
            return Ok(());
        };
        if wm_len > budget {
            return Err(EngineError::WmBudget {
                cycle,
                size: wm_len,
                budget,
            });
        }
        Ok(())
    }
}

fn rule_counts(items: impl Iterator<Item = (RuleId, usize)>) -> FxHashMap<RuleId, usize> {
    let mut counts: FxHashMap<RuleId, usize> = FxHashMap::default();
    for (rule, n) in items {
        *counts.entry(rule).or_default() += n;
    }
    counts
}

/// The worst offenders, by descending count then name (deterministic),
/// truncated to [`MAX_NAMED_RULES`].
fn worst_rules(counts: FxHashMap<RuleId, usize>, program: &Program) -> Vec<String> {
    let mut rules: Vec<(usize, String)> = counts
        .into_iter()
        .map(|(rule, n)| (n, program.rule_name(rule)))
        .collect();
    rules.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    rules.truncate(MAX_NAMED_RULES);
    rules.into_iter().map(|(_, name)| name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{ClassId, Delta, Value, Wme, WmeId};
    use parulel_lang::compile;
    use std::sync::Arc;

    fn program_with_rules(n: usize) -> Program {
        let mut src = String::from("(literalize n v)\n");
        for i in 0..n {
            src.push_str(&format!("(p rule{i} (n ^v {i}) --> (remove 1))\n"));
        }
        compile(&src).unwrap()
    }

    fn inst(rule: u32, wme_id: u64) -> Instantiation {
        Instantiation::new(
            RuleId(rule),
            vec![Wme::new(WmeId(wme_id), ClassId(0), vec![Value::Int(0)])],
            vec![],
        )
    }

    #[test]
    fn unlimited_budgets_never_trip() {
        let b = Budgets::unlimited();
        assert!(b.is_unlimited());
        let p = program_with_rules(1);
        let mut cs = ConflictSet::new();
        for i in 0..100 {
            cs.insert(inst(0, i));
        }
        assert!(b.check_deadline(1, Instant::now()).is_ok());
        assert!(b.check_conflict_set(1, &cs, &p).is_ok());
        assert!(b.check_wm(1, usize::MAX).is_ok());
        assert!(b.check_delta(1, &[], &[], &p).is_ok());
    }

    #[test]
    fn conflict_set_trip_names_worst_rules_in_order() {
        let p = program_with_rules(3);
        let b = Budgets {
            max_conflict_set: Some(5),
            ..Budgets::unlimited()
        };
        let mut cs = ConflictSet::new();
        let mut next = 0;
        for (rule, count) in [(0u32, 1usize), (1, 4), (2, 2)] {
            for _ in 0..count {
                cs.insert(inst(rule, next));
                next += 1;
            }
        }
        let err = b.check_conflict_set(7, &cs, &p).unwrap_err();
        match err {
            EngineError::ConflictSetBudget {
                cycle,
                width,
                budget,
                rules,
            } => {
                assert_eq!((cycle, width, budget), (7, 7, 5));
                assert_eq!(rules, vec!["rule1", "rule2", "rule0"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn delta_trip_attributes_changes_to_rules() {
        let p = program_with_rules(2);
        let b = Budgets {
            max_delta: Some(3),
            ..Budgets::unlimited()
        };
        let mk_result = |changes: usize| {
            let mut r = FireResult::default();
            for i in 0..changes {
                r.delta.removes.push(WmeId(i as u64));
            }
            r
        };
        let fired = vec![inst(0, 1), inst(1, 2)];
        let results = vec![mk_result(1), mk_result(4)];
        let err = b.check_delta(3, &results, &fired, &p).unwrap_err();
        match err {
            EngineError::DeltaBudget {
                cycle,
                size,
                budget,
                rules,
            } => {
                assert_eq!((cycle, size, budget), (3, 5, 3));
                assert_eq!(rules, vec!["rule1", "rule0"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // under budget: fine
        assert!(b
            .check_delta(3, &[mk_result(3)], &[inst(0, 1)], &p)
            .is_ok());
        // a Delta can be inspected too (compile-check the public surface)
        let _ = Delta::new();
    }

    #[test]
    fn wm_and_deadline_trip_with_cycle_numbers() {
        let b = Budgets {
            max_wm: Some(10),
            timeout: Some(Duration::ZERO),
            ..Budgets::unlimited()
        };
        assert!(!b.is_unlimited());
        match b.check_wm(9, 11).unwrap_err() {
            EngineError::WmBudget {
                cycle,
                size,
                budget,
            } => assert_eq!((cycle, size, budget), (9, 11, 10)),
            other => panic!("wrong variant: {other:?}"),
        }
        let started = Instant::now() - Duration::from_millis(5);
        match b.check_deadline(4, started).unwrap_err() {
            EngineError::Timeout { cycle, budget, .. } => {
                assert_eq!((cycle, budget), (4, Duration::ZERO));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn errors_render_cycle_and_rules() {
        let e = EngineError::ConflictSetBudget {
            cycle: 12,
            width: 100,
            budget: 50,
            rules: vec!["hot".into()],
        };
        let s = e.to_string();
        assert!(s.contains("cycle 12") && s.contains("hot"), "{s}");
        let e = EngineError::RhsPanic {
            rule: "boom".into(),
            payload: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("boom") && s.contains("index out of bounds"), "{s}");
        // compile-check: Arc<Program> is what the engine holds
        let _: Arc<Program> = Arc::new(program_with_rules(1));
    }
}
