//! The sequential OPS5 baseline: match → resolve (LEX/MEA) → act, one
//! instantiation per cycle. Table 2 compares this against the PARULEL
//! many-firing engine on identical programs.

use crate::fire::{self, EngineError};
use crate::metrics::{EngineMetrics, Phase, TraceBuffer, TraceEvent};
use crate::refraction::Refraction;
use crate::stats::{CycleStats, Outcome, RunStats};
use crate::EngineOptions;
use parulel_core::{Instantiation, Program, WorkingMemory};
use parulel_match::{Matcher, MatcherMetrics};
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// OPS5 conflict-resolution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// LEX: refraction, then recency of all timestamps (lexicographic,
    /// newest first), then specificity.
    #[default]
    Lex,
    /// MEA: refraction, then recency of the *first* CE's timestamp, then
    /// the LEX ordering.
    Mea,
}

/// The one-firing-per-cycle engine.
pub struct SerialEngine {
    program: Arc<Program>,
    wm: WorkingMemory,
    matcher: Box<dyn Matcher>,
    refraction: Refraction,
    strategy: Strategy,
    opts: EngineOptions,
    stats: RunStats,
    log: Vec<String>,
    halted: bool,
    metrics: EngineMetrics,
    trace_buf: Option<TraceBuffer>,
}

impl SerialEngine {
    /// Builds the baseline engine. `opts.guard` is ignored (a single
    /// firing cannot interfere with itself); meta-rules are ignored too —
    /// conflict resolution is the hard-wired `strategy`, which is exactly
    /// the contrast PARULEL draws.
    pub fn new(
        program: &Program,
        wm: WorkingMemory,
        strategy: Strategy,
        opts: EngineOptions,
    ) -> Self {
        let program = Arc::new(program.clone());
        let mut matcher = opts.matcher.build(program.clone());
        matcher.seed(&wm);
        let metrics = EngineMetrics::new(opts.metrics, program.rules().len());
        let trace_buf = opts.trace_events.map(TraceBuffer::new);
        SerialEngine {
            program,
            wm,
            matcher,
            refraction: Refraction::new(),
            strategy,
            opts,
            stats: RunStats::default(),
            log: Vec::new(),
            halted: false,
            metrics,
            trace_buf,
        }
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Collected `write` output.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Observability counters collected so far (all-zero when
    /// `EngineOptions::metrics` is [`crate::MetricsLevel::Off`]).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A live sample of the matcher's internal population.
    pub fn matcher_metrics(&self) -> MatcherMetrics {
        self.matcher.metrics()
    }

    /// The structured event ring (populated only when
    /// `EngineOptions::trace_events` is set).
    pub fn trace_events(&self) -> Option<&TraceBuffer> {
        self.trace_buf.as_ref()
    }

    /// Injects external working-memory changes between cycles — the
    /// serial counterpart of [`ParallelEngine::inject`]
    /// (`crate::ParallelEngine::inject`), with identical semantics: the
    /// delta is applied to working memory and the incremental matcher,
    /// and the next [`step`](Self::step) sees the updated conflict set.
    /// Returns the concrete WMEs removed and added.
    pub fn inject(
        &mut self,
        delta: &parulel_core::Delta,
    ) -> (Vec<parulel_core::Wme>, Vec<parulel_core::Wme>) {
        let (removed, added) = self.wm.apply(delta);
        self.matcher.apply(&removed, &added);
        self.refraction.prune(self.matcher.conflict_set());
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::Inject {
                adds: added.len(),
                removes: removed.len(),
            });
        }
        (removed, added)
    }

    /// Compares two instantiations under the strategy; `Greater` wins.
    fn prefer(&self, a: &Instantiation, b: &Instantiation) -> Ordering {
        let lex = |a: &Instantiation, b: &Instantiation| -> Ordering {
            let (ra, rb) = (a.recency(), b.recency());
            for (x, y) in ra.iter().zip(rb.iter()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            // More timestamps (deeper match) dominates on a tie.
            match ra.len().cmp(&rb.len()) {
                Ordering::Equal => {
                    let sa = self.program.rule(a.rule).specificity();
                    let sb = self.program.rule(b.rule).specificity();
                    sa.cmp(&sb)
                }
                other => other,
            }
        };
        let primary = match self.strategy {
            Strategy::Lex => lex(a, b),
            Strategy::Mea => a
                .first_ce_time()
                .cmp(&b.first_ce_time())
                .then_with(|| lex(a, b)),
        };
        // Final deterministic tie-break: smaller key loses (so the
        // *larger* key wins; any fixed rule works, it just must be total).
        primary.then_with(|| a.key().cmp(&b.key()))
    }

    /// One match–resolve–act cycle. `Ok(true)` if something fired.
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let mut cycle = CycleStats::default();
        let t = Instant::now();
        let cs = self.matcher.conflict_set();
        cycle.conflict_set = cs.len();
        let eligible = self.refraction.eligible(cs);
        cycle.eligible = eligible.len();
        cycle.match_time = t.elapsed();
        let collect = self.opts.metrics.per_rule();
        if collect {
            self.metrics.peak_conflict_set =
                self.metrics.peak_conflict_set.max(cycle.conflict_set);
            for inst in &eligible {
                self.metrics.per_rule[inst.rule.0 as usize].matched += 1;
            }
        }
        if eligible.is_empty() {
            return Ok(false);
        }

        let t = Instant::now();
        let winner = eligible
            .iter()
            .max_by(|a, b| self.prefer(a, b))
            .expect("non-empty eligible set")
            .clone();
        cycle.redact_time = t.elapsed();

        let t = Instant::now();
        let result = fire::isolate(
            || self.program.rule_name(winner.rule),
            || fire::fire(&self.program, &winner, self.opts.collect_log),
        )?;
        let rhs_time = t.elapsed();
        let (delta, log, halt) = fire::merge(vec![result]);
        self.refraction.record(std::iter::once(&winner));
        cycle.fired = 1;
        cycle.adds = delta.adds.len();
        cycle.removes = delta.removes.len();
        cycle.fire_time = t.elapsed();
        if collect {
            let rm = &mut self.metrics.per_rule[winner.rule.0 as usize];
            rm.fired += 1;
            rm.rhs_time += rhs_time;
        }

        // Attribute the incremental network update to match time (it
        // *is* matching); apply time covers WM mutation and refraction
        // upkeep only.
        let t = Instant::now();
        let (removed, added) = self.wm.apply(&delta);
        cycle.apply_time = t.elapsed();
        let t = Instant::now();
        self.matcher.apply(&removed, &added);
        cycle.match_time += t.elapsed();
        let t = Instant::now();
        self.refraction.prune(self.matcher.conflict_set());
        cycle.apply_time += t.elapsed();
        if collect {
            self.metrics.peak_wm = self.metrics.peak_wm.max(self.wm.len());
        }
        if self.opts.metrics.matcher() {
            let sample = self.matcher.metrics();
            self.metrics.sample_matcher(&sample);
        }

        self.log.extend(log);
        self.halted |= halt;
        self.stats.absorb(&cycle);
        if let Some(buf) = &mut self.trace_buf {
            let c = self.stats.cycles;
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Match,
                dur: cycle.match_time,
                items: cycle.eligible,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Fire,
                dur: cycle.fire_time,
                items: cycle.fired,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Apply,
                dur: cycle.apply_time,
                items: cycle.adds + cycle.removes,
            });
        }
        Ok(true)
    }

    /// Runs to quiescence, halt, or the cycle limit.
    pub fn run(&mut self) -> Result<Outcome, EngineError> {
        let start = Instant::now();
        let mut quiescent = false;
        let mut hit_cycle_limit = false;
        let first_cycle = self.stats.cycles;
        let first_firings = self.stats.firings;
        loop {
            if self.halted {
                break;
            }
            if self.stats.cycles - first_cycle >= self.opts.max_cycles {
                hit_cycle_limit = true;
                break;
            }
            if !self.step()? {
                quiescent = true;
                break;
            }
        }
        // Per-call numbers: a caller that injects facts and runs again
        // gets this continuation's cycles, not the lifetime total (which
        // lives in `stats`).
        let outcome = Outcome {
            cycles: self.stats.cycles - first_cycle,
            firings: self.stats.firings - first_firings,
            halted: self.halted,
            quiescent,
            hit_cycle_limit,
            wall: start.elapsed(),
        };
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::RunEnd {
                cycles: outcome.cycles,
                firings: outcome.firings,
                status: if outcome.halted {
                    "halted"
                } else if outcome.hit_cycle_limit {
                    "cycle-limit"
                } else {
                    "quiescent"
                },
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelEngine;
    use parulel_core::Value;
    use parulel_lang::compile;

    fn wm_with(p: &Program, facts: &[(&str, Vec<Value>)]) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(cid, fields.clone());
        }
        wm
    }

    #[test]
    fn fires_one_per_cycle() {
        let p = compile(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
                ("cell", vec![Value::Int(3), Value::Int(0)]),
            ],
        );
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 3, "serial engine needs one cycle per cell");
        assert_eq!(out.firings, 3);
    }

    #[test]
    fn lex_prefers_recency_then_specificity() {
        let p = compile(
            "(literalize a v)
             (p plain (a ^v <x>) --> (remove 1))
             (p specific (a ^v <x>) (test (>= <x> 0)) --> (remove 1) (write specific))",
        )
        .unwrap();
        let wm = wm_with(&p, &[("a", vec![Value::Int(1)])]);
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        e.run().unwrap();
        // Same single WME (equal recency): specificity must pick `specific`.
        assert_eq!(e.log(), &["specific".to_string()]);
    }

    #[test]
    fn mea_prefers_recent_first_ce() {
        let p = compile(
            "(literalize goal id)
             (p act (goal ^id <g>) --> (remove 1) (write acted <g>))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[("goal", vec![Value::Int(1)]), ("goal", vec![Value::Int(2)])],
        );
        let mut e = SerialEngine::new(&p, wm, Strategy::Mea, EngineOptions::default());
        e.run().unwrap();
        // goal 2 was asserted later ⇒ fires first.
        assert_eq!(e.log(), &["acted 2".to_string(), "acted 1".to_string()]);
    }

    #[test]
    fn inject_gives_continuation_outcomes_and_lifetime_stats() {
        // Satellite regression: the serial engine mirrors
        // ParallelEngine::inject — a second run() after injection reports
        // continuation-only numbers while stats() keeps lifetime totals.
        let p = compile(
            "(literalize req id)
             (literalize done id)
             (p serve (req ^id <r>) --> (remove 1) (make done ^id <r>))",
        )
        .unwrap();
        let wm = wm_with(&p, &[("req", vec![Value::Int(1)])]);
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 1));
        let req = p.classes.id_of(p.interner.intern("req")).unwrap();
        let mut delta = parulel_core::Delta::new();
        delta.adds.push((req, vec![Value::Int(2)].into()));
        delta.adds.push((req, vec![Value::Int(3)].into()));
        let (removed, added) = e.inject(&delta);
        assert!(removed.is_empty());
        assert_eq!(added.len(), 2);
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (2, 2), "per-call outcome");
        assert_eq!(e.stats().cycles, 3, "lifetime stats keep the total");
        assert_eq!(e.stats().firings, 3);
        let done = p.classes.id_of(p.interner.intern("done")).unwrap();
        assert_eq!(e.wm().iter_class(done).count(), 3);
    }

    #[test]
    fn metrics_count_winner_firings_only() {
        use crate::metrics::MetricsLevel;
        let p = compile(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
            ],
        );
        let mut e = SerialEngine::new(
            &p,
            wm,
            Strategy::Lex,
            EngineOptions {
                metrics: MetricsLevel::Rules,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let bump = p.rule_by_name(p.interner.intern("bump")).unwrap();
        let m = e.metrics().rule(bump);
        assert_eq!(m.fired, 2, "one winner per cycle");
        // Cycle 1 sees 2 eligible, cycle 2 sees 1: matched sums pressure.
        assert_eq!(m.matched, 3);
        assert_eq!(e.metrics().peak_conflict_set, 2);
        assert_eq!(e.metrics().peak_wm, 2);
    }

    #[test]
    fn serial_and_parallel_agree_on_confluent_program() {
        let src = "
            (literalize n v)
            (literalize sq v)
            (p square (n ^v <x>) --> (make sq ^v (* <x> <x>)) (remove 1))";
        let p = compile(src).unwrap();
        let facts: Vec<(&str, Vec<Value>)> = (1..=5).map(|i| ("n", vec![Value::Int(i)])).collect();
        let mut serial = SerialEngine::new(
            &p,
            wm_with(&p, &facts),
            Strategy::Lex,
            EngineOptions::default(),
        );
        let s_out = serial.run().unwrap();
        let mut parallel = ParallelEngine::new(&p, wm_with(&p, &facts), EngineOptions::default());
        let p_out = parallel.run().unwrap();
        assert_eq!(s_out.firings, 5);
        assert_eq!(p_out.firings, 5);
        assert_eq!(s_out.cycles, 5);
        assert_eq!(p_out.cycles, 1, "PARULEL collapses 5 cycles into 1");
        assert_eq!(
            serial.wm().canonical_facts(),
            parallel.wm().canonical_facts()
        );
    }
}
