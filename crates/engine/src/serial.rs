//! The sequential OPS5 baseline: match → resolve (LEX/MEA) → act, one
//! instantiation per cycle. Table 2 compares this against the PARULEL
//! many-firing engine on identical programs.
//!
//! Since the engine unification this is a thin wrapper over the unified
//! [`Engine`] running [`FiringPolicy::SelectOne`] — the baseline shares
//! the single cycle loop in [`crate::core`] and therefore gets budgets,
//! timeouts, panic isolation, checkpoint/resume, fault injection, and
//! [`inject`](Engine::inject) exactly as the parallel engine does.
//! Meta-rules and the interference guard do not apply to a one-winner
//! policy (that is the contrast PARULEL draws); constructing a
//! `SerialEngine` over a program that defines meta-rules pushes a
//! one-line warning onto the run log.

use crate::core::Engine;
use crate::policy::FiringPolicy;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::EngineOptions;
use parulel_core::{Program, WorkingMemory};
use std::ops::{Deref, DerefMut};

pub use crate::policy::Strategy;

/// The one-firing-per-cycle engine: [`Engine`] under
/// [`FiringPolicy::SelectOne`]. Derefs to [`Engine`], so every engine
/// method (`step`, `run`, `inject`, `checkpoint`, `metrics`, …) is
/// available directly.
pub struct SerialEngine(Engine);

impl SerialEngine {
    /// Builds the baseline engine under `strategy`.
    pub fn new(
        program: &Program,
        wm: WorkingMemory,
        strategy: Strategy,
        opts: EngineOptions,
    ) -> Self {
        SerialEngine(Engine::with_policy(
            program,
            wm,
            FiringPolicy::SelectOne(strategy),
            opts,
        ))
    }

    /// Resumes a snapshot under `strategy` — the serial counterpart of
    /// [`Engine::resume`].
    pub fn resume(
        program: &Program,
        snapshot: &Snapshot,
        strategy: Strategy,
        opts: EngineOptions,
    ) -> Result<Self, SnapshotError> {
        Engine::resume_with_policy(program, snapshot, FiringPolicy::SelectOne(strategy), opts)
            .map(SerialEngine)
    }

    /// Unwraps to the underlying unified engine.
    pub fn into_inner(self) -> Engine {
        self.0
    }
}

impl Deref for SerialEngine {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.0
    }
}

impl DerefMut for SerialEngine {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelEngine;
    use parulel_core::Value;
    use parulel_lang::compile;

    fn wm_with(p: &Program, facts: &[(&str, Vec<Value>)]) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(cid, fields.clone());
        }
        wm
    }

    #[test]
    fn fires_one_per_cycle() {
        let p = compile(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
                ("cell", vec![Value::Int(3), Value::Int(0)]),
            ],
        );
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 3, "serial engine needs one cycle per cell");
        assert_eq!(out.firings, 3);
    }

    #[test]
    fn lex_prefers_recency_then_specificity() {
        let p = compile(
            "(literalize a v)
             (p plain (a ^v <x>) --> (remove 1))
             (p specific (a ^v <x>) (test (>= <x> 0)) --> (remove 1) (write specific))",
        )
        .unwrap();
        let wm = wm_with(&p, &[("a", vec![Value::Int(1)])]);
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        e.run().unwrap();
        // Same single WME (equal recency): specificity must pick `specific`.
        assert_eq!(e.log(), &["specific".to_string()]);
    }

    #[test]
    fn mea_prefers_recent_first_ce() {
        let p = compile(
            "(literalize goal id)
             (p act (goal ^id <g>) --> (remove 1) (write acted <g>))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[("goal", vec![Value::Int(1)]), ("goal", vec![Value::Int(2)])],
        );
        let mut e = SerialEngine::new(&p, wm, Strategy::Mea, EngineOptions::default());
        e.run().unwrap();
        // goal 2 was asserted later ⇒ fires first.
        assert_eq!(e.log(), &["acted 2".to_string(), "acted 1".to_string()]);
    }

    #[test]
    fn inject_gives_continuation_outcomes_and_lifetime_stats() {
        // Satellite regression: the serial engine mirrors
        // ParallelEngine::inject — a second run() after injection reports
        // continuation-only numbers while stats() keeps lifetime totals.
        let p = compile(
            "(literalize req id)
             (literalize done id)
             (p serve (req ^id <r>) --> (remove 1) (make done ^id <r>))",
        )
        .unwrap();
        let wm = wm_with(&p, &[("req", vec![Value::Int(1)])]);
        let mut e = SerialEngine::new(&p, wm, Strategy::Lex, EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 1));
        let req = p.classes.id_of(p.interner.intern("req")).unwrap();
        let mut delta = parulel_core::Delta::new();
        delta.adds.push((req, vec![Value::Int(2)].into()));
        delta.adds.push((req, vec![Value::Int(3)].into()));
        let (removed, added) = e.inject(&delta);
        assert!(removed.is_empty());
        assert_eq!(added.len(), 2);
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (2, 2), "per-call outcome");
        assert_eq!(e.stats().cycles, 3, "lifetime stats keep the total");
        assert_eq!(e.stats().firings, 3);
        let done = p.classes.id_of(p.interner.intern("done")).unwrap();
        assert_eq!(e.wm().iter_class(done).count(), 3);
    }

    #[test]
    fn metrics_count_winner_firings_only() {
        use crate::metrics::MetricsLevel;
        let p = compile(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
        )
        .unwrap();
        let wm = wm_with(
            &p,
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
            ],
        );
        let mut e = SerialEngine::new(
            &p,
            wm,
            Strategy::Lex,
            EngineOptions {
                metrics: MetricsLevel::Rules,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let bump = p.rule_by_name(p.interner.intern("bump")).unwrap();
        let m = e.metrics().rule(bump);
        assert_eq!(m.fired, 2, "one winner per cycle");
        // Cycle 1 sees 2 eligible, cycle 2 sees 1: matched sums pressure.
        assert_eq!(m.matched, 3);
        assert_eq!(e.metrics().peak_conflict_set, 2);
        assert_eq!(e.metrics().peak_wm, 2);
    }

    #[test]
    fn serial_and_parallel_agree_on_confluent_program() {
        let src = "
            (literalize n v)
            (literalize sq v)
            (p square (n ^v <x>) --> (make sq ^v (* <x> <x>)) (remove 1))";
        let p = compile(src).unwrap();
        let facts: Vec<(&str, Vec<Value>)> = (1..=5).map(|i| ("n", vec![Value::Int(i)])).collect();
        let mut serial = SerialEngine::new(
            &p,
            wm_with(&p, &facts),
            Strategy::Lex,
            EngineOptions::default(),
        );
        let s_out = serial.run().unwrap();
        let mut parallel = ParallelEngine::new(&p, wm_with(&p, &facts), EngineOptions::default());
        let p_out = parallel.run().unwrap();
        assert_eq!(s_out.firings, 5);
        assert_eq!(p_out.firings, 5);
        assert_eq!(s_out.cycles, 5);
        assert_eq!(p_out.cycles, 1, "PARULEL collapses 5 cycles into 1");
        assert_eq!(
            serial.wm().canonical_facts(),
            parallel.wm().canonical_facts()
        );
    }
}
