//! The meta-rule evaluator: programmable conflict resolution.
//!
//! PARULEL's key idea: the conflict set is itself a working memory that a
//! second, *meta* level of rules matches over. A meta-rule's LHS binds
//! instantiations of named object rules (pairwise distinct) and tests
//! their matched WMEs; its RHS *redacts* (deletes) some of them.
//!
//! ## Semantics
//!
//! Redaction runs in **simultaneous rounds to a fixpoint**: each round,
//! every meta-rule match against the currently-live set is computed, all
//! requested redactions are applied at once, and the process repeats until
//! a round redacts nothing. Simultaneity makes the result independent of
//! rule and instantiation enumeration order — property-tested in this
//! module. (A meta-pair that mutually redacts each other kills both; write
//! a tie-breaking `test` if one should survive.)

use parulel_core::{
    FxHashMap, FxHashSet, Instantiation, MetaRule, Program, RuleId, TestExpr, Value,
};

/// Result of the redaction phase.
#[derive(Clone, Debug)]
pub struct RedactOutcome {
    /// Instantiations that survived, in the input (key-sorted) order.
    pub surviving: Vec<Instantiation>,
    /// How many were redacted.
    pub redacted: usize,
    /// Rounds to fixpoint.
    pub rounds: usize,
}

/// An equality join key for one meta CE: candidate instantiations can be
/// hash-bucketed on `wmes[pat].field(slot)`, probed with `env[var]`.
#[derive(Clone, Copy, Debug)]
struct JoinKey {
    pat: usize,
    slot: u16,
    var: parulel_core::VarId,
}

/// Precomputed evaluation plan for one meta-rule: which tests can run
/// after which CE (earliest point all their variables are bound), and the
/// hash-join key for each CE (the first field equated with a variable
/// bound by an earlier CE). Without the key, pairwise meta-rules over a
/// conflict set of width *n* cost O(n²) per round; with it the common
/// "same ^x" patterns cost O(n).
struct MetaPlan<'a> {
    meta: &'a MetaRule,
    /// `tests_at[k]` = tests runnable once CEs `0..=k` are bound.
    tests_at: Vec<Vec<&'a TestExpr>>,
    /// `join_key[k]` = the hash-join key for CE k, if one exists.
    join_key: Vec<Option<JoinKey>>,
}

impl<'a> MetaPlan<'a> {
    fn new(meta: &'a MetaRule) -> Self {
        // Variables are allocated scanning CEs in order, so the count
        // bound after CE k is the max Bind id seen in CEs 0..=k, plus one.
        let mut bound_after = Vec::with_capacity(meta.ces.len());
        let mut join_key = Vec::with_capacity(meta.ces.len());
        let mut bound: u16 = 0;
        for ce in &meta.ces {
            let mut key = None;
            for (p, pat) in ce.pats.iter().enumerate() {
                for t in &pat.tests {
                    match t.check {
                        parulel_core::FieldCheck::Bind(v) => bound = bound.max(v.0 + 1),
                        parulel_core::FieldCheck::Var(parulel_core::PredOp::Eq, v)
                            if v.0 < bound && key.is_none() =>
                        {
                            // `bound` here still counts only earlier CEs
                            // plus earlier binds of this CE; a var bound
                            // earlier in this same CE is also fine to
                            // probe with (it's in env by then)… but env is
                            // only filled per-candidate, so restrict to
                            // vars from earlier CEs: recompute below.
                            key = Some(JoinKey {
                                pat: p,
                                slot: t.slot,
                                var: v,
                            });
                        }
                        _ => {}
                    }
                }
            }
            bound_after.push(bound);
            join_key.push(key);
        }
        // Drop keys whose variable is bound within the same CE (the probe
        // value is not available before candidate selection).
        for (k, key) in join_key.iter_mut().enumerate() {
            if let Some(jk) = key {
                let before = if k == 0 { 0 } else { bound_after[k - 1] };
                if jk.var.0 >= before {
                    *key = None;
                }
            }
        }
        let mut tests_at: Vec<Vec<&TestExpr>> = vec![Vec::new(); meta.ces.len()];
        for test in &meta.tests {
            let anchor = match test.max_var() {
                None => 0,
                Some(v) => bound_after
                    .iter()
                    .position(|&n| n > v.0)
                    .unwrap_or(meta.ces.len() - 1),
            };
            tests_at[anchor].push(test);
        }
        MetaPlan {
            meta,
            tests_at,
            join_key,
        }
    }
}

/// Runs all meta-rules of `program` over `eligible` to fixpoint. Input
/// order is preserved for survivors (callers pass key-sorted sets, so the
/// output is deterministic).
pub fn redact(program: &Program, eligible: Vec<Instantiation>) -> RedactOutcome {
    if program.metas().is_empty() || eligible.is_empty() {
        return RedactOutcome {
            surviving: eligible,
            redacted: 0,
            rounds: 0,
        };
    }
    let plans: Vec<MetaPlan> = program.metas().iter().map(MetaPlan::new).collect();
    let mut alive: Vec<bool> = vec![true; eligible.len()];
    let mut rounds = 0usize;
    loop {
        // Index live instantiations by rule for candidate enumeration.
        let mut by_rule: FxHashMap<RuleId, Vec<usize>> = FxHashMap::default();
        for (i, inst) in eligible.iter().enumerate() {
            if alive[i] {
                by_rule.entry(inst.rule).or_default().push(i);
            }
        }
        let mut to_redact: FxHashSet<usize> = FxHashSet::default();
        for plan in &plans {
            // Hash-join indexes for this round: per keyed CE, bucket the
            // live candidates by the key field's value.
            let indexes: Vec<Option<FxHashMap<Value, Vec<usize>>>> = plan
                .meta
                .ces
                .iter()
                .zip(&plan.join_key)
                .map(|(ce, key)| {
                    key.map(|jk| {
                        let mut idx: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
                        if let Some(cands) = by_rule.get(&ce.rule) {
                            for &i in cands {
                                let v = eligible[i].wmes[jk.pat].field(jk.slot as usize);
                                idx.entry(v.join_key()).or_default().push(i);
                            }
                        }
                        idx
                    })
                })
                .collect();
            let mut env = vec![Value::NIL; plan.meta.num_vars as usize];
            let mut chosen = Vec::with_capacity(plan.meta.ces.len());
            match_meta(
                plan,
                &eligible,
                &by_rule,
                &indexes,
                0,
                &mut env,
                &mut chosen,
                &mut to_redact,
            );
        }
        if to_redact.is_empty() {
            break;
        }
        for i in to_redact {
            alive[i] = false;
        }
        rounds += 1;
    }
    let mut surviving = Vec::new();
    let mut redacted = 0;
    for (i, inst) in eligible.into_iter().enumerate() {
        if alive[i] {
            surviving.push(inst);
        } else {
            redacted += 1;
        }
    }
    RedactOutcome {
        surviving,
        redacted,
        rounds,
    }
}

/// Depth-first enumeration of all matches of one meta-rule against the
/// live set; every full match contributes its redactions.
#[allow(clippy::too_many_arguments)]
fn match_meta(
    plan: &MetaPlan,
    eligible: &[Instantiation],
    by_rule: &FxHashMap<RuleId, Vec<usize>>,
    indexes: &[Option<FxHashMap<Value, Vec<usize>>>],
    ce_idx: usize,
    env: &mut Vec<Value>,
    chosen: &mut Vec<usize>,
    to_redact: &mut FxHashSet<usize>,
) {
    if ce_idx == plan.meta.ces.len() {
        for action in &plan.meta.actions {
            let parulel_core::MetaAction::Redact { ce } = action;
            to_redact.insert(chosen[*ce as usize]);
        }
        return;
    }
    let ce = &plan.meta.ces[ce_idx];
    // Probe the hash-join index when the CE has an equality key; fall back
    // to all live candidates of the rule. Buckets are re-checked by the
    // full pattern below, so over-approximation is fine.
    static EMPTY: Vec<usize> = Vec::new();
    let candidates: &Vec<usize> = match (&indexes[ce_idx], &plan.join_key[ce_idx]) {
        (Some(idx), Some(jk)) => idx.get(&env[jk.var.index()].join_key()).unwrap_or(&EMPTY),
        _ => by_rule.get(&ce.rule).unwrap_or(&EMPTY),
    };
    'cand: for &idx in candidates {
        // Distinct meta CEs bind distinct instantiations.
        if chosen.contains(&idx) {
            continue;
        }
        let inst = &eligible[idx];
        let saved = env.clone();
        for (pat, wme) in ce.pats.iter().zip(inst.wmes.iter()) {
            for t in &pat.tests {
                if !t.check_wme(wme, env) {
                    *env = saved;
                    continue 'cand;
                }
            }
        }
        if !plan.tests_at[ce_idx].iter().all(|t| t.check(env)) {
            *env = saved;
            continue;
        }
        chosen.push(idx);
        match_meta(
            plan,
            eligible,
            by_rule,
            indexes,
            ce_idx + 1,
            env,
            chosen,
            to_redact,
        );
        chosen.pop();
        *env = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::WorkingMemory;
    use parulel_lang::compile;
    use parulel_match::{Matcher, Rete};
    use std::sync::Arc;

    /// Compiles, seeds WM via `facts` = (class, fields) rows, returns the
    /// key-sorted eligible set.
    fn eligible(src: &str, facts: &[(&str, Vec<i64>)]) -> (Program, Vec<Instantiation>) {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(
                cid,
                fields.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
            );
        }
        let mut m = Rete::new(Arc::new(p.clone()));
        m.seed(&wm);
        (p.clone(), m.conflict_set().sorted())
    }

    const PICK_MIN: &str = "
        (literalize req id prio)
        (p serve (req ^id <i> ^prio <p>) --> (remove 1))
        (mp keep-best
          (inst serve (req ^prio <p1>))
          (inst serve (req ^prio <p2>))
          (test (> <p1> <p2>))
         -->
          (redact 1))";

    #[test]
    fn pairwise_minimum_survives() {
        let (p, el) = eligible(
            PICK_MIN,
            &[
                ("req", vec![1, 30]),
                ("req", vec![2, 10]),
                ("req", vec![3, 20]),
            ],
        );
        assert_eq!(el.len(), 3);
        let out = redact(&p, el);
        assert_eq!(out.surviving.len(), 1);
        assert_eq!(out.redacted, 2);
        // the survivor has prio 10
        assert_eq!(out.surviving[0].wmes[0].field(1), Value::Int(10));
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn mutual_redaction_kills_both() {
        // No tie-break test: equal priorities redact each other.
        let src = "
            (literalize req id prio)
            (p serve (req ^id <i> ^prio <p>) --> (remove 1))
            (mp collide
              (inst serve (req ^prio <p>))
              (inst serve (req ^prio <p>))
             -->
              (redact 1))";
        let (p, el) = eligible(src, &[("req", vec![1, 5]), ("req", vec![2, 5])]);
        let out = redact(&p, el);
        assert_eq!(out.surviving.len(), 0);
        assert_eq!(out.redacted, 2);
    }

    #[test]
    fn no_metas_is_identity() {
        let src = "
            (literalize req id prio)
            (p serve (req ^id <i> ^prio <p>) --> (remove 1))";
        let (p, el) = eligible(src, &[("req", vec![1, 5]), ("req", vec![2, 5])]);
        let n = el.len();
        let out = redact(&p, el);
        assert_eq!(out.surviving.len(), n);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn fixpoint_needs_multiple_rounds() {
        // "redact the larger of any adjacent pair (diff = 1)". After round
        // one kills 30→29… no: use a chain where killing one enables
        // another comparison. prios 1,2,3: round 1 matches (1,2),(2,3),
        // (1,3)? test is diff exactly 1: pairs (2 over 1) and (3 over 2)
        // redact 2 and 3 in one round. For multi-round we need matches
        // that only appear after a redaction — with positive-only meta
        // CEs redaction only removes matches, so rounds>1 requires … the
        // fixpoint loop still runs a second (empty) round check.
        let src = "
            (literalize req id prio)
            (p serve (req ^id <i> ^prio <p>) --> (remove 1))
            (mp adj
              (inst serve (req ^prio <p1>))
              (inst serve (req ^prio <p2>))
              (test (= <p1> (+ <p2> 1)))
             -->
              (redact 1))";
        let (p, el) = eligible(
            src,
            &[
                ("req", vec![1, 1]),
                ("req", vec![2, 2]),
                ("req", vec![3, 3]),
            ],
        );
        let out = redact(&p, el);
        assert_eq!(out.surviving.len(), 1);
        assert_eq!(out.surviving[0].wmes[0].field(1), Value::Int(1));
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn order_independence_of_simultaneous_rounds() {
        // Shuffle the eligible order; the surviving *set* must not change.
        let (p, el) = eligible(
            PICK_MIN,
            &[
                ("req", vec![1, 7]),
                ("req", vec![2, 3]),
                ("req", vec![3, 9]),
                ("req", vec![4, 3]),
            ],
        );
        let baseline: Vec<_> = {
            let out = redact(&p, el.clone());
            out.surviving.iter().map(|i| i.key()).collect()
        };
        let mut rev = el.clone();
        rev.reverse();
        let mut got: Vec<_> = redact(&p, rev).surviving.iter().map(|i| i.key()).collect();
        got.sort();
        let mut want = baseline.clone();
        want.sort();
        assert_eq!(got, want);
        // Two prio-3 entries: both survive vs the others, neither redacts
        // the other (test is strict >).
        assert_eq!(want.len(), 2);
    }

    #[test]
    fn wildcard_and_positional_patterns() {
        let src = "
            (literalize a x)
            (literalize b y)
            (p pair (a ^x <u>) (b ^y <v>) --> (remove 1))
            (mp drop-matching
              (inst pair _ (b ^y 2))
             -->
              (redact 1))";
        let (p, el) = eligible(src, &[("a", vec![1]), ("b", vec![2]), ("b", vec![3])]);
        assert_eq!(el.len(), 2);
        let out = redact(&p, el);
        assert_eq!(out.surviving.len(), 1);
        assert_eq!(out.surviving[0].wmes[1].field(0), Value::Int(3));
    }
}
