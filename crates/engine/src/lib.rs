//! # parulel-engine
//!
//! Execution engines for the PARULEL reproduction.
//!
//! ## One cycle kernel, pluggable firing policies
//!
//! Classic OPS5 runs *match → resolve → act*: compute the conflict set,
//! select **one** instantiation with a hard-wired strategy (LEX/MEA), fire
//! it, repeat. PARULEL's contribution is the *match → redact → fire-all*
//! cycle. Both are the **same loop** with a different resolve phase, and
//! the crate is structured that way: a single cycle driver
//! ([`core::Engine`]) owns working memory, the matcher, refraction,
//! budgets/timeouts, panic isolation, checkpoint/resume, fault
//! injection, `inject()`, metrics, and trace events, while a
//! [`FiringPolicy`] decides what fires each cycle:
//!
//! * [`FiringPolicy::FireAll`] — PARULEL:
//!   1. **Match** — an incremental matcher (`parulel-match`) maintains
//!      the conflict set; refraction removes already-fired
//!      instantiations.
//!   2. **Redact** — [`meta`]: the program's *meta-rules* run to
//!      fixpoint over the conflict set, deleting ("redacting")
//!      instantiations that must not fire together. Conflict resolution
//!      becomes programmable, application-level knowledge. An optional
//!      [`interference`] guard backstops them, auto-redacting overlaps
//!      a correct meta-rule set should have prevented.
//!   3. **Fire all** — every surviving instantiation fires *in the same
//!      cycle*: RHS actions are evaluated in parallel (rayon) into
//!      per-instantiation deltas, merged in deterministic key order, and
//!      applied to working memory atomically.
//! * [`FiringPolicy::SelectOne`] — the OPS5 baseline every speedup
//!   table compares against: one LEX/MEA winner per cycle.
//!
//! [`ParallelEngine`] (an alias) and [`SerialEngine`] (a thin wrapper)
//! are the policy-flavoured constructors over the same kernel.
//!
//! ## Copy-and-constrain ([`ccc`])
//!
//! The PARULEL-era program transform for match parallelism: split a hot
//! rule into `k` copies, each constrained by a hash-residue test on a
//! binding field, so a partitioned matcher spreads its join work across
//! `k` workers.

#![warn(missing_docs)]

pub mod ccc;
pub mod core;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod fire;
pub mod guard;
pub mod interference;
pub mod json;
pub mod meta;
pub mod metrics;
pub mod parallel;
pub mod policy;
pub mod refraction;
pub mod serial;
pub mod snapshot;
pub mod stats;

pub use ccc::{copy_and_constrain, copy_and_constrain_appending};
pub use core::Engine;
pub use fire::{EngineError, FireResult};
pub use guard::Budgets;
pub use interference::GuardMode;
pub use json::Json;
pub use metrics::{EngineMetrics, MetricsLevel, RuleMetrics, TraceBuffer, TraceEvent};
pub use parallel::ParallelEngine;
pub use policy::{FiringPolicy, Strategy};
pub use serial::SerialEngine;
pub use snapshot::{Snapshot, SnapshotError};
pub use stats::{CycleStats, CycleTrace, Outcome, RunStats};

pub use core::ReloadReport;

use parulel_core::{Program, RuleId};
use parulel_match::{Matcher, NaiveMatcher, Partitioned, Rete, Treat};
pub use parulel_vm::EvalMode;
use parulel_vm::Evaluator;
use std::sync::Arc;

/// Which match engine a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MatcherKind {
    /// Recompute-from-scratch oracle.
    Naive,
    /// Incremental RETE (the default).
    #[default]
    Rete,
    /// TREAT (alpha memories only).
    Treat,
    /// Rule-partitioned parallel RETE with this many workers.
    PartitionedRete(usize),
    /// Rule-partitioned parallel TREAT with this many workers.
    PartitionedTreat(usize),
}

impl MatcherKind {
    /// Instantiates the matcher in the default evaluation mode.
    pub fn build(self, program: Arc<Program>) -> Box<dyn Matcher> {
        let eval = Evaluator::new(program.clone(), EvalMode::default());
        self.build_with(program, eval)
    }

    /// Instantiates the matcher around a caller-built [`Evaluator`]: the
    /// program is compiled to bytecode exactly once and every worker of a
    /// partitioned matcher shares the same `Arc`'d code objects.
    pub fn build_with(self, program: Arc<Program>, eval: Evaluator) -> Box<dyn Matcher> {
        let all = || (0..program.rules().len() as u32).map(RuleId).collect();
        match self {
            MatcherKind::Naive => {
                let rules = all();
                Box::new(NaiveMatcher::with_rules_eval(program, rules, eval))
            }
            MatcherKind::Rete => {
                let rules = all();
                Box::new(Rete::with_rules_eval(program, rules, true, eval))
            }
            MatcherKind::Treat => {
                let rules = all();
                Box::new(Treat::with_rules_eval(program, rules, true, eval))
            }
            MatcherKind::PartitionedRete(n) => Box::new(Partitioned::rete_eval(program, n, eval)),
            MatcherKind::PartitionedTreat(n) => Box::new(Partitioned::treat_eval(program, n, eval)),
        }
    }
}

/// Metrics-driven copy-and-constrain: let the running engine split its
/// hottest rule once the match-state skew across shards is observed,
/// instead of requiring the operator to guess the hot rule up front.
///
/// After [`after_cycles`](Self::after_cycles) cycles the engine samples
/// [`MatcherMetrics`](parulel_match::MatcherMetrics), and if the
/// max-over-mean work imbalance across rule-owning shards reaches
/// [`min_imbalance`](Self::min_imbalance), applies
/// [`copy_and_constrain_appending`] to the heaviest rule on the heaviest
/// shard and rebuilds *only that rule's* match state via
/// [`Matcher::replace_rules`]. The decision fires **at most once per run**
/// and reads only deterministic inputs (match-state populations, never
/// wall-clock), so runs remain bit-identically reproducible.
///
/// Inert for monolithic matchers: with fewer than two rule-owning shards
/// the observed imbalance is defined as 1.0, below any meaningful
/// threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoCcc {
    /// Sample the matcher after this many completed cycles (the skew needs
    /// a few cycles of working-memory growth to become observable).
    pub after_cycles: u64,
    /// Only split when `imbalance()` is at least this (max-over-mean;
    /// 1.0 = balanced). Must be > 1.0 to ever have an effect.
    pub min_imbalance: f64,
    /// Number of copies to split the hot rule into; `0` means "use the
    /// worker count". Resolved factors below 2 skip the split.
    pub factor: u32,
}

impl Default for AutoCcc {
    fn default() -> Self {
        AutoCcc {
            after_cycles: 3,
            min_imbalance: 1.5,
            factor: 0,
        }
    }
}

/// Run-time options for the unified [`Engine`] (any policy).
///
/// Policy-specific configuration — meta-rule redaction and the
/// interference guard — lives on [`FiringPolicy::FireAll`], not here: a
/// `SelectOne` engine cannot silently carry a guard it would ignore.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Match engine selection.
    pub matcher: MatcherKind,
    /// LHS/RHS evaluation mode: compiled bytecode (default) or the
    /// tree-walking reference interpreter. The differential suite at the
    /// workspace root proves the two agree on every matcher and policy.
    pub eval: EvalMode,
    /// Evaluate RHSs of a cycle's surviving instantiations in parallel.
    pub parallel_fire: bool,
    /// Stop (with `hit_cycle_limit`) after this many cycles; a safety net
    /// for non-terminating programs.
    pub max_cycles: u64,
    /// Keep `write` action output in the run log.
    pub collect_log: bool,
    /// Record a [`CycleTrace`] per cycle (costs a name resolution per
    /// fired rule; off by default).
    pub trace: bool,
    /// Observability collection level ([`MetricsLevel::Off`] by default:
    /// the hot path is bit-identical to an uninstrumented run).
    pub metrics: MetricsLevel,
    /// Capacity of the structured [`TraceBuffer`] ring: `Some(cap)`
    /// records typed cycle events (phase spans, budget trips, checkpoint
    /// writes, injections) keeping the newest `cap`; `None` (default)
    /// records nothing.
    pub trace_events: Option<usize>,
    /// Resource budgets checked at cycle boundaries (any policy).
    /// Default: unlimited.
    pub budgets: Budgets,
    /// Capture a [`Snapshot`] into the engine's
    /// [`latest_checkpoint`](Engine::latest_checkpoint) every
    /// this-many cycles during [`run`](Engine::run). `None`
    /// disables periodic checkpoints (one is still captured when a
    /// budget trips).
    pub checkpoint_every: Option<u64>,
    /// Metrics-driven copy-and-constrain (off by default: the program the
    /// engine runs is exactly the program it was given).
    pub auto_ccc: Option<AutoCcc>,
    /// The deterministic fault schedule (tests only; compiled under the
    /// `fault-inject` feature).
    #[cfg(feature = "fault-inject")]
    pub faults: faults::FaultPlan,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            matcher: MatcherKind::Rete,
            eval: EvalMode::default(),
            parallel_fire: true,
            max_cycles: 1_000_000,
            collect_log: true,
            trace: false,
            metrics: MetricsLevel::Off,
            trace_events: None,
            budgets: Budgets::unlimited(),
            checkpoint_every: None,
            auto_ccc: None,
            #[cfg(feature = "fault-inject")]
            faults: faults::FaultPlan::none(),
        }
    }
}
