//! Deterministic fault injection (compiled only with the `fault-inject`
//! feature).
//!
//! The robustness layer — panic isolation, budget guards, checkpoints —
//! is only trustworthy if the failure paths are *exercised*. This module
//! lets tests inject three classes of fault at exact cycles:
//!
//! * **RHS panic** — a chosen rule's RHS panics on a chosen cycle,
//!   exercising the [`crate::fire::isolate`] `catch_unwind` boundary from
//!   inside a real parallel fire phase.
//! * **RHS eval error** — the same, but yielding a structured
//!   [`EngineError::RhsEval`] instead of a panic.
//! * **Matcher corruption** — a phantom duplicate WME is fed to the
//!   incremental matcher (and *only* the matcher: working memory is
//!   untouched), desynchronizing its conflict set from ground truth. The
//!   optional audit recomputes the conflict set with the naive oracle
//!   each cycle and reports divergence as
//!   [`EngineError::MatcherCorrupt`].
//!
//! Everything is keyed on `(cycle, rule-name)` so runs are reproducible;
//! there is no randomness.

use crate::fire::EngineError;
use parulel_core::expr::EvalError;
use parulel_core::{ConflictSet, Program, Wme, WmeId, WorkingMemory};
use parulel_match::{Matcher, NaiveMatcher};
use std::sync::Arc;

/// A `(cycle, rule)` coordinate for an injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPoint {
    /// 1-based cycle the fault fires on.
    pub cycle: u64,
    /// Name of the rule whose firing is sabotaged.
    pub rule: String,
}

impl FaultPoint {
    /// A fault at `cycle` targeting `rule`.
    pub fn new(cycle: u64, rule: impl Into<String>) -> Self {
        FaultPoint {
            cycle,
            rule: rule.into(),
        }
    }

    fn hits(&self, cycle: u64, rule: &str) -> bool {
        self.cycle == cycle && self.rule == rule
    }
}

/// The deterministic fault schedule for one run. Default: no faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the targeted rule's RHS evaluation.
    pub rhs_panic: Option<FaultPoint>,
    /// Fail the targeted rule's RHS with an eval error.
    pub rhs_error: Option<FaultPoint>,
    /// At this cycle, feed the matcher a phantom duplicate of a live WME
    /// (working memory stays correct — only the matcher is corrupted).
    pub corrupt_matcher_at: Option<u64>,
    /// Cross-check the incremental matcher's conflict set against the
    /// naive recompute-from-scratch oracle every cycle.
    pub audit_matcher: bool,
}

impl FaultPlan {
    /// No faults, no audit.
    pub fn none() -> Self {
        Self::default()
    }

    /// True iff the plan does nothing.
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }

    /// Called from inside the isolated RHS evaluation of `rule` on
    /// `cycle`; panics or errors if a fault is scheduled here.
    pub fn maybe_fail_rhs(&self, cycle: u64, rule: &str) -> Result<(), EngineError> {
        if let Some(p) = &self.rhs_panic {
            if p.hits(cycle, rule) {
                panic!("injected RHS panic in rule '{rule}' at cycle {cycle}");
            }
        }
        if let Some(p) = &self.rhs_error {
            if p.hits(cycle, rule) {
                return Err(EngineError::RhsEval {
                    rule: rule.to_string(),
                    error: EvalError::DivideByZero,
                });
            }
        }
        Ok(())
    }

    /// If corruption is scheduled for `cycle`, feeds the matcher a
    /// phantom duplicate (id `u64::MAX`) of the lowest-id live WME. The
    /// duplicate shares class and fields with a real WME, so it spawns
    /// spurious instantiations the oracle will not have.
    pub fn maybe_corrupt_matcher(&self, cycle: u64, wm: &WorkingMemory, matcher: &mut dyn Matcher) {
        if self.corrupt_matcher_at != Some(cycle) {
            return;
        }
        let Some(victim) = wm.iter().min_by_key(|w| w.id) else {
            return;
        };
        let phantom = Wme::new(WmeId(u64::MAX), victim.class, victim.fields.clone());
        matcher.add_wme(&phantom);
    }

    /// If auditing is on, recomputes the conflict set from scratch with
    /// the naive oracle and compares against `cs`.
    pub fn audit(
        &self,
        cycle: u64,
        program: &Arc<Program>,
        wm: &WorkingMemory,
        cs: &ConflictSet,
    ) -> Result<(), EngineError> {
        if !self.audit_matcher {
            return Ok(());
        }
        let mut oracle = NaiveMatcher::new(program.clone());
        oracle.seed(wm);
        let want = oracle.conflict_set().sorted_keys();
        let got = cs.sorted_keys();
        if want == got {
            return Ok(());
        }
        let spurious = got.iter().find(|k| !want.contains(k));
        let missing = want.iter().find(|k| !got.contains(k));
        let describe = |k: &parulel_core::InstKey| {
            let ids: Vec<String> = k.wmes.iter().map(|id| id.0.to_string()).collect();
            format!("{}({})", program.rule_name(k.rule), ids.join(","))
        };
        let mut detail = format!(
            "incremental matcher has {} instantiations, oracle has {}",
            got.len(),
            want.len()
        );
        if let Some(k) = spurious {
            detail.push_str(&format!("; spurious: {}", describe(k)));
        }
        if let Some(k) = missing {
            detail.push_str(&format!("; missing: {}", describe(k)));
        }
        Err(EngineError::MatcherCorrupt { cycle, detail })
    }
}

/// Deterministic WAL I/O faults for the server's durability layer.
///
/// Coordinates are 1-based counters, not cycles: `torn_write_at = Some(n)`
/// tears the `n`-th record *appended through one log handle* (only a
/// prefix of its bytes reaches the file, exactly as if the process died
/// mid-`write`); `short_read_at = Some(n)` makes the scanner see only a
/// prefix of the `n`-th record's body on replay (a short read off a
/// damaged disk). Both must surface as a CRC failure that truncates the
/// tail — never as replayed garbage — which is exactly what the
/// durability tests assert.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalFaults {
    /// Tear the n-th appended record (1-based), writing only half its
    /// bytes.
    pub torn_write_at: Option<u64>,
    /// Feed the scanner only half of the n-th record's body (1-based).
    pub short_read_at: Option<u64>,
}

impl WalFaults {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// How many of `len` bytes of append number `append` actually reach
    /// the file.
    pub fn torn_write_len(&self, append: u64, len: usize) -> usize {
        if self.torn_write_at == Some(append) {
            len / 2
        } else {
            len
        }
    }

    /// How many of `len` body bytes of record number `record` the
    /// scanner gets to see.
    pub fn short_read_len(&self, record: u64, len: usize) -> usize {
        if self.short_read_at == Some(record) {
            len / 2
        } else {
            len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_lang::compile;
    use parulel_match::Rete;

    fn setup() -> (Arc<Program>, WorkingMemory) {
        let p = compile(
            "(literalize cell v)
             (p bump (cell ^v 0) --> (modify 1 ^v 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let cell = p.classes.id_of(p.interner.intern("cell")).unwrap();
        wm.insert(cell, vec![parulel_core::Value::Int(0)]);
        (Arc::new(p), wm)
    }

    #[test]
    fn rhs_faults_hit_only_their_coordinates() {
        let plan = FaultPlan {
            rhs_error: Some(FaultPoint::new(3, "bump")),
            ..FaultPlan::none()
        };
        assert!(!plan.is_none());
        assert!(plan.maybe_fail_rhs(2, "bump").is_ok());
        assert!(plan.maybe_fail_rhs(3, "other").is_ok());
        let err = plan.maybe_fail_rhs(3, "bump").unwrap_err();
        assert!(matches!(err, EngineError::RhsEval { .. }));
    }

    #[test]
    fn injected_panic_panics() {
        let plan = FaultPlan {
            rhs_panic: Some(FaultPoint::new(1, "bump")),
            ..FaultPlan::none()
        };
        let caught = std::panic::catch_unwind(|| plan.maybe_fail_rhs(1, "bump"));
        assert!(caught.is_err());
    }

    #[test]
    fn audit_passes_on_healthy_matcher_and_catches_corruption() {
        let (p, wm) = setup();
        let mut m = Rete::new(p.clone());
        m.seed(&wm);
        let plan = FaultPlan {
            corrupt_matcher_at: Some(2),
            audit_matcher: true,
            ..FaultPlan::none()
        };
        assert!(plan.audit(1, &p, &wm, m.conflict_set()).is_ok());

        // Corruption scheduled for cycle 2 only.
        plan.maybe_corrupt_matcher(1, &wm, &mut m);
        assert!(plan.audit(1, &p, &wm, m.conflict_set()).is_ok());
        plan.maybe_corrupt_matcher(2, &wm, &mut m);
        let err = plan.audit(2, &p, &wm, m.conflict_set()).unwrap_err();
        match err {
            EngineError::MatcherCorrupt { cycle, detail } => {
                assert_eq!(cycle, 2);
                assert!(detail.contains("spurious: bump"), "{detail}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn audit_off_never_checks() {
        let (p, wm) = setup();
        let mut m = Rete::new(p.clone());
        // Unseeded matcher diverges from WM, but audit is off.
        assert!(FaultPlan::none().audit(1, &p, &wm, m.conflict_set()).is_ok());
    }
}
