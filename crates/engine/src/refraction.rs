//! Refraction: an instantiation fires at most once while it remains
//! continuously in the conflict set.
//!
//! Without refraction, any rule whose firing does not retract its own
//! support (e.g. a pure `make` rule) would fire forever. OPS5 and PARULEL
//! both refract; the PARULEL twist is that refraction applies to the whole
//! fired *set* each cycle.
//!
//! An entry is dropped as soon as its instantiation leaves the conflict
//! set, so a match whose support is retracted and later re-asserted is a
//! *new* instantiation and may fire again.

use parulel_core::{ConflictSet, FxHashSet, InstKey, Instantiation, RuleId};

/// The set of fired-and-still-present instantiation keys.
#[derive(Clone, Debug, Default)]
pub struct Refraction {
    fired: FxHashSet<InstKey>,
}

impl Refraction {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The eligible (unrefracted) instantiations of `cs`, sorted by key
    /// for deterministic downstream processing.
    pub fn eligible(&self, cs: &ConflictSet) -> Vec<Instantiation> {
        let mut v: Vec<Instantiation> = cs
            .iter()
            .filter(|i| !self.fired.contains(&i.key()))
            .cloned()
            .collect();
        v.sort_by_key(|inst| inst.key());
        v
    }

    /// Records that `insts` fired this cycle.
    pub fn record<'a>(&mut self, insts: impl IntoIterator<Item = &'a Instantiation>) {
        for i in insts {
            self.fired.insert(i.key());
        }
    }

    /// Drops entries whose instantiation has left the conflict set.
    pub fn prune(&mut self, cs: &ConflictSet) {
        self.fired.retain(|k| cs.contains(k));
    }

    /// Re-keys entries for rule `old` under each id in `copies` as well.
    ///
    /// When copy-and-constrain splits a live rule, an instantiation that
    /// fired under the old rule reappears in the conflict set under exactly
    /// one copy's id (the copies partition the original's matches, and
    /// copy-and-constrain changes neither the CEs' order nor which WMEs
    /// match). Cloning the fired key to every copy keeps that instantiation
    /// refracted — without this it would refire after the split. The keys
    /// cloned to the *wrong* copies match nothing and are dropped by the
    /// next [`prune`](Self::prune).
    pub fn expand_rule(&mut self, old: RuleId, copies: &[RuleId]) {
        let expanded: Vec<InstKey> = self
            .fired
            .iter()
            .filter(|k| k.rule == old)
            .flat_map(|k| {
                copies.iter().map(|&c| InstKey {
                    rule: c,
                    wmes: k.wmes.clone(),
                })
            })
            .collect();
        self.fired.extend(expanded);
    }

    /// Iterates the live refraction keys (arbitrary order). Used by
    /// checkpointing to capture the table.
    pub fn keys(&self) -> impl Iterator<Item = &InstKey> {
        self.fired.iter()
    }

    /// Rebuilds a table from previously captured keys (checkpoint
    /// restore).
    pub fn from_keys(keys: impl IntoIterator<Item = InstKey>) -> Self {
        Refraction {
            fired: keys.into_iter().collect(),
        }
    }

    /// Number of live refraction entries.
    pub fn len(&self) -> usize {
        self.fired.len()
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.fired.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{ClassId, RuleId, Value, Wme, WmeId};

    fn inst(rule: u32, ids: &[u64]) -> Instantiation {
        let wmes: Vec<Wme> = ids
            .iter()
            .map(|&i| Wme::new(WmeId(i), ClassId(0), vec![Value::Int(0)]))
            .collect();
        Instantiation::new(RuleId(rule), wmes, vec![])
    }

    #[test]
    fn fired_instantiations_become_ineligible() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[1]));
        cs.insert(inst(0, &[2]));
        let mut r = Refraction::new();
        let e = r.eligible(&cs);
        assert_eq!(e.len(), 2);
        r.record(e.iter().take(1));
        assert_eq!(r.eligible(&cs).len(), 1);
        r.record(r.eligible(&cs).iter());
        assert!(r.eligible(&cs).is_empty());
    }

    #[test]
    fn prune_drops_departed_entries() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[1]));
        let mut r = Refraction::new();
        r.record(r.eligible(&cs).iter());
        assert_eq!(r.len(), 1);
        cs.remove(&inst(0, &[1]).key());
        r.prune(&cs);
        assert!(r.is_empty());
        // Re-entering the conflict set makes it eligible again.
        cs.insert(inst(0, &[1]));
        assert_eq!(r.eligible(&cs).len(), 1);
    }

    #[test]
    fn keys_roundtrip_through_from_keys() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[1]));
        cs.insert(inst(1, &[2]));
        let mut r = Refraction::new();
        r.record(r.eligible(&cs).iter());
        let restored = Refraction::from_keys(r.keys().cloned());
        assert_eq!(restored.len(), 2);
        assert!(restored.eligible(&cs).is_empty());
    }

    #[test]
    fn expand_rule_keeps_split_instantiations_refracted() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[1]));
        cs.insert(inst(0, &[2]));
        cs.insert(inst(1, &[3]));
        let mut r = Refraction::new();
        r.record(r.eligible(&cs).iter());

        // Split rule 0 into copies {0 (in place), 5, 6}: each old match
        // reappears under exactly one of the three ids.
        r.expand_rule(RuleId(0), &[RuleId(5), RuleId(6)]);
        let mut cs2 = ConflictSet::new();
        cs2.insert(inst(0, &[1])); // landed in residue 0
        cs2.insert(inst(6, &[2])); // landed in residue 2
        cs2.insert(inst(1, &[3])); // untouched rule
        assert!(r.eligible(&cs2).is_empty(), "nothing refires post-split");

        // Prune drops the keys cloned to copies that didn't win the match.
        r.prune(&cs2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn eligible_is_sorted_by_key() {
        let mut cs = ConflictSet::new();
        for ids in [[9u64], [2], [5]] {
            cs.insert(inst(0, &ids));
        }
        let e = Refraction::new().eligible(&cs);
        let keys: Vec<_> = e.iter().map(|i| i.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
