//! Copy-and-constrain: the PARULEL-era program transform for match
//! parallelism.
//!
//! Rule-level partitioning (one rule net per worker) cannot help when a
//! single rule dominates match cost. Copy-and-constrain splits such a rule
//! into `k` copies whose first positive CE carries an extra hash-residue
//! test on one of its binding fields: the copies match *disjoint* slices
//! of working memory whose union is exactly the original rule's matches,
//! so a partitioned matcher can spread one hot rule's join work across
//! `k` workers without changing program semantics.
//!
//! Meta-rules that reference the split rule are expanded over the
//! cartesian product of copy choices, preserving redaction semantics
//! (a meta CE on the original rule must be able to bind any copy).

use parulel_core::ir::{FieldCheck, FieldTest, MetaCe, MetaRule, Polarity, Rule};
use parulel_core::{Program, RuleId, Symbol};
use std::fmt;

/// Errors from the transform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CccError {
    /// The named rule does not exist.
    UnknownRule(String),
    /// `k` must be at least 1.
    BadFactor,
    /// The rule's first positive CE has no field to constrain on
    /// (zero-arity class).
    NoSplitField(String),
    /// Rebuilding the transformed program failed — an invariant of the
    /// transform was violated, surfaced as an error instead of a panic.
    Internal(String),
}

impl fmt::Display for CccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CccError::UnknownRule(r) => write!(f, "copy-and-constrain: unknown rule '{r}'"),
            CccError::BadFactor => write!(f, "copy-and-constrain: factor must be >= 1"),
            CccError::NoSplitField(r) => {
                write!(f, "copy-and-constrain: rule '{r}' has no field to split on")
            }
            CccError::Internal(msg) => {
                write!(f, "copy-and-constrain: internal error: {msg}")
            }
        }
    }
}

impl std::error::Error for CccError {}

/// Splits `rule_name` into `k` hash-constrained copies, returning the
/// rewritten program. The split slot is the first slot the first positive
/// CE *binds a variable from* (a field whose values vary, so the hash
/// spreads), falling back to slot 0.
pub fn copy_and_constrain(program: &Program, rule_name: &str, k: u32) -> Result<Program, CccError> {
    if k == 0 {
        return Err(CccError::BadFactor);
    }
    let target_id = program
        .interner
        .get(rule_name)
        .and_then(|s| program.rule_by_name(s))
        .ok_or_else(|| CccError::UnknownRule(rule_name.to_string()))?;

    let mut out = Program::new(program.interner.clone(), program.classes.clone());
    // Map original RuleId -> copies' names (for meta expansion).
    let mut copies_of: Vec<Vec<Symbol>> = Vec::with_capacity(program.rules().len());

    for rule in program.rules() {
        if rule.id == target_id {
            let slot = split_slot(program, rule)
                .ok_or_else(|| CccError::NoSplitField(rule_name.to_string()))?;
            let first_pos = rule
                .positive_ce_indices()
                .next()
                .ok_or_else(|| CccError::NoSplitField(rule_name.to_string()))?;
            let mut names = Vec::with_capacity(k as usize);
            for residue in 0..k {
                let mut copy = rule.clone();
                let name = program.interner.intern(&format!("{rule_name}~{residue}"));
                copy.name = name;
                copy.ces[first_pos].tests.push(FieldTest {
                    slot,
                    check: FieldCheck::HashMod {
                        divisor: k,
                        residue,
                    },
                });
                out.add_rule(copy)
                    .map_err(|e| CccError::Internal(e.to_string()))?;
                names.push(name);
            }
            copies_of.push(names);
        } else {
            copies_of.push(vec![rule.name]);
            out.add_rule(rule.clone())
                .map_err(|e| CccError::Internal(e.to_string()))?;
        }
    }

    // Meta-rules: expand every combination of copy choices for CEs that
    // reference the split rule.
    for meta in program.metas() {
        let choice_lists: Vec<&[Symbol]> = meta
            .ces
            .iter()
            .map(|ce| copies_of[ce.rule.index()].as_slice())
            .collect();
        for (combo_idx, combo) in cartesian(&choice_lists).into_iter().enumerate() {
            let ces: Vec<MetaCe> = meta
                .ces
                .iter()
                .zip(&combo)
                .map(|(ce, name)| {
                    let rule = out.rule_by_name(**name).ok_or_else(|| {
                        CccError::Internal(format!(
                            "copy '{}' missing from rebuilt program",
                            out.interner.resolve(**name)
                        ))
                    })?;
                    Ok(MetaCe {
                        rule,
                        pats: ce.pats.clone(),
                    })
                })
                .collect::<Result<_, CccError>>()?;
            let name = if combo.len() == meta.ces.len() && choice_lists.iter().all(|l| l.len() == 1)
            {
                meta.name
            } else {
                program.interner.intern(&format!(
                    "{}~{combo_idx}",
                    program.interner.resolve(meta.name)
                ))
            };
            let expanded = MetaRule {
                id: meta.id,
                name,
                ces,
                tests: meta.tests.clone(),
                actions: meta.actions.clone(),
                num_vars: meta.num_vars,
            };
            out.add_meta(expanded)
                .map_err(|e| CccError::Internal(e.to_string()))?;
        }
    }
    Ok(out)
}

/// [`copy_and_constrain`] with **stable rule ids**: the residue-0 copy
/// replaces the target *in place* (keeping its `RuleId` and, therefore,
/// every later rule's id), and the remaining `k - 1` copies are appended
/// at the end of the program. Returns the rewritten program plus the
/// appended copies' ids.
///
/// This is the variant the *running* engine uses for metrics-driven
/// splitting: because no pre-existing rule id moves, matcher nets for
/// untouched rules, refraction keys, and per-rule metrics all stay valid —
/// only the split rule (and the new copies) need rebuilding.
pub fn copy_and_constrain_appending(
    program: &Program,
    rule_name: &str,
    k: u32,
) -> Result<(Program, Vec<RuleId>), CccError> {
    if k == 0 {
        return Err(CccError::BadFactor);
    }
    let target_id = program
        .interner
        .get(rule_name)
        .and_then(|s| program.rule_by_name(s))
        .ok_or_else(|| CccError::UnknownRule(rule_name.to_string()))?;
    let target = program.rule(target_id);
    let slot = split_slot(program, target)
        .ok_or_else(|| CccError::NoSplitField(rule_name.to_string()))?;
    let first_pos = target
        .positive_ce_indices()
        .next()
        .ok_or_else(|| CccError::NoSplitField(rule_name.to_string()))?;

    let make_copy = |residue: u32| {
        let mut copy = target.clone();
        copy.name = program
            .interner
            .intern(&format!("{rule_name}~{residue}"));
        copy.ces[first_pos].tests.push(FieldTest {
            slot,
            check: FieldCheck::HashMod { divisor: k, residue },
        });
        copy
    };

    let mut out = Program::new(program.interner.clone(), program.classes.clone());
    let mut copies_of: Vec<Vec<Symbol>> = Vec::with_capacity(program.rules().len());
    for rule in program.rules() {
        if rule.id == target_id {
            let copy = make_copy(0);
            copies_of.push(vec![copy.name]);
            out.add_rule(copy)
                .map_err(|e| CccError::Internal(e.to_string()))?;
        } else {
            copies_of.push(vec![rule.name]);
            out.add_rule(rule.clone())
                .map_err(|e| CccError::Internal(e.to_string()))?;
        }
    }
    let mut appended = Vec::with_capacity(k as usize - 1);
    for residue in 1..k {
        let copy = make_copy(residue);
        copies_of[target_id.index()].push(copy.name);
        appended.push(
            out.add_rule(copy)
                .map_err(|e| CccError::Internal(e.to_string()))?,
        );
    }

    for meta in program.metas() {
        let choice_lists: Vec<&[Symbol]> = meta
            .ces
            .iter()
            .map(|ce| copies_of[ce.rule.index()].as_slice())
            .collect();
        for (combo_idx, combo) in cartesian(&choice_lists).into_iter().enumerate() {
            let ces: Vec<MetaCe> = meta
                .ces
                .iter()
                .zip(&combo)
                .map(|(ce, name)| {
                    let rule = out.rule_by_name(**name).ok_or_else(|| {
                        CccError::Internal(format!(
                            "copy '{}' missing from rebuilt program",
                            out.interner.resolve(**name)
                        ))
                    })?;
                    Ok(MetaCe {
                        rule,
                        pats: ce.pats.clone(),
                    })
                })
                .collect::<Result<_, CccError>>()?;
            let name = if choice_lists.iter().all(|l| l.len() == 1) {
                meta.name
            } else {
                program.interner.intern(&format!(
                    "{}~{combo_idx}",
                    program.interner.resolve(meta.name)
                ))
            };
            let expanded = MetaRule {
                id: meta.id,
                name,
                ces,
                tests: meta.tests.clone(),
                actions: meta.actions.clone(),
                num_vars: meta.num_vars,
            };
            out.add_meta(expanded)
                .map_err(|e| CccError::Internal(e.to_string()))?;
        }
    }
    Ok((out, appended))
}

/// Picks the slot to constrain: the first `Bind` in the first positive CE,
/// else slot 0 if the class has any fields.
fn split_slot(program: &Program, rule: &Rule) -> Option<u16> {
    let first_pos = rule
        .ces
        .iter()
        .find(|ce| ce.polarity == Polarity::Positive)?;
    for t in &first_pos.tests {
        if matches!(t.check, FieldCheck::Bind(_)) {
            return Some(t.slot);
        }
    }
    (program.classes.decl(first_pos.class).arity() > 0).then_some(0)
}

fn cartesian<'a>(lists: &[&'a [Symbol]]) -> Vec<Vec<&'a Symbol>> {
    let mut combos: Vec<Vec<&Symbol>> = vec![Vec::new()];
    for list in lists {
        let mut next = Vec::with_capacity(combos.len() * list.len());
        for combo in &combos {
            for item in *list {
                let mut c = combo.clone();
                c.push(item);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineOptions, ParallelEngine};
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    const CLOSURE: &str = "
        (literalize edge from to)
        (literalize reach from to)
        (p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>)
         --> (make reach ^from <a> ^to <b>))
        (p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>)
                 -(reach ^from <a> ^to <c>)
         --> (make reach ^from <a> ^to <c>))";

    fn closure_wm(p: &Program) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&p.classes);
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 4), (4, 5)] {
            wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
        }
        wm
    }

    #[test]
    fn split_preserves_semantics() {
        let p = compile(CLOSURE).unwrap();
        let mut base = ParallelEngine::new(&p, closure_wm(&p), EngineOptions::default());
        base.run().unwrap();
        let want = base.wm().canonical_facts();

        for k in [1, 2, 4] {
            let split = copy_and_constrain(&p, "close", k).unwrap();
            assert_eq!(split.rules().len(), 1 + k as usize);
            let mut e = ParallelEngine::new(&split, closure_wm(&split), EngineOptions::default());
            e.run().unwrap();
            assert_eq!(e.wm().canonical_facts(), want, "k={k}");
        }
    }

    #[test]
    fn copies_partition_matches_disjointly() {
        let p = compile(CLOSURE).unwrap();
        let split = copy_and_constrain(&p, "seed", 3).unwrap();
        // Run only one cycle: the seeds fired must equal the edge count,
        // i.e. no edge is matched by two copies and none is dropped.
        let mut e = ParallelEngine::new(&split, closure_wm(&split), EngineOptions::default());
        e.step().unwrap();
        let reach = split.classes.id_of(split.interner.intern("reach")).unwrap();
        assert_eq!(e.wm().iter_class(reach).count(), 5);
    }

    #[test]
    fn meta_rules_expand_over_copies() {
        let src = "
            (literalize req id prio)
            (p serve (req ^id <i> ^prio <p>) --> (remove 1))
            (mp keep-best
              (inst serve (req ^prio <p1>))
              (inst serve (req ^prio <p2>))
              (test (> <p1> <p2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let split = copy_and_constrain(&p, "serve", 2).unwrap();
        assert_eq!(split.rules().len(), 2);
        assert_eq!(split.metas().len(), 4, "2 CEs x 2 copies = 4 expansions");

        // Semantics: still exactly one survivor (the min prio) per cycle.
        let mut wm = WorkingMemory::new(&split.classes);
        let req = split.classes.id_of(split.interner.intern("req")).unwrap();
        for (i, prio) in [(1, 30), (2, 10), (3, 20)] {
            wm.insert(req, vec![Value::Int(i), Value::Int(prio)]);
        }
        let mut e = ParallelEngine::new(&split, wm, EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 3, "min-prio serialization survives the split");
    }

    #[test]
    fn appending_variant_keeps_ids_stable_and_semantics() {
        let p = compile(CLOSURE).unwrap();
        let seed_id = p.rule_by_name(p.interner.get("seed").unwrap()).unwrap();
        let close_id = p.rule_by_name(p.interner.get("close").unwrap()).unwrap();

        let (split, appended) = copy_and_constrain_appending(&p, "seed", 3).unwrap();
        assert_eq!(split.rules().len(), 4);
        assert_eq!(appended.len(), 2);
        // Copy 0 reuses the target's id; `close` keeps its id; the extra
        // copies land after every pre-existing rule.
        assert_eq!(&*split.interner.resolve(split.rule(seed_id).name), "seed~0");
        assert_eq!(split.rule(close_id).name, p.rule(close_id).name);
        for (i, id) in appended.iter().enumerate() {
            assert_eq!(id.index(), p.rules().len() + i);
            assert_eq!(
                &*split.interner.resolve(split.rule(*id).name),
                format!("seed~{}", i + 1)
            );
        }

        // Same fixpoint as the id-shifting variant.
        let mut base = ParallelEngine::new(&p, closure_wm(&p), EngineOptions::default());
        base.run().unwrap();
        let mut e = ParallelEngine::new(&split, closure_wm(&split), EngineOptions::default());
        e.run().unwrap();
        assert_eq!(e.wm().canonical_facts(), base.wm().canonical_facts());
    }

    #[test]
    fn appending_variant_expands_metas() {
        let src = "
            (literalize req id prio)
            (p serve (req ^id <i> ^prio <p>) --> (remove 1))
            (mp keep-best
              (inst serve (req ^prio <p1>))
              (inst serve (req ^prio <p2>))
              (test (> <p1> <p2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let (split, appended) = copy_and_constrain_appending(&p, "serve", 2).unwrap();
        assert_eq!(split.rules().len(), 2);
        assert_eq!(appended.len(), 1);
        assert_eq!(split.metas().len(), 4, "2 CEs x 2 copies = 4 expansions");
    }

    #[test]
    fn auto_ccc_splits_preserving_semantics_and_determinism() {
        use crate::{AutoCcc, MatcherKind};
        let p = compile(CLOSURE).unwrap();
        let mut base = ParallelEngine::new(&p, closure_wm(&p), EngineOptions::default());
        base.run().unwrap();
        let want = base.wm().canonical_facts();

        let run = || {
            let opts = EngineOptions {
                matcher: MatcherKind::PartitionedRete(2),
                auto_ccc: Some(AutoCcc {
                    after_cycles: 1,
                    min_imbalance: 1.0, // always split: pins the mechanism, not the heuristic
                    factor: 2,
                }),
                ..EngineOptions::default()
            };
            let mut e = ParallelEngine::new(&p, closure_wm(&p), opts);
            let out = e.run().unwrap();
            (
                out.cycles,
                out.firings,
                e.log().to_vec(),
                e.wm().canonical_facts(),
            )
        };
        let a = run();
        assert_eq!(a.3, want, "split run reaches the same fixpoint");
        assert!(
            a.2.iter().any(|l| l.starts_with("auto-ccc: split rule")),
            "split must be logged: {:?}",
            a.2
        );
        let b = run();
        assert_eq!(a, b, "auto-ccc runs are bit-identically reproducible");
    }

    #[test]
    fn post_split_checkpoint_resumes_bit_identically() {
        use crate::{AutoCcc, MatcherKind, RunStats, Snapshot};
        // No negative CEs: fired instantiations stay in the conflict set,
        // so the refraction table keeps their keys — after the split those
        // keys name the `~k` copies, the exact binding that used to fail
        // on resume with `UnknownRule`.
        let src = "
            (literalize edge from to)
            (literalize reach from to)
            (p mark (edge ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))
            (p close (reach ^from <a> ^to <b>) (reach ^from <b> ^to <c>)
             --> (make reach ^from <a> ^to <c>))";
        let p = compile(src).unwrap();
        let opts = || EngineOptions {
            matcher: MatcherKind::PartitionedRete(2),
            auto_ccc: Some(AutoCcc {
                after_cycles: 1,
                min_imbalance: 1.0,
                factor: 2,
            }),
            ..EngineOptions::default()
        };
        // The uninterrupted reference run.
        let mut full = ParallelEngine::new(&p, closure_wm(&p), opts());
        full.run().unwrap();

        // Stop mid-run, after the split has been applied.
        let mut part = ParallelEngine::new(&p, closure_wm(&p), opts());
        for _ in 0..3 {
            part.step().unwrap();
        }
        assert!(
            part.log().iter().any(|l| l.starts_with("auto-ccc: split rule")),
            "split must have happened before the capture: {:?}",
            part.log()
        );
        let snap = Snapshot::from_bytes(&part.checkpoint().to_bytes()).unwrap();
        assert_eq!(snap.splits.len(), 1, "one split recorded: {:?}", snap.splits);
        assert!(
            snap.refraction.iter().any(|k| k.rule.contains('~')),
            "post-split refraction names the copies: {:?}",
            snap.refraction.iter().map(|k| &k.rule).collect::<Vec<_>>()
        );

        // Resume against the ORIGINAL program: the recorded split is
        // re-applied before the `name~k` refraction keys are bound, and
        // the continuation must not split again.
        let mut resumed = ParallelEngine::resume(&p, &snap, opts()).unwrap();
        assert_eq!(resumed.program().rules().len(), 3, "split re-applied");
        resumed.run().unwrap();
        assert!(
            resumed.log().iter().filter(|l| l.starts_with("auto-ccc: split rule")).count() == 1,
            "the captured split is the only one: {:?}",
            resumed.log()
        );
        assert_eq!(resumed.wm().canonical_facts(), full.wm().canonical_facts());
        let counters = |s: &RunStats| {
            (
                s.cycles,
                s.firings,
                s.adds,
                s.removes,
                s.peak_eligible,
                s.total_eligible,
            )
        };
        // Counters are bit-identical; phase times are wall-clock and are
        // deliberately not compared.
        assert_eq!(counters(resumed.stats()), counters(full.stats()));
        assert_eq!(resumed.log(), full.log());
        // A re-checkpoint of the continuation still records the split.
        assert_eq!(resumed.checkpoint().splits, snap.splits);

        // Restoring onto an engine whose program is ALREADY split (the
        // serve rewind path) skips the re-application instead of
        // double-splitting.
        let mut rewound = ParallelEngine::resume(&p, &snap, opts()).unwrap();
        rewound.restore(&snap).unwrap();
        assert_eq!(rewound.program().rules().len(), 3);
        rewound.run().unwrap();
        assert_eq!(rewound.wm().canonical_facts(), full.wm().canonical_facts());
    }

    #[test]
    fn auto_ccc_is_inert_for_monolithic_matchers() {
        use crate::AutoCcc;
        let p = compile(CLOSURE).unwrap();
        let opts = EngineOptions {
            auto_ccc: Some(AutoCcc {
                after_cycles: 0,
                min_imbalance: 1.0,
                factor: 4,
            }),
            ..EngineOptions::default()
        };
        let mut e = ParallelEngine::new(&p, closure_wm(&p), opts);
        e.run().unwrap();
        assert!(e.log().iter().all(|l| !l.starts_with("auto-ccc")));
        assert_eq!(e.program().rules().len(), 2, "program untouched");
    }

    #[test]
    fn errors() {
        let p = compile(CLOSURE).unwrap();
        assert_eq!(
            copy_and_constrain(&p, "ghost", 2).unwrap_err(),
            CccError::UnknownRule("ghost".into())
        );
        assert_eq!(
            copy_and_constrain(&p, "close", 0).unwrap_err(),
            CccError::BadFactor
        );
    }
}
