//! Run statistics: everything the experiment harness reports.

use std::time::Duration;

/// Statistics for one match–redact–fire cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Conflict-set size before refraction.
    pub conflict_set: usize,
    /// Eligible (unrefracted) instantiations.
    pub eligible: usize,
    /// Instantiations redacted by meta-rules.
    pub redacted_meta: usize,
    /// Instantiations redacted by the interference guard.
    pub redacted_guard: usize,
    /// Instantiations fired this cycle.
    pub fired: usize,
    /// Meta-evaluation rounds to fixpoint.
    pub meta_rounds: usize,
    /// WMEs asserted by the merged delta.
    pub adds: usize,
    /// WMEs retracted by the merged delta.
    pub removes: usize,
    /// Time matching: conflict-set maintenance (the incremental network
    /// update after the delta) plus refraction filtering.
    pub match_time: Duration,
    /// Time in the redact (meta + guard) phase.
    pub redact_time: Duration,
    /// Time in the fire (RHS evaluation + merge) phase.
    pub fire_time: Duration,
    /// Time applying the delta to working memory and pruning refraction.
    pub apply_time: Duration,
}

/// Aggregated statistics for a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Total rule firings.
    pub firings: u64,
    /// Total instantiations redacted by meta-rules.
    pub redacted_meta: u64,
    /// Total instantiations redacted by the guard.
    pub redacted_guard: u64,
    /// Total meta rounds.
    pub meta_rounds: u64,
    /// Largest eligible set seen in one cycle.
    pub peak_eligible: usize,
    /// Sum of eligible-set sizes (for the mean).
    pub total_eligible: u64,
    /// Total WME assertions.
    pub adds: u64,
    /// Total WME retractions.
    pub removes: u64,
    /// Cumulative phase times.
    pub match_time: Duration,
    /// Cumulative redact time.
    pub redact_time: Duration,
    /// Cumulative fire time.
    pub fire_time: Duration,
    /// Cumulative apply time.
    pub apply_time: Duration,
}

impl RunStats {
    /// Folds one cycle into the aggregate.
    pub fn absorb(&mut self, c: &CycleStats) {
        self.cycles += 1;
        self.firings += c.fired as u64;
        self.redacted_meta += c.redacted_meta as u64;
        self.redacted_guard += c.redacted_guard as u64;
        self.meta_rounds += c.meta_rounds as u64;
        self.peak_eligible = self.peak_eligible.max(c.eligible);
        self.total_eligible += c.eligible as u64;
        self.adds += c.adds as u64;
        self.removes += c.removes as u64;
        self.match_time += c.match_time;
        self.redact_time += c.redact_time;
        self.fire_time += c.fire_time;
        self.apply_time += c.apply_time;
    }

    /// Mean firings per cycle — the "many-firing factor" PARULEL's C1
    /// claim is about.
    pub fn firings_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.firings as f64 / self.cycles as f64
        }
    }

    /// Total time across the instrumented phases.
    pub fn total_time(&self) -> Duration {
        self.match_time + self.redact_time + self.fire_time + self.apply_time
    }
}

/// A human-readable record of one cycle, collected when
/// `EngineOptions::trace` is on. Rule names are resolved strings so the
/// trace survives the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleTrace {
    /// 1-based cycle number.
    pub cycle: u64,
    /// Eligible (unrefracted) instantiations at cycle start.
    pub eligible: usize,
    /// Redacted by meta-rules.
    pub redacted_meta: usize,
    /// Redacted by the interference guard.
    pub redacted_guard: usize,
    /// `(rule name, firings)` for every rule that fired, sorted by name.
    pub fired_rules: Vec<(String, usize)>,
    /// WMEs asserted by the cycle's merged delta.
    pub adds: usize,
    /// WMEs retracted by the cycle's merged delta.
    pub removes: usize,
}

impl std::fmt::Display for CycleTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {:>4}: eligible {:>4}, redacted {}+{}, fired",
            self.cycle, self.eligible, self.redacted_meta, self.redacted_guard
        )?;
        for (rule, n) in &self.fired_rules {
            write!(f, " {rule}x{n}")?;
        }
        write!(f, "  (+{} -{})", self.adds, self.removes)
    }
}

/// How a run ended, plus its headline numbers.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Cycles executed.
    pub cycles: u64,
    /// Total firings.
    pub firings: u64,
    /// A `halt` action stopped the run.
    pub halted: bool,
    /// The conflict set drained (normal termination).
    pub quiescent: bool,
    /// The cycle limit stopped the run.
    pub hit_cycle_limit: bool,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl Outcome {
    /// The run's terminal status tag, as reported in trace events and
    /// the serve protocol: `halted` wins over `cycle-limit` wins over
    /// `quiescent`.
    pub fn status(&self) -> &'static str {
        if self.halted {
            "halted"
        } else if self.hit_cycle_limit {
            "cycle-limit"
        } else {
            "quiescent"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut r = RunStats::default();
        r.absorb(&CycleStats {
            eligible: 5,
            fired: 3,
            redacted_meta: 2,
            adds: 4,
            removes: 1,
            meta_rounds: 2,
            ..Default::default()
        });
        r.absorb(&CycleStats {
            eligible: 9,
            fired: 9,
            ..Default::default()
        });
        assert_eq!(r.cycles, 2);
        assert_eq!(r.firings, 12);
        assert_eq!(r.peak_eligible, 9);
        assert_eq!(r.total_eligible, 14);
        assert_eq!(r.redacted_meta, 2);
        assert!((r.firings_per_cycle() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        assert_eq!(RunStats::default().firings_per_cycle(), 0.0);
    }
}
