//! Checkpoint/resume: a versioned, self-contained capture of engine
//! state.
//!
//! A [`Snapshot`] holds everything [`crate::ParallelEngine`] needs to
//! continue a run exactly where it stopped: the working memory (with the
//! original WME ids and the id counter), the refraction table, the cycle
//! counter and aggregate statistics, and the collected log/traces. The
//! matcher is deliberately *not* captured — every matcher's conflict set
//! is a pure function of working memory, so resume reseeds a fresh
//! matcher from the restored WM. That keeps snapshots small, matcher-
//! agnostic (checkpoint under RETE, resume under TREAT), and immune to
//! matcher-internal representation changes.
//!
//! Symbols, class names, and rule names are stored as *resolved strings*,
//! not interner ids, so a snapshot survives recompiling the program (ids
//! are assigned in parse order and are not stable across edits). Resume
//! re-binds the strings against the target program and fails with a
//! structured [`SnapshotError`] if a class or rule no longer exists.
//!
//! The byte format is a little-endian tagged binary with a magic header
//! and an explicit version ([`SNAPSHOT_VERSION`]); decoding rejects
//! foreign or future files instead of misreading them.

use crate::stats::{CycleTrace, RunStats};
use std::fmt;
use std::time::Duration;

/// Current snapshot wire-format version.
///
/// * v1 — the original format (PR 1): no policy tag.
/// * v2 — adds the firing-policy tag right after the version field.
///   v1 files still decode; the policy migrates to `"fire-all"`, the
///   only policy that could have produced them.
/// * v3 — appends the applied copy-and-constrain splits at the end of
///   the stream, so a checkpoint taken after a metrics-driven split
///   round-trips: resume re-applies the transform and the `name~k`
///   refraction keys bind. v1/v2 files decode with no splits (none
///   could have been recorded).
/// * v4 — appends the evaluation-mode tag and the content-addressed
///   rule store (rule name → canonical-bytecode content hash) at the
///   very end. Informational on resume — the captured state is
///   mode-agnostic, and resume recompiles the target program — but it
///   lets tools detect which rules changed between a capture and the
///   program resuming it. v1–v3 files decode as `"tree"` (the only
///   evaluator that existed) with an empty store.
pub const SNAPSHOT_VERSION: u32 = 4;

/// The 4-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PLSN";

/// A field value with symbols resolved to strings.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapValue {
    /// A symbolic atom, resolved.
    Sym(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
}

/// One captured WME.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapWme {
    /// The original WME id (ids must survive resume so refraction keys
    /// and future id assignment stay identical).
    pub id: u64,
    /// Class name, resolved.
    pub class: String,
    /// Field values.
    pub fields: Vec<SnapValue>,
}

/// One captured refraction entry.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapKey {
    /// Rule name, resolved.
    pub rule: String,
    /// Ids of the matched WMEs, in condition order.
    pub wmes: Vec<u64>,
}

/// A complete, self-contained capture of engine state at a cycle
/// boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Tag of the [`crate::FiringPolicy`] that produced the capture
    /// (`"fire-all"`, `"select-one-lex"`, `"select-one-mea"`). Purely
    /// informational on resume — the captured state is policy-agnostic,
    /// so a continuation may run any policy — but lets tools and the
    /// CLI report a policy switch. v1 snapshots migrate to `"fire-all"`.
    pub policy: String,
    /// Cycles executed when the snapshot was taken.
    pub cycle: u64,
    /// A `halt` action had fired.
    pub halted: bool,
    /// The working memory's id counter.
    pub next_wme_id: u64,
    /// All live WMEs, sorted by id.
    pub wmes: Vec<SnapWme>,
    /// The refraction table, sorted.
    pub refraction: Vec<SnapKey>,
    /// Aggregate run statistics.
    pub stats: RunStats,
    /// Collected `write` output.
    pub log: Vec<String>,
    /// Collected cycle traces.
    pub traces: Vec<CycleTrace>,
    /// Copy-and-constrain splits applied before the capture, in
    /// application order: `(original rule name, factor)`. Resume replays
    /// the transform against the target program so the split copies (and
    /// the `name~k` refraction keys above) exist again. Empty for runs
    /// that never split (and for v1/v2 files).
    pub splits: Vec<(String, u32)>,
    /// Evaluation mode that produced the capture (`"tree"` or
    /// `"bytecode"`). Informational: the captured state is identical in
    /// both modes (the differential suite proves it), so a continuation
    /// may run either. v1–v3 files migrate to `"tree"`.
    pub eval: String,
    /// The content-addressed rule store at capture time: `(rule name,
    /// canonical-bytecode content hash)`, sorted by name. Lets tools
    /// diff a capture against the program resuming it without either
    /// source text. Empty for v1–v3 files.
    pub rule_hashes: Vec<(String, u64)>,
}

/// Why a snapshot failed to decode or re-bind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The data ended mid-field.
    Truncated,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Structurally invalid data (bad tag, trailing bytes, arity
    /// mismatch…).
    Malformed(&'static str),
    /// Resume target program has no class with this name.
    UnknownClass(String),
    /// Resume target program has no rule with this name.
    UnknownRule(String),
    /// The captured working memory failed validation on restore.
    BadWm(String),
    /// Re-applying a recorded copy-and-constrain split failed on resume
    /// (e.g. the target program no longer defines the split rule).
    SplitFailed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads 1..={SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::UnknownClass(c) => {
                write!(f, "snapshot references unknown class '{c}'")
            }
            SnapshotError::UnknownRule(r) => write!(f, "snapshot references unknown rule '{r}'"),
            SnapshotError::BadWm(why) => write!(f, "snapshot working memory invalid: {why}"),
            SnapshotError::SplitFailed(why) => {
                write!(f, "snapshot split re-application failed: {why}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        e.u32(SNAPSHOT_VERSION);
        e.str(&self.policy);
        e.u64(self.cycle);
        e.bool(self.halted);
        e.u64(self.next_wme_id);
        e.u64(self.wmes.len() as u64);
        for w in &self.wmes {
            e.u64(w.id);
            e.str(&w.class);
            e.u32(w.fields.len() as u32);
            for v in &w.fields {
                match v {
                    SnapValue::Sym(s) => {
                        e.u8(0);
                        e.str(s);
                    }
                    SnapValue::Int(i) => {
                        e.u8(1);
                        e.u64(*i as u64);
                    }
                    SnapValue::Float(x) => {
                        e.u8(2);
                        e.u64(x.to_bits());
                    }
                }
            }
        }
        e.u64(self.refraction.len() as u64);
        for k in &self.refraction {
            e.str(&k.rule);
            e.u32(k.wmes.len() as u32);
            for id in &k.wmes {
                e.u64(*id);
            }
        }
        let s = &self.stats;
        for n in [
            s.cycles,
            s.firings,
            s.redacted_meta,
            s.redacted_guard,
            s.meta_rounds,
            s.peak_eligible as u64,
            s.total_eligible,
            s.adds,
            s.removes,
        ] {
            e.u64(n);
        }
        for d in [s.match_time, s.redact_time, s.fire_time, s.apply_time] {
            e.duration(d);
        }
        e.u64(self.log.len() as u64);
        for line in &self.log {
            e.str(line);
        }
        e.u64(self.traces.len() as u64);
        for t in &self.traces {
            e.u64(t.cycle);
            for n in [t.eligible, t.redacted_meta, t.redacted_guard, t.adds, t.removes] {
                e.u64(n as u64);
            }
            e.u32(t.fired_rules.len() as u32);
            for (rule, count) in &t.fired_rules {
                e.str(rule);
                e.u64(*count as u64);
            }
        }
        // v3: applied splits; v4: eval mode + rule store. Strictly
        // appended so older segments keep their offsets.
        e.u64(self.splits.len() as u64);
        for (name, k) in &self.splits {
            e.str(name);
            e.u32(*k);
        }
        e.str(&self.eval);
        e.u64(self.rule_hashes.len() as u64);
        for (name, h) in &self.rule_hashes {
            e.str(name);
            e.u64(*h);
        }
        e.buf
    }

    /// Decodes the versioned binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut d = Dec::new(bytes);
        if d.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32()?;
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        // v1 predates firing policies; only fire-all existed.
        let policy = if version >= 2 { d.str()? } else { "fire-all".to_string() };
        let cycle = d.u64()?;
        let halted = d.bool()?;
        let next_wme_id = d.u64()?;
        let n_wmes = d.len()?;
        let mut wmes = Vec::with_capacity(n_wmes);
        for _ in 0..n_wmes {
            let id = d.u64()?;
            let class = d.str()?;
            let n_fields = d.u32()? as usize;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                fields.push(match d.u8()? {
                    0 => SnapValue::Sym(d.str()?),
                    1 => SnapValue::Int(d.u64()? as i64),
                    2 => SnapValue::Float(f64::from_bits(d.u64()?)),
                    _ => return Err(SnapshotError::Malformed("unknown value tag")),
                });
            }
            wmes.push(SnapWme { id, class, fields });
        }
        let n_keys = d.len()?;
        let mut refraction = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let rule = d.str()?;
            let n = d.u32()? as usize;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(d.u64()?);
            }
            refraction.push(SnapKey { rule, wmes: ids });
        }
        let stats = RunStats {
            cycles: d.u64()?,
            firings: d.u64()?,
            redacted_meta: d.u64()?,
            redacted_guard: d.u64()?,
            meta_rounds: d.u64()?,
            peak_eligible: d.u64()? as usize,
            total_eligible: d.u64()?,
            adds: d.u64()?,
            removes: d.u64()?,
            match_time: d.duration()?,
            redact_time: d.duration()?,
            fire_time: d.duration()?,
            apply_time: d.duration()?,
        };
        let n_log = d.len()?;
        let mut log = Vec::with_capacity(n_log);
        for _ in 0..n_log {
            log.push(d.str()?);
        }
        let n_traces = d.len()?;
        let mut traces = Vec::with_capacity(n_traces);
        for _ in 0..n_traces {
            let cycle = d.u64()?;
            let eligible = d.u64()? as usize;
            let redacted_meta = d.u64()? as usize;
            let redacted_guard = d.u64()? as usize;
            let adds = d.u64()? as usize;
            let removes = d.u64()? as usize;
            let n_fired = d.u32()? as usize;
            let mut fired_rules = Vec::with_capacity(n_fired);
            for _ in 0..n_fired {
                let rule = d.str()?;
                fired_rules.push((rule, d.u64()? as usize));
            }
            traces.push(CycleTrace {
                cycle,
                eligible,
                redacted_meta,
                redacted_guard,
                fired_rules,
                adds,
                removes,
            });
        }
        // v1/v2 predate recorded splits; none could have been applied.
        let mut splits = Vec::new();
        if version >= 3 {
            let n_splits = d.len()?;
            for _ in 0..n_splits {
                let name = d.str()?;
                splits.push((name, d.u32()?));
            }
        }
        // v1–v3 predate the bytecode evaluator and the rule store.
        let mut eval = String::from("tree");
        let mut rule_hashes = Vec::new();
        if version >= 4 {
            eval = d.str()?;
            let n = d.len()?;
            for _ in 0..n {
                let name = d.str()?;
                rule_hashes.push((name, d.u64()?));
            }
        }
        if !d.done() {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(Snapshot {
            policy,
            cycle,
            halted,
            next_wme_id,
            wmes,
            refraction,
            stats,
            log,
            traces,
            splits,
            eval,
            rule_hashes,
        })
    }
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn duration(&mut self, d: Duration) {
        self.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bad bool")),
        }
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn duration(&mut self) -> Result<Duration, SnapshotError> {
        Ok(Duration::from_nanos(self.u64()?))
    }
    /// A u64 count, sanity-capped against the remaining input so a
    /// corrupt length cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8)
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            policy: "select-one-mea".into(),
            cycle: 42,
            halted: false,
            next_wme_id: 17,
            wmes: vec![
                SnapWme {
                    id: 3,
                    class: "cell".into(),
                    fields: vec![
                        SnapValue::Int(-5),
                        SnapValue::Sym("red".into()),
                        SnapValue::Float(2.5),
                    ],
                },
                SnapWme {
                    id: 16,
                    class: "cell".into(),
                    fields: vec![SnapValue::Int(9)],
                },
            ],
            refraction: vec![SnapKey {
                rule: "bump".into(),
                wmes: vec![3, 16],
            }],
            stats: RunStats {
                cycles: 42,
                firings: 99,
                peak_eligible: 7,
                match_time: Duration::from_micros(1234),
                ..Default::default()
            },
            log: vec!["saw 10".into(), "unicode: héllo".into()],
            traces: vec![CycleTrace {
                cycle: 1,
                eligible: 4,
                redacted_meta: 1,
                redacted_guard: 0,
                fired_rules: vec![("bump".into(), 3)],
                adds: 3,
                removes: 2,
            }],
            splits: vec![("bump".into(), 2)],
            eval: "bytecode".into(),
            rule_hashes: vec![("bump".into(), 0x00c0_ffee_dead_beef)],
        }
    }

    /// The byte length of `snap`'s trailing splits segment (v3).
    fn splits_tail_len(snap: &Snapshot) -> usize {
        8 + snap.splits.iter().map(|(n, _)| 4 + n.len() + 4).sum::<usize>()
    }

    /// The byte length of `snap`'s trailing eval + rule-store segment (v4).
    fn eval_tail_len(snap: &Snapshot) -> usize {
        4 + snap.eval.len()
            + 8
            + snap.rule_hashes.iter().map(|(n, _)| 4 + n.len() + 8).sum::<usize>()
    }

    #[test]
    fn roundtrip_is_identity() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Encoding is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample().to_bytes();
        assert_eq!(
            Snapshot::from_bytes(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
        bytes[4] = 0xFF; // version field
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            Snapshot::from_bytes(&padded).unwrap_err(),
            SnapshotError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        // A snapshot with the WME count field patched to u64::MAX must
        // fail cleanly, not try to reserve 2^64 entries.
        let mut bytes = sample().to_bytes();
        // magic, version, policy (len-prefixed), cycle, halted, next_id
        let count_at = 4 + 4 + (4 + sample().policy.len()) + 8 + 1 + 8;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn v1_snapshots_decode_with_fire_all_policy() {
        // Rebuild the exact v1 byte stream from a v3 one: drop the
        // policy segment and the splits tail, patch the version field
        // back to 1. v1 files predate policies, so decoding migrates to
        // "fire-all" (and no splits).
        let snap = sample();
        let v4 = snap.to_bytes();
        let tail = splits_tail_len(&snap) + eval_tail_len(&snap);
        let mut v1 = Vec::new();
        v1.extend_from_slice(&v4[..4]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v4[8 + 4 + snap.policy.len()..v4.len() - tail]);
        let back = Snapshot::from_bytes(&v1).unwrap();
        assert_eq!(back.policy, "fire-all");
        let expect = Snapshot {
            policy: "fire-all".into(),
            splits: Vec::new(),
            eval: "tree".into(),
            rule_hashes: Vec::new(),
            ..snap
        };
        assert_eq!(back, expect);
        // Re-encoding a migrated snapshot writes the current version.
        assert_eq!(
            Snapshot::from_bytes(&back.to_bytes()).unwrap().policy,
            "fire-all"
        );
    }

    #[test]
    fn v2_snapshots_decode_with_no_splits() {
        // A v2 stream is the current stream minus the v3 and v4 tails,
        // with the version field patched back. Decoding yields the same
        // capture with an empty split list and the migration defaults.
        let snap = sample();
        let v4 = snap.to_bytes();
        let tail = splits_tail_len(&snap) + eval_tail_len(&snap);
        let mut v2 = v4[..v4.len() - tail].to_vec();
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let back = Snapshot::from_bytes(&v2).unwrap();
        let expect = Snapshot {
            splits: Vec::new(),
            eval: "tree".into(),
            rule_hashes: Vec::new(),
            ..snap
        };
        assert_eq!(back, expect);
    }

    #[test]
    fn v3_snapshots_decode_with_tree_eval_and_no_rule_store() {
        // A v3 stream is the current stream minus the v4 tail. Splits
        // survive; the eval tag and rule store take migration defaults.
        let snap = sample();
        let v4 = snap.to_bytes();
        let mut v3 = v4[..v4.len() - eval_tail_len(&snap)].to_vec();
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        let back = Snapshot::from_bytes(&v3).unwrap();
        let expect = Snapshot {
            eval: "tree".into(),
            rule_hashes: Vec::new(),
            ..snap
        };
        assert_eq!(back, expect);
    }

    #[test]
    fn errors_render() {
        for (err, needle) in [
            (SnapshotError::BadMagic, "magic"),
            (SnapshotError::UnsupportedVersion(9), "version 9"),
            (SnapshotError::UnknownClass("goal".into()), "goal"),
            (SnapshotError::UnknownRule("r1".into()), "r1"),
            (SnapshotError::BadWm("dup".into()), "dup"),
            (SnapshotError::SplitFailed("no rule".into()), "no rule"),
        ] {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }
}
