//! The engine core: the single recognize-act cycle driver.
//!
//! [`Engine`] owns everything both execution models share — working
//! memory, the incremental matcher, refraction, budgets/timeouts, panic
//! isolation, checkpoint/resume, fault injection, [`inject`](Engine::inject),
//! metrics, trace events, and run statistics. The one phase where OPS5
//! and PARULEL differ — *which eligible instantiations fire* — is
//! delegated to a [`FiringPolicy`]. There is exactly one cycle loop in
//! this crate; `ParallelEngine` and `SerialEngine` are thin constructors
//! over it.
//!
//! Every cycle: take the eligible (unrefracted) conflict set, ask the
//! policy which instantiations fire (PARULEL: meta-rule redaction plus
//! interference guard; OPS5: one LEX/MEA winner), evaluate the chosen
//! RHSs (in parallel for set-oriented policies), merge the deltas
//! deterministically, and commit the batch to working memory and the
//! incremental matcher.
//!
//! Termination: the run ends when the eligible set is empty (quiescence),
//! when everything eligible is redacted (a meta-level deadlock — firing
//! nothing would loop forever, so it counts as quiescence), when a `halt`
//! fires, or at the cycle limit.

use crate::ccc::copy_and_constrain_appending;
use crate::fire::{self, EngineError, FireResult};
use crate::metrics::{EngineMetrics, Phase, RuleMetrics, TraceBuffer, TraceEvent};
use crate::policy::{counts_by_rule, FiringPolicy};
use crate::refraction::Refraction;
use crate::snapshot::{SnapKey, SnapValue, SnapWme, Snapshot, SnapshotError};
use crate::stats::{CycleStats, CycleTrace, Outcome, RunStats};
use crate::EngineOptions;
use parulel_core::{InstKey, Instantiation, Program, RuleId, Value, Wme, WmeId, WorkingMemory};
use parulel_match::{Matcher, MatcherMetrics};
use parulel_vm::{compile_program_reusing, EvalMode, Evaluator};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The unified cycle driver; see the [module docs](self).
pub struct Engine {
    program: Arc<Program>,
    /// The compiled program (bytecode + content hashes), shared with the
    /// matcher's workers. Present in both modes: `reload` diffs by
    /// content hash even when execution is tree-walking.
    eval: Evaluator,
    wm: WorkingMemory,
    matcher: Box<dyn Matcher>,
    refraction: Refraction,
    policy: FiringPolicy,
    opts: EngineOptions,
    stats: RunStats,
    log: Vec<String>,
    traces: Vec<CycleTrace>,
    halted: bool,
    latest_checkpoint: Option<Snapshot>,
    metrics: EngineMetrics,
    trace_buf: Option<TraceBuffer>,
    auto_ccc_done: bool,
    /// Copy-and-constrain splits applied this run, in order: `(original
    /// rule name, factor)`. Recorded into checkpoints so a post-split
    /// snapshot round-trips (resume re-applies the transform).
    applied_splits: Vec<(String, u32)>,
}

impl Engine {
    /// Builds an engine with the default PARULEL policy
    /// ([`FiringPolicy::fire_all`]) over `program`, with `wm` as the
    /// initial working memory; the matcher is seeded immediately.
    pub fn new(program: &Program, wm: WorkingMemory, opts: EngineOptions) -> Self {
        Engine::with_policy(program, wm, FiringPolicy::fire_all(), opts)
    }

    /// Builds an engine running `policy`.
    ///
    /// If the policy drops machinery the program carries (a `SelectOne`
    /// policy never consults meta-rules), a one-line warning is pushed
    /// onto the run [`log`](Self::log).
    pub fn with_policy(
        program: &Program,
        wm: WorkingMemory,
        policy: FiringPolicy,
        opts: EngineOptions,
    ) -> Self {
        let program = Arc::new(program.clone());
        let eval = Evaluator::new(program.clone(), opts.eval);
        let mut matcher = opts.matcher.build_with(program.clone(), eval.clone());
        matcher.seed(&wm);
        let metrics = EngineMetrics::new(opts.metrics, program.rules().len());
        let trace_buf = opts.trace_events.map(TraceBuffer::new);
        let mut log = Vec::new();
        if let Some(warning) = policy.dropped_machinery_warning(&program) {
            log.push(warning);
        }
        Engine {
            program,
            eval,
            wm,
            matcher,
            refraction: Refraction::new(),
            policy,
            opts,
            stats: RunStats::default(),
            log,
            traces: Vec::new(),
            halted: false,
            latest_checkpoint: None,
            metrics,
            trace_buf,
            auto_ccc_done: false,
            applied_splits: Vec::new(),
        }
    }

    /// [`resume_with_policy`](Self::resume_with_policy) under the
    /// default PARULEL policy.
    pub fn resume(
        program: &Program,
        snapshot: &Snapshot,
        opts: EngineOptions,
    ) -> Result<Self, SnapshotError> {
        Engine::resume_with_policy(program, snapshot, FiringPolicy::fire_all(), opts)
    }

    /// Rebuilds an engine from a [`Snapshot`], continuing the captured
    /// run exactly: working memory keeps its WME ids and id counter, the
    /// refraction table is restored, and statistics/log/traces continue
    /// from the captured values. The matcher is *reseeded* from the
    /// restored working memory (a snapshot never stores matcher state —
    /// the conflict set is a pure function of working memory), so any
    /// [`MatcherKind`](crate::MatcherKind) may be chosen for the
    /// continuation. The snapshot's [`policy`](Snapshot::policy) tag
    /// records what produced it, but the continuation runs whatever
    /// `policy` the caller picks — the captured state is policy-agnostic.
    ///
    /// Fails with a structured error if the snapshot references classes
    /// or rules `program` does not define, or if its working memory does
    /// not validate.
    ///
    /// A snapshot captured after metrics-driven copy-and-constrain
    /// records the applied splits; resume replays the transform against
    /// `program` (skipping splits already present, so restoring onto an
    /// engine whose program was already split is a no-op) before binding
    /// refraction keys — the `name~k` copies the keys reference exist
    /// again, and the continuation will not re-split.
    pub fn resume_with_policy(
        program: &Program,
        snapshot: &Snapshot,
        policy: FiringPolicy,
        opts: EngineOptions,
    ) -> Result<Self, SnapshotError> {
        let mut program = program.clone();
        for (name, k) in &snapshot.splits {
            let already = program
                .interner
                .get(&format!("{name}~0"))
                .and_then(|s| program.rule_by_name(s))
                .is_some();
            if already {
                continue;
            }
            let (split, _) = copy_and_constrain_appending(&program, name, *k)
                .map_err(|e| SnapshotError::SplitFailed(e.to_string()))?;
            program = split;
        }
        let program = Arc::new(program);
        let interner = &program.interner;
        let mut wmes = Vec::with_capacity(snapshot.wmes.len());
        for sw in &snapshot.wmes {
            let class = program
                .classes
                .id_of(interner.intern(&sw.class))
                .ok_or_else(|| SnapshotError::UnknownClass(sw.class.clone()))?;
            if program.classes.decl(class).arity() != sw.fields.len() {
                return Err(SnapshotError::Malformed("wme arity mismatch"));
            }
            let fields: Vec<Value> = sw
                .fields
                .iter()
                .map(|v| match v {
                    SnapValue::Sym(s) => Value::Sym(interner.intern(s)),
                    SnapValue::Int(i) => Value::Int(*i),
                    SnapValue::Float(x) => Value::Float(*x),
                })
                .collect();
            wmes.push(Wme::new(WmeId(sw.id), class, fields));
        }
        let wm = WorkingMemory::from_parts(&program.classes, wmes, snapshot.next_wme_id)
            .map_err(|e| SnapshotError::BadWm(e.to_string()))?;
        let mut keys = Vec::with_capacity(snapshot.refraction.len());
        for sk in &snapshot.refraction {
            let rule = program
                .rule_by_name(interner.intern(&sk.rule))
                .ok_or_else(|| SnapshotError::UnknownRule(sk.rule.clone()))?;
            keys.push(InstKey {
                rule,
                wmes: sk.wmes.iter().map(|&id| WmeId(id)).collect(),
            });
        }
        let eval = Evaluator::new(program.clone(), opts.eval);
        let mut matcher = opts.matcher.build_with(program.clone(), eval.clone());
        matcher.seed(&wm);
        // Observability state is not part of the snapshot wire format:
        // a resumed engine starts fresh counters.
        let metrics = EngineMetrics::new(opts.metrics, program.rules().len());
        let trace_buf = opts.trace_events.map(TraceBuffer::new);
        Ok(Engine {
            program,
            eval,
            wm,
            matcher,
            refraction: Refraction::from_keys(keys),
            policy,
            opts,
            stats: snapshot.stats.clone(),
            log: snapshot.log.clone(),
            traces: snapshot.traces.clone(),
            halted: snapshot.halted,
            latest_checkpoint: None,
            metrics,
            trace_buf,
            // A resumed post-split run must not split again: the one
            // decision per run was already taken and is baked into the
            // resumed program.
            auto_ccc_done: !snapshot.splits.is_empty(),
            applied_splits: snapshot.splits.clone(),
        })
    }

    /// Restores a [`Snapshot`] *in place*, keeping this engine's program,
    /// policy, and options (including the matcher kind, which is rebuilt
    /// and reseeded from the restored working memory). The session-serving
    /// entry point: a long-lived engine can be rewound to any checkpoint
    /// without reconstructing it. On error the engine is left untouched.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let rebuilt =
            Engine::resume_with_policy(&self.program, snapshot, self.policy, self.opts.clone())?;
        *self = rebuilt;
        Ok(())
    }

    /// Resets the engine to a fresh run over `wm`: the matcher is rebuilt
    /// and reseeded, and refraction, statistics, log, traces, halt flag,
    /// checkpoints, and observability counters all start over. Program,
    /// policy, and options are kept — the other session-serving entry
    /// point, for reusing a compiled program across runs.
    pub fn reset(&mut self, wm: WorkingMemory) {
        let mut matcher = self
            .opts
            .matcher
            .build_with(self.program.clone(), self.eval.clone());
        matcher.seed(&wm);
        self.wm = wm;
        self.matcher = matcher;
        self.refraction = Refraction::new();
        self.stats = RunStats::default();
        self.log.clear();
        if let Some(warning) = self.policy.dropped_machinery_warning(&self.program) {
            self.log.push(warning);
        }
        self.traces.clear();
        self.halted = false;
        self.latest_checkpoint = None;
        self.metrics = EngineMetrics::new(self.opts.metrics, self.program.rules().len());
        self.trace_buf = self.opts.trace_events.map(TraceBuffer::new);
        self.auto_ccc_done = false;
        // `applied_splits` is deliberately kept: it describes the program
        // (which reset retains), not the run — a checkpoint of the fresh
        // run must still record how to rebuild the split rule set.
    }

    /// Hot-swaps the running program for `replacement` *without*
    /// disturbing working memory or the run in progress.
    ///
    /// Rules are diffed by **content hash** (the content-addressed
    /// bytecode store): a rule whose canonical code is byte-identical
    /// keeps its hash, its compiled `RuleCode` allocation, and — on the
    /// incremental path — its live match state (beta tokens, alpha
    /// subscriptions, negative counts). Changed and added rules are
    /// (re)built against the current working memory; removed rules are
    /// torn down. Refraction keys are re-keyed by rule *name*, so
    /// surviving rules do not re-fire on instantiations they already
    /// fired.
    ///
    /// The incremental path ([`Matcher::replace_rules`]) requires every
    /// unchanged rule to keep its [`RuleId`] and the class table to keep
    /// its length; otherwise the matcher is rebuilt and reseeded (same
    /// result, more work). On error the engine is untouched.
    ///
    /// `replacement` must be compiled into the running program's symbol
    /// space ([`parulel_lang::compile_into`]-style) and may only *extend*
    /// the class table — live WMEs are typed by the old declarations.
    pub fn reload(&mut self, replacement: &Program) -> Result<ReloadReport, ReloadError> {
        if !self.program.interner.shares_table_with(&replacement.interner) {
            return Err(ReloadError::ForeignInterner);
        }
        let interner = self.program.interner.clone();
        for (cid, old_decl) in self.program.classes.iter() {
            let mismatch = || ReloadError::ClassMismatch(interner.resolve(old_decl.name).to_string());
            if cid.index() >= replacement.classes.len() {
                return Err(mismatch());
            }
            let new_decl = replacement.classes.decl(cid);
            if new_decl.name != old_decl.name || new_decl.attrs != old_decl.attrs {
                return Err(mismatch());
            }
        }

        let new_program = Arc::new(replacement.clone());
        let old_code = self.eval.code().clone();
        let new_code = Arc::new(compile_program_reusing(&new_program, Some(&old_code)));

        // Diff by (name, content hash).
        let index = |code: &parulel_vm::ProgramCode| -> parulel_core::FxHashMap<String, (u32, u64)> {
            code.rules()
                .iter()
                .enumerate()
                .map(|(i, rc)| (rc.name.clone(), (i as u32, rc.hash)))
                .collect()
        };
        let old_rules = index(&old_code);
        let new_rules = index(&new_code);
        let mut report = ReloadReport::default();
        let mut ids_stable = true;
        let mut remove_ids: Vec<RuleId> = Vec::new();
        let mut add_ids: Vec<RuleId> = Vec::new();
        for (name, &(old_id, old_hash)) in &old_rules {
            match new_rules.get(name) {
                None => {
                    report.removed.push(name.clone());
                    remove_ids.push(RuleId(old_id));
                }
                Some(&(new_id, new_hash)) if new_hash != old_hash => {
                    report.changed.push(name.clone());
                    remove_ids.push(RuleId(old_id));
                    add_ids.push(RuleId(new_id));
                }
                Some(&(new_id, _)) => {
                    report.unchanged += 1;
                    ids_stable &= new_id == old_id;
                }
            }
        }
        for (name, &(new_id, _)) in &new_rules {
            if !old_rules.contains_key(name) {
                report.added.push(name.clone());
                add_ids.push(RuleId(new_id));
            }
        }
        report.added.sort();
        report.removed.sort();
        report.changed.sort();
        remove_ids.sort();
        add_ids.sort();

        // Class-table growth: the WM's per-class storage must cover the
        // appended classes before any new rule makes instances of them.
        if replacement.classes.len() != self.program.classes.len() {
            let wmes: Vec<Wme> = self.wm.iter().cloned().collect();
            let next = self.wm.next_id();
            self.wm = WorkingMemory::from_parts(&new_program.classes, wmes, next)
                .expect("prefix-validated class table rejected live WMEs");
        }

        let eval = Evaluator::with_code(new_program.clone(), self.eval.mode(), new_code);
        let touched = !(remove_ids.is_empty() && add_ids.is_empty());
        // The alpha network is sized by the class table, so growth forces
        // a rebuild; so does any unchanged rule changing id (live match
        // state is keyed by RuleId).
        report.incremental = !touched
            || (ids_stable
                && replacement.classes.len() == self.program.classes.len()
                && self
                    .matcher
                    .replace_rules(&new_program, &remove_ids, &add_ids, &self.wm));
        if !report.incremental {
            let mut m = self.opts.matcher.build_with(new_program.clone(), eval.clone());
            m.seed(&self.wm);
            self.matcher = m;
        }

        // Refraction keys survive by name (a renamed rule is a remove +
        // add and starts fresh); pruning then drops keys the new conflict
        // set no longer produces.
        let keys: Vec<InstKey> = self
            .refraction
            .keys()
            .filter_map(|k| {
                let name = &old_code.rules()[k.rule.0 as usize].name;
                new_rules.get(name).map(|&(new_id, _)| InstKey {
                    rule: RuleId(new_id),
                    wmes: k.wmes.clone(),
                })
            })
            .collect();
        self.refraction = Refraction::from_keys(keys);
        self.refraction.prune(self.matcher.conflict_set());

        self.program = new_program;
        self.eval = eval;
        // The split history described the *old* program; the replacement
        // arrives already in its final (possibly pre-split) form.
        self.applied_splits.clear();
        if self.opts.metrics.per_rule() {
            self.metrics
                .per_rule
                .resize(self.program.rules().len(), RuleMetrics::default());
        }
        self.log.push(format!(
            "reload: +{} -{} ~{} ={} ({})",
            report.added.len(),
            report.removed.len(),
            report.changed.len(),
            report.unchanged,
            if report.incremental { "incremental" } else { "rebuilt" },
        ));
        Ok(report)
    }

    /// Captures the engine's state as a portable [`Snapshot`]. Valid at
    /// any cycle boundary (between [`step`](Self::step) calls); symbols
    /// and rule names are stored resolved so the snapshot survives
    /// program recompilation.
    pub fn checkpoint(&self) -> Snapshot {
        let interner = &self.program.interner;
        let mut wmes: Vec<SnapWme> = self
            .wm
            .iter()
            .map(|w| SnapWme {
                id: w.id.0,
                class: interner
                    .resolve(self.program.classes.decl(w.class).name)
                    .to_string(),
                fields: w
                    .fields
                    .iter()
                    .map(|v| match v {
                        Value::Sym(s) => SnapValue::Sym(interner.resolve(*s).to_string()),
                        Value::Int(i) => SnapValue::Int(*i),
                        Value::Float(x) => SnapValue::Float(*x),
                    })
                    .collect(),
            })
            .collect();
        wmes.sort_by_key(|w| w.id);
        let mut refraction: Vec<SnapKey> = self
            .refraction
            .keys()
            .map(|k| SnapKey {
                rule: self.program.rule_name(k.rule),
                wmes: k.wmes.iter().map(|id| id.0).collect(),
            })
            .collect();
        refraction.sort();
        Snapshot {
            policy: self.policy.tag().to_string(),
            cycle: self.stats.cycles,
            halted: self.halted,
            next_wme_id: self.wm.next_id(),
            wmes,
            refraction,
            stats: self.stats.clone(),
            log: self.log.clone(),
            traces: self.traces.clone(),
            splits: self.applied_splits.clone(),
            eval: self.eval.mode().name().to_string(),
            rule_hashes: self.eval.code().name_map(),
        }
    }

    /// The most recent automatic checkpoint: captured every
    /// `checkpoint_every` cycles during [`run`](Self::run), and
    /// unconditionally when a budget (or injected-fault audit) aborts the
    /// run — the last consistent state before/at the failure.
    pub fn latest_checkpoint(&self) -> Option<&Snapshot> {
        self.latest_checkpoint.as_ref()
    }

    /// Records a checkpoint at the failure boundary and passes the error
    /// through (engine state is always boundary-consistent when a check
    /// trips, so the capture is safe).
    fn trip(&mut self, err: EngineError) -> EngineError {
        self.latest_checkpoint = Some(self.checkpoint());
        if let Some(buf) = &mut self.trace_buf {
            let cycle = err.cycle().unwrap_or(self.stats.cycles + 1);
            buf.push(TraceEvent::BudgetTrip { cycle, kind: err.kind() });
            buf.push(TraceEvent::Checkpoint { cycle: self.stats.cycles });
        }
        err
    }

    /// The policy this engine runs.
    pub fn policy(&self) -> FiringPolicy {
        self.policy
    }

    /// The compiled program (bytecode, content hashes, eval mode) this
    /// engine executes. Present in both eval modes; `Tree` engines still
    /// compile so [`reload`](Self::reload) can diff by content hash.
    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Consumes the engine, yielding the final working memory.
    pub fn into_wm(self) -> WorkingMemory {
        self.wm
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Collected `write` output.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Per-cycle traces (empty unless `EngineOptions::trace` was set).
    pub fn traces(&self) -> &[CycleTrace] {
        &self.traces
    }

    /// Observability counters collected so far (all-zero when
    /// `EngineOptions::metrics` is [`crate::MetricsLevel::Off`]).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A live sample of the matcher's internal population — including the
    /// shard count actually in effect for partitioned matchers.
    pub fn matcher_metrics(&self) -> MatcherMetrics {
        self.matcher.metrics()
    }

    /// The structured event ring (populated only when
    /// `EngineOptions::trace_events` is set).
    pub fn trace_events(&self) -> Option<&TraceBuffer> {
        self.trace_buf.as_ref()
    }

    /// The compiled program this engine runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// True once a `halt` action has fired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Injects external working-memory changes between cycles (a live
    /// feed, an embedding application's transaction). The delta is applied
    /// to working memory and pushed through the incremental matcher; the
    /// next [`step`](Self::step) sees the updated conflict set. Returns
    /// the concrete WMEs removed and added.
    pub fn inject(
        &mut self,
        delta: &parulel_core::Delta,
    ) -> (Vec<parulel_core::Wme>, Vec<parulel_core::Wme>) {
        let (removed, added) = self.wm.apply(delta);
        self.matcher.apply(&removed, &added);
        self.refraction.prune(self.matcher.conflict_set());
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::Inject {
                adds: added.len(),
                removes: removed.len(),
            });
        }
        (removed, added)
    }

    /// Metrics-driven copy-and-constrain (see [`crate::AutoCcc`]): at most
    /// once per run, after the configured number of cycles, split the
    /// heaviest rule on the heaviest shard and rebuild only its match
    /// state.
    ///
    /// Determinism: every input is a deterministic function of the run so
    /// far (match-state populations; never wall-clock), ties break to the
    /// lowest shard index / rule id, and the transform itself is
    /// deterministic — so two identical runs split identically.
    fn maybe_auto_ccc(&mut self) {
        let Some(cfg) = self.opts.auto_ccc else {
            return;
        };
        if self.auto_ccc_done || self.stats.cycles < cfg.after_cycles {
            return;
        }
        // One decision per run, taken or not — re-sampling every later
        // cycle would pay the metrics walk for nothing.
        self.auto_ccc_done = true;
        let sample = self.matcher.metrics();
        let imbalance = sample.imbalance();
        if imbalance < cfg.min_imbalance {
            return;
        }
        let factor = if cfg.factor == 0 {
            sample.shards as u32
        } else {
            cfg.factor
        };
        if factor < 2 {
            return;
        }
        // First-max keeps ties on the lowest shard index; per_rule_work is
        // sorted by rule id, so first-max there is the lowest rule id.
        let mut hot_shard: Option<&MatcherMetrics> = None;
        for s in sample.per_shard.iter().filter(|s| s.rules > 0) {
            if hot_shard.is_none_or(|b| s.work() > b.work()) {
                hot_shard = Some(s);
            }
        }
        let Some(shard) = hot_shard else { return };
        let mut hot_rule: Option<(u32, usize)> = None;
        for &(rule, work) in &shard.per_rule_work {
            if hot_rule.is_none_or(|(_, w)| work > w) {
                hot_rule = Some((rule, work));
            }
        }
        let Some((rule_raw, _)) = hot_rule else { return };
        let old_id = RuleId(rule_raw);
        let name = self.program.rule_name(old_id);
        match copy_and_constrain_appending(&self.program, &name, factor) {
            Err(e) => self.log.push(format!("auto-ccc: skipped: {e}")),
            Ok((split, appended)) => {
                let new_program = Arc::new(split);
                // Recompile before touching match state: the engine's fire
                // path and any rebuilt nets must run the split program.
                self.eval = Evaluator::new(new_program.clone(), self.eval.mode());
                let mut add = vec![old_id];
                add.extend(appended.iter().copied());
                // The split rule's id is in both lists: its definition
                // changed (copy 0 gained the residue test), so its net is
                // rebuilt; every other rule's state is untouched.
                if !self
                    .matcher
                    .replace_rules(&new_program, &[old_id], &add, &self.wm)
                {
                    let mut m = self
                        .opts
                        .matcher
                        .build_with(new_program.clone(), self.eval.clone());
                    m.seed(&self.wm);
                    self.matcher = m;
                }
                self.refraction.expand_rule(old_id, &appended);
                self.refraction.prune(self.matcher.conflict_set());
                self.program = new_program;
                self.applied_splits.push((name.clone(), factor));
                if self.opts.metrics.per_rule() {
                    self.metrics
                        .per_rule
                        .resize(self.program.rules().len(), RuleMetrics::default());
                }
                self.log.push(format!(
                    "auto-ccc: split rule '{name}' x{factor} after cycle {} (imbalance {imbalance:.2})",
                    self.stats.cycles
                ));
            }
        }
    }

    /// Executes one cycle. Returns `Ok(true)` if at least one
    /// instantiation fired, `Ok(false)` on quiescence.
    ///
    /// Budget checks ([`crate::guard::Budgets`]) run at points where
    /// engine state is consistent: conflict-set width before anything
    /// fires, delta size after RHS evaluation but before the delta is
    /// recorded or applied, and working-memory size after the cycle
    /// commits. A trip therefore never leaves working memory, the
    /// matcher, and the refraction table out of sync — and every trip
    /// stores a [`Snapshot`] in
    /// [`latest_checkpoint`](Self::latest_checkpoint).
    pub fn step(&mut self) -> Result<bool, EngineError> {
        self.maybe_auto_ccc();
        let cycle_no = self.stats.cycles + 1;
        #[cfg(feature = "fault-inject")]
        self.opts
            .faults
            .maybe_corrupt_matcher(cycle_no, &self.wm, self.matcher.as_mut());
        let mut cycle = CycleStats::default();

        let t = Instant::now();
        let cs = self.matcher.conflict_set();
        cycle.conflict_set = cs.len();
        #[cfg(feature = "fault-inject")]
        let audit = self.opts.faults.audit(cycle_no, &self.program, &self.wm, cs);
        let cs_budget = self
            .opts
            .budgets
            .check_conflict_set(cycle_no, cs, &self.program);
        let eligible = self.refraction.eligible(cs);
        #[cfg(feature = "fault-inject")]
        audit.map_err(|e| self.trip(e))?;
        cs_budget.map_err(|e| self.trip(e))?;
        cycle.eligible = eligible.len();
        cycle.match_time = t.elapsed();
        let collect = self.opts.metrics.per_rule();
        if collect {
            self.metrics.peak_conflict_set =
                self.metrics.peak_conflict_set.max(cycle.conflict_set);
            for inst in &eligible {
                self.metrics.per_rule[inst.rule.0 as usize].matched += 1;
            }
        }
        if eligible.is_empty() {
            return Ok(false);
        }

        // Resolve: the policy decides what fires (PARULEL: meta-rule
        // redaction + interference guard; OPS5: one LEX/MEA winner).
        let t = Instant::now();
        let num_rules = self.metrics.per_rule.len();
        let pre_policy = collect.then(|| counts_by_rule(&eligible, num_rules));
        let selection = self
            .policy
            .select(&self.program, eligible, collect.then_some(num_rules));
        cycle.redacted_meta = selection.redacted_meta;
        cycle.meta_rounds = selection.meta_rounds;
        cycle.redacted_guard = selection.redacted_guard;
        let surviving = selection.to_fire;
        cycle.redact_time = t.elapsed();
        if let (Some(pre), Some(post)) = (pre_policy, selection.post_meta_counts) {
            // Per-rule redaction attribution: eligible minus post-meta is
            // what the meta-rules took; post-meta minus surviving is what
            // the interference guard took.
            let fin = counts_by_rule(&surviving, num_rules);
            for r in 0..num_rules {
                self.metrics.per_rule[r].redacted_meta += pre[r] - post[r];
                self.metrics.per_rule[r].redacted_guard += post[r] - fin[r];
            }
        }
        if surviving.is_empty() {
            // Everything eligible was redacted: firing nothing would
            // repeat forever, so treat as quiescence.
            self.stats.absorb(&cycle);
            return Ok(false);
        }

        let t = Instant::now();
        let program = &self.program;
        let eval = &self.eval;
        let collect_log = self.opts.collect_log;
        #[cfg(feature = "fault-inject")]
        let faults = &self.opts.faults;
        // Each RHS runs behind `fire::isolate`: a panicking rule becomes
        // `Err(RhsPanic)` for this run instead of tearing down the
        // process (sibling firings on other workers complete first).
        let fire_one = |inst: &Instantiation| -> Result<FireResult, EngineError> {
            fire::isolate(
                || program.rule_name(inst.rule),
                || {
                    #[cfg(feature = "fault-inject")]
                    faults.maybe_fail_rhs(cycle_no, &program.rule_name(inst.rule))?;
                    match eval.mode() {
                        EvalMode::Tree => fire::fire(program, inst, collect_log),
                        EvalMode::Bytecode => match eval.fire(inst, collect_log) {
                            Ok(out) => Ok(FireResult {
                                delta: out.delta,
                                log: out.log,
                                halt: out.halt,
                            }),
                            // Write-argument failures keep the tree
                            // walker's `<write>` attribution.
                            Err(e) => Err(EngineError::RhsEval {
                                rule: if e.in_write {
                                    String::from("<write>")
                                } else {
                                    program.rule_name(inst.rule)
                                },
                                error: e.error,
                            }),
                        },
                    }
                },
            )
        };
        // Per-firing RHS timing exists only when metrics are on; the Off
        // arm is the seed's exact path (no `Instant::now` per firing).
        let (results, rhs_times): (Vec<FireResult>, Vec<Duration>) = if collect {
            let timed = |inst: &Instantiation| -> Result<(FireResult, Duration), EngineError> {
                let t = Instant::now();
                fire_one(inst).map(|r| (r, t.elapsed()))
            };
            let results: Result<Vec<(FireResult, Duration)>, EngineError> =
                if self.opts.parallel_fire {
                    surviving.par_iter().map(timed).collect()
                } else {
                    surviving.iter().map(timed).collect()
                };
            results.map_err(|e| self.trip(e))?.into_iter().unzip()
        } else {
            let results: Result<Vec<FireResult>, EngineError> = if self.opts.parallel_fire {
                surviving.par_iter().map(fire_one).collect()
            } else {
                surviving.iter().map(fire_one).collect()
            };
            (results.map_err(|e| self.trip(e))?, Vec::new())
        };
        self.opts
            .budgets
            .check_delta(cycle_no, &results, &surviving, &self.program)
            .map_err(|e| self.trip(e))?;
        let (delta, log, halt) = fire::merge(results);
        cycle.fired = surviving.len();
        cycle.adds = delta.adds.len();
        cycle.removes = delta.removes.len();
        self.refraction.record(surviving.iter());
        cycle.fire_time = t.elapsed();
        if collect {
            for (inst, dur) in surviving.iter().zip(&rhs_times) {
                let rm = &mut self.metrics.per_rule[inst.rule.0 as usize];
                rm.fired += 1;
                rm.rhs_time += *dur;
            }
        }

        // Attribute the incremental network update to match time (it
        // *is* matching); apply time covers WM mutation and refraction
        // upkeep only.
        let t = Instant::now();
        let (removed, added) = self.wm.apply(&delta);
        cycle.apply_time = t.elapsed();
        let t = Instant::now();
        self.matcher.apply(&removed, &added);
        cycle.match_time += t.elapsed();
        let t = Instant::now();
        self.refraction.prune(self.matcher.conflict_set());
        cycle.apply_time += t.elapsed();
        if collect {
            self.metrics.peak_wm = self.metrics.peak_wm.max(self.wm.len());
        }
        if self.opts.metrics.matcher() {
            let sample = self.matcher.metrics();
            self.metrics.sample_matcher(&sample);
        }

        self.log.extend(log);
        self.halted |= halt;
        if self.opts.trace {
            let mut by_rule: parulel_core::FxHashMap<parulel_core::RuleId, usize> =
                parulel_core::FxHashMap::default();
            for inst in &surviving {
                *by_rule.entry(inst.rule).or_default() += 1;
            }
            let mut fired_rules: Vec<(String, usize)> = by_rule
                .into_iter()
                .map(|(r, n)| (self.program.rule_name(r), n))
                .collect();
            fired_rules.sort();
            self.traces.push(CycleTrace {
                cycle: self.stats.cycles + 1,
                eligible: cycle.eligible,
                redacted_meta: cycle.redacted_meta,
                redacted_guard: cycle.redacted_guard,
                fired_rules,
                adds: cycle.adds,
                removes: cycle.removes,
            });
        }
        self.stats.absorb(&cycle);
        if let Some(buf) = &mut self.trace_buf {
            let c = self.stats.cycles;
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Match,
                dur: cycle.match_time,
                items: cycle.eligible,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Redact,
                dur: cycle.redact_time,
                items: cycle.redacted_meta + cycle.redacted_guard,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Fire,
                dur: cycle.fire_time,
                items: cycle.fired,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Apply,
                dur: cycle.apply_time,
                items: cycle.adds + cycle.removes,
            });
        }
        self.opts
            .budgets
            .check_wm(cycle_no, self.wm.len())
            .map_err(|e| self.trip(e))?;
        Ok(true)
    }

    /// Runs to quiescence, halt, or the cycle limit.
    ///
    /// The wall-clock budget is checked before each cycle; periodic
    /// checkpoints (`EngineOptions::checkpoint_every`) are captured after
    /// each completed cycle.
    pub fn run(&mut self) -> Result<Outcome, EngineError> {
        let outcome = self.run_bounded(self.opts.max_cycles, Instant::now())?;
        self.note_run_end(outcome.cycles, outcome.firings, outcome.status());
        Ok(outcome)
    }

    /// One cooperative slice of a (possibly longer) run: at most `limit`
    /// cycles, with the wall-clock budget measured from `run_started` —
    /// the moment the *whole* run was admitted, so a run sliced across
    /// many quanta sees the same deadline as an uninterrupted one,
    /// including time spent parked between slices.
    ///
    /// Unlike [`run`](Self::run), no `RunEnd` trace event is emitted:
    /// the scheduler driving the slices calls
    /// [`note_run_end`](Self::note_run_end) exactly once when the run
    /// completes, so the trace ring is identical to an unsliced run.
    /// The returned [`Outcome`] counts this slice's cycles/firings only;
    /// `hit_cycle_limit` means `limit` was exhausted (the caller decides
    /// whether that ends the run or parks it for another slice).
    pub fn run_quantum(&mut self, limit: u64, run_started: Instant) -> Result<Outcome, EngineError> {
        self.run_bounded(limit, run_started)
    }

    /// Emits the `RunEnd` trace event for a run completed via
    /// [`run_quantum`](Self::run_quantum) slices (aggregate numbers, one
    /// event — exactly what an unsliced [`run`](Self::run) records).
    pub fn note_run_end(&mut self, cycles: u64, firings: u64, status: &'static str) {
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::RunEnd {
                cycles,
                firings,
                status,
            });
        }
    }

    /// The configured per-`run` cycle limit (`EngineOptions::max_cycles`):
    /// the run-level cap a scheduler must enforce across quantum slices.
    pub fn max_cycles(&self) -> u64 {
        self.opts.max_cycles
    }

    fn run_bounded(&mut self, limit: u64, start: Instant) -> Result<Outcome, EngineError> {
        let mut quiescent = false;
        let mut hit_cycle_limit = false;
        let first_cycle = self.stats.cycles;
        let first_firings = self.stats.firings;
        loop {
            if self.halted {
                break;
            }
            if self.stats.cycles - first_cycle >= limit {
                hit_cycle_limit = true;
                break;
            }
            if let Err(e) = self
                .opts
                .budgets
                .check_deadline(self.stats.cycles + 1, start)
            {
                return Err(self.trip(e));
            }
            if !self.step()? {
                quiescent = true;
                break;
            }
            if let Some(every) = self.opts.checkpoint_every {
                if every > 0 && self.stats.cycles.is_multiple_of(every) {
                    self.latest_checkpoint = Some(self.checkpoint());
                    if let Some(buf) = &mut self.trace_buf {
                        buf.push(TraceEvent::Checkpoint { cycle: self.stats.cycles });
                    }
                }
            }
        }
        // Per-call numbers: a caller that injects facts and runs again
        // gets this continuation's cycles, not the lifetime total (which
        // lives in `stats`).
        Ok(Outcome {
            cycles: self.stats.cycles - first_cycle,
            firings: self.stats.firings - first_firings,
            halted: self.halted,
            quiescent,
            hit_cycle_limit,
            wall: start.elapsed(),
        })
    }
}

/// What one [`Engine::reload`] did, keyed by rule *name*. Rules are
/// compared by the content hash of their canonical bytecode, so renames
/// show up as remove + add and formatting-only edits as unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Names present only in the replacement program (sorted).
    pub added: Vec<String>,
    /// Names present only in the old program (sorted).
    pub removed: Vec<String>,
    /// Names whose content hash moved (sorted).
    pub changed: Vec<String>,
    /// Rules whose compiled code survived byte-identically.
    pub unchanged: usize,
    /// Unchanged rules kept their live match state; `false` means the
    /// matcher was rebuilt and reseeded (same end state, more work).
    pub incremental: bool,
}

/// Why [`Engine::reload`] refused. The engine is untouched on error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReloadError {
    /// The replacement was compiled in its own symbol space. Reload
    /// requires compiling into the running program's interner
    /// (`parulel_lang::compile_into`), so live WMEs keep meaning.
    ForeignInterner,
    /// The named class was removed or redeclared. Live WMEs are typed by
    /// the running class table; a reload may only extend it.
    ClassMismatch(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::ForeignInterner => write!(
                f,
                "replacement program was not compiled into the running program's symbol space"
            ),
            ReloadError::ClassMismatch(name) => write!(
                f,
                "class '{name}' was removed or redeclared; a reload may only extend the class table"
            ),
        }
    }
}

impl std::error::Error for ReloadError {}
