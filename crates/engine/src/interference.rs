//! Interference detection over the surviving set.
//!
//! PARULEL's position is that the *meta-rules* should make simultaneous
//! firing safe. The guard is the engine's backstop: it statically analyses
//! the read/write sets of the instantiations about to fire together and
//! auto-redacts (deterministically, keeping earlier instantiations in key
//! order) whatever the meta-rules missed. Table 4 of the reproduction
//! reports how much work the guard did — for a well-written program the
//! answer is zero.
//!
//! * **Read set** — the WMEs an instantiation matched positively.
//! * **Write set** — the WMEs its `remove`/`modify` actions retract
//!   (`modify` is retract-and-reassert). `make`s create fresh WMEs and
//!   never conflict by identity.
//!
//! Guard modes:
//!
//! * [`GuardMode::Off`] — fire everything (pure PARULEL semantics; the
//!   merged delta is still deterministic, see `fire::merge`).
//! * [`GuardMode::WriteWrite`] — two instantiations may not both rewrite
//!   the same WME when at least one is a `modify` (remove+remove is
//!   idempotent and allowed).
//! * [`GuardMode::Serializable`] — additionally, an instantiation may not
//!   read a WME another one writes: the fired set is pairwise
//!   non-interfering, so the cycle is equivalent to *every* serial order
//!   of its firings.

use parulel_core::{Action, FxHashMap, FxHashSet, Instantiation, Program, WmeId};

/// Guard selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GuardMode {
    /// No guard: trust the meta-rules.
    #[default]
    Off,
    /// Suppress write-write conflicts.
    WriteWrite,
    /// Suppress write-write and read-write conflicts.
    Serializable,
}

/// Result of the guard phase.
#[derive(Clone, Debug)]
pub struct GuardOutcome {
    /// Instantiations cleared to fire, input order preserved.
    pub surviving: Vec<Instantiation>,
    /// How many the guard redacted.
    pub redacted: usize,
}

/// Per-instantiation access summary.
struct Access {
    reads: Vec<WmeId>,
    removes: Vec<WmeId>,
    modifies: Vec<WmeId>,
}

fn access(program: &Program, inst: &Instantiation) -> Access {
    let rule = program.rule(inst.rule);
    let mut removes = Vec::new();
    let mut modifies = Vec::new();
    for action in &rule.actions {
        match action {
            Action::Remove { ce } => removes.push(inst.wmes[*ce as usize].id),
            Action::Modify { ce, .. } => modifies.push(inst.wmes[*ce as usize].id),
            _ => {}
        }
    }
    Access {
        reads: inst.wmes.iter().map(|w| w.id).collect(),
        removes,
        modifies,
    }
}

/// Applies the guard: greedy in input order (callers pass key-sorted
/// sets, so the kept subset is deterministic).
pub fn guard(program: &Program, insts: Vec<Instantiation>, mode: GuardMode) -> GuardOutcome {
    if mode == GuardMode::Off || insts.len() <= 1 {
        return GuardOutcome {
            surviving: insts,
            redacted: 0,
        };
    }
    // Writer bookkeeping for everything kept so far:
    // wme -> strongest kept write (true = modify, false = remove-only).
    let mut kept_writes: FxHashMap<WmeId, bool> = FxHashMap::default();
    let mut kept_reads: FxHashSet<WmeId> = FxHashSet::default();
    let mut surviving = Vec::with_capacity(insts.len());
    let mut redacted = 0;
    for inst in insts {
        let a = access(program, &inst);
        let ww_conflict = a.modifies.iter().any(|w| kept_writes.contains_key(w))
            || a.removes
                .iter()
                .any(|w| kept_writes.get(w).copied().unwrap_or(false));
        let rw_conflict = mode == GuardMode::Serializable
            && (a.reads.iter().any(|w| kept_writes.contains_key(w))
                || a.removes
                    .iter()
                    .chain(a.modifies.iter())
                    .any(|w| kept_reads.contains(w)));
        if ww_conflict || rw_conflict {
            redacted += 1;
            continue;
        }
        for &w in &a.removes {
            kept_writes.entry(w).or_insert(false);
        }
        for &w in &a.modifies {
            kept_writes.insert(w, true);
        }
        kept_reads.extend(a.reads.iter().copied());
        surviving.push(inst);
    }
    GuardOutcome {
        surviving,
        redacted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;
    use parulel_match::{Matcher, Rete};
    use std::sync::Arc;

    fn surviving_count(src: &str, facts: &[(&str, Vec<i64>)], mode: GuardMode) -> (usize, usize) {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(
                cid,
                fields.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
            );
        }
        let mut m = Rete::new(Arc::new(p.clone()));
        m.seed(&wm);
        let el = m.conflict_set().sorted();
        let out = guard(&p, el, mode);
        (out.surviving.len(), out.redacted)
    }

    // Two rules both modify the same counter WME.
    const MODIFY_RACE: &str = "
        (literalize counter v)
        (literalize tick id)
        (p bump (tick ^id <i>) (counter ^v <c>) --> (modify 2 ^v (+ <c> 1)) (remove 1))";

    #[test]
    fn off_mode_keeps_everything() {
        let (kept, redacted) = surviving_count(
            MODIFY_RACE,
            &[("counter", vec![0]), ("tick", vec![1]), ("tick", vec![2])],
            GuardMode::Off,
        );
        assert_eq!((kept, redacted), (2, 0));
    }

    #[test]
    fn write_write_keeps_one_modifier() {
        let (kept, redacted) = surviving_count(
            MODIFY_RACE,
            &[("counter", vec![0]), ("tick", vec![1]), ("tick", vec![2])],
            GuardMode::WriteWrite,
        );
        assert_eq!((kept, redacted), (1, 1));
    }

    #[test]
    fn remove_remove_is_not_a_ww_conflict() {
        let src = "
            (literalize item id)
            (literalize evict id)
            (p gc (evict ^id <e>) (item ^id <i>) --> (remove 2))";
        // two evict orders target the same item: both remove it — fine.
        let (kept, redacted) = surviving_count(
            src,
            &[("item", vec![7]), ("evict", vec![1]), ("evict", vec![2])],
            GuardMode::WriteWrite,
        );
        assert_eq!((kept, redacted), (2, 0));
    }

    #[test]
    fn serializable_blocks_read_write_overlap() {
        let src = "
            (literalize item id)
            (literalize evict id)
            (p gc (evict ^id <e>) (item ^id <i>) --> (remove 2))";
        // Under Serializable both instantiations read AND remove item 7:
        // second conflicts with first.
        let (kept, redacted) = surviving_count(
            src,
            &[("item", vec![7]), ("evict", vec![1]), ("evict", vec![2])],
            GuardMode::Serializable,
        );
        assert_eq!((kept, redacted), (1, 1));
    }

    #[test]
    fn disjoint_instantiations_all_pass() {
        let src = "
            (literalize cell id v)
            (p step (cell ^id <i> ^v <x>) --> (modify 1 ^v (+ <x> 1)))";
        let (kept, redacted) = surviving_count(
            src,
            &[
                ("cell", vec![1, 0]),
                ("cell", vec![2, 0]),
                ("cell", vec![3, 0]),
            ],
            GuardMode::Serializable,
        );
        assert_eq!((kept, redacted), (3, 0));
    }
}
