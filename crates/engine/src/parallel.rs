//! The PARULEL execution engine: match → redact → fire-all.
//!
//! Since the engine unification, `ParallelEngine` is the unified
//! [`Engine`] running its default policy, [`FiringPolicy::fire_all`]:
//! every cycle the program's meta-rules redact the eligible set, an
//! optional interference guard backstops them, and every survivor fires
//! in the same cycle (parallel RHS evaluation, deterministic delta
//! merge). The cycle loop itself — and all the robustness/observability
//! machinery around it — lives in [`crate::core`]; this alias exists so
//! PARULEL-flavoured code reads naturally and pre-unification callers
//! keep compiling.
//!
//! [`FiringPolicy::fire_all`]: crate::FiringPolicy::fire_all

use crate::core::Engine;

/// The set-oriented PARULEL engine: [`Engine`] under the default
/// fire-all policy ([`Engine::new`] selects it).
pub type ParallelEngine = Engine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fire::EngineError;
    use crate::snapshot::Snapshot;
    use crate::stats::RunStats;
    use crate::{EngineOptions, MatcherKind};
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;

    fn engine(src: &str, facts: &[(&str, Vec<Value>)], opts: EngineOptions) -> ParallelEngine {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(cid, fields.clone());
        }
        ParallelEngine::new(&p, wm, opts)
    }

    #[test]
    fn counter_runs_to_quiescence() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 5)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.quiescent);
        assert!(!out.halted);
        assert_eq!(out.cycles, 5);
        assert_eq!(out.firings, 5);
        let final_n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(final_n, Value::Int(5));
    }

    #[test]
    fn set_oriented_firing_runs_all_instantiations_in_one_cycle() {
        let mut e = engine(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
                ("cell", vec![Value::Int(3), Value::Int(0)]),
                ("cell", vec![Value::Int(4), Value::Int(0)]),
            ],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1, "all four fire simultaneously");
        assert_eq!(out.firings, 4);
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(1)));
    }

    #[test]
    fn meta_redaction_serializes_conflicting_work() {
        // Two jobs want the one machine; the meta-rule keeps the shorter.
        let src = "
            (literalize job id len done)
            (literalize machine busy)
            (p run (job ^id <j> ^len <l> ^done no) (machine ^busy no)
             --> (modify 1 ^done yes))
            (mp shortest-first
              (inst run (job ^len <l1>) _)
              (inst run (job ^len <l2>) _)
              (test (> <l1> <l2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let machine = p.classes.id_of(i.intern("machine")).unwrap();
        let (no, yes) = (i.intern("no"), i.intern("yes"));
        wm.insert(job, vec![Value::Int(1), Value::Int(9), Value::Sym(no)]);
        wm.insert(job, vec![Value::Int(2), Value::Int(3), Value::Sym(no)]);
        wm.insert(machine, vec![Value::Sym(no)]);
        let mut e = ParallelEngine::new(&p, wm, EngineOptions::default());
        let out = e.run().unwrap();
        // Cycle 1: both jobs eligible, meta keeps job 2 only. Cycle 2:
        // job 1 (no longer redacted — job 2 is done) fires.
        assert_eq!(out.cycles, 2);
        assert_eq!(out.firings, 2);
        assert_eq!(e.stats().redacted_meta, 1);
        assert!(e
            .wm()
            .iter_class(job)
            .all(|w| w.field(2) == Value::Sym(yes)));
    }

    #[test]
    fn halt_stops_the_run() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))
             (p stop (count ^n 3) --> (halt))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.halted);
        assert!(!out.quiescent);
        // count reaches 3, `stop` fires (with `step` also firing that
        // cycle), run ends after that cycle: n == 4.
        let n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(n, Value::Int(4));
    }

    #[test]
    fn cycle_limit_catches_runaways() {
        let mut e = engine(
            "(literalize count n)
             (p grow (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                max_cycles: 10,
                ..Default::default()
            },
        );
        let out = e.run().unwrap();
        assert!(out.hit_cycle_limit);
        assert_eq!(out.cycles, 10);
    }

    #[test]
    fn refraction_prevents_refiring_pure_makes() {
        let mut e = engine(
            "(literalize seed v)
             (literalize derived v)
             (p derive (seed ^v <x>) --> (make derived ^v <x>))",
            &[("seed", vec![Value::Int(1)]), ("seed", vec![Value::Int(2)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1);
        assert_eq!(out.firings, 2);
        assert_eq!(e.wm().len(), 4); // 2 seeds + 2 derived, no runaway
    }

    #[test]
    fn write_log_collected_in_key_order() {
        let mut e = engine(
            "(literalize n v)
             (p say (n ^v <x>) --> (write saw <x>) (remove 1))",
            &[("n", vec![Value::Int(10)]), ("n", vec![Value::Int(20)])],
            EngineOptions::default(),
        );
        e.run().unwrap();
        assert_eq!(e.log(), &["saw 10".to_string(), "saw 20".to_string()]);
    }

    #[test]
    fn inject_feeds_the_running_engine() {
        let mut e = engine(
            "(literalize req id)
             (literalize done id)
             (p serve (req ^id <r>) --> (remove 1) (make done ^id <r>))",
            &[("req", vec![Value::Int(1)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 1));
        // Inject two more requests into the live engine.
        let req = e
            .program()
            .classes
            .id_of(e.program().interner.intern("req"))
            .unwrap();
        let mut delta = parulel_core::Delta::new();
        delta.adds.push((req, vec![Value::Int(2)].into()));
        delta.adds.push((req, vec![Value::Int(3)].into()));
        let (removed, added) = e.inject(&delta);
        assert!(removed.is_empty());
        assert_eq!(added.len(), 2);
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 2), "per-call outcome");
        assert_eq!(e.stats().firings, 3, "lifetime stats keep the total");
        let done = e
            .program()
            .classes
            .id_of(e.program().interner.intern("done"))
            .unwrap();
        assert_eq!(e.wm().iter_class(done).count(), 3);
    }

    #[test]
    fn metrics_collect_per_rule_counters_and_peaks() {
        use crate::metrics::MetricsLevel;
        // Reuse the redaction scenario: job 1 is redacted once, then fires.
        let src = "
            (literalize job id len done)
            (literalize machine busy)
            (p run (job ^id <j> ^len <l> ^done no) (machine ^busy no)
             --> (modify 1 ^done yes))
            (mp shortest-first
              (inst run (job ^len <l1>) _)
              (inst run (job ^len <l2>) _)
              (test (> <l1> <l2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let machine = p.classes.id_of(i.intern("machine")).unwrap();
        let no = i.intern("no");
        wm.insert(job, vec![Value::Int(1), Value::Int(9), Value::Sym(no)]);
        wm.insert(job, vec![Value::Int(2), Value::Int(3), Value::Sym(no)]);
        wm.insert(machine, vec![Value::Sym(no)]);
        let mut e = ParallelEngine::new(
            &p,
            wm,
            EngineOptions {
                metrics: MetricsLevel::Full,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let run_rule = p.rule_by_name(p.interner.intern("run")).unwrap();
        let m = e.metrics().rule(run_rule);
        // Cycle 1: both instantiations eligible, one redacted, one fires.
        // Cycle 2: job 1 eligible again and fires.
        assert_eq!(m.matched, 3);
        assert_eq!(m.fired, 2);
        assert_eq!(m.redacted_meta, 1);
        assert_eq!(m.redacted_guard, 0);
        assert_eq!(e.metrics().peak_wm, 3);
        assert_eq!(e.metrics().peak_conflict_set, 2);
        assert!(e.metrics().peak_alpha_wmes > 0, "Full level samples the matcher");
        // The lifetime totals agree with RunStats.
        let fired_total: u64 = e.metrics().per_rule.iter().map(|r| r.fired).sum();
        assert_eq!(fired_total, e.stats().firings);
        // And a default-options engine collects nothing.
        assert!(ParallelEngine::new(&p, WorkingMemory::new(&p.classes), Default::default())
            .metrics()
            .per_rule
            .is_empty());
    }

    #[test]
    fn trace_events_record_spans_and_run_end() {
        use crate::metrics::TraceEvent;
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                trace_events: Some(64),
                ..Default::default()
            },
        );
        e.run().unwrap();
        let buf = e.trace_events().expect("ring enabled");
        // 3 cycles x 4 spans + run-end.
        assert_eq!(buf.len(), 13);
        assert_eq!(buf.dropped(), 0);
        let spans = buf
            .events()
            .filter(|ev| matches!(ev, TraceEvent::Span { .. }))
            .count();
        assert_eq!(spans, 12);
        match buf.events().last().unwrap() {
            TraceEvent::RunEnd { cycles, firings, status } => {
                assert_eq!((*cycles, *firings), (3, 3));
                assert_eq!(*status, "quiescent");
            }
            other => panic!("expected run-end, got {other:?}"),
        }
        let jsonl = buf.to_jsonl();
        for line in jsonl.lines() {
            crate::json::Json::parse(line).expect("every trace line parses");
        }
    }

    #[test]
    fn budget_trip_lands_in_the_trace_ring() {
        use crate::metrics::TraceEvent;
        let mut e = engine(
            "(literalize n v)
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
            &[("n", vec![Value::Int(0)])],
            EngineOptions {
                trace_events: Some(8),
                budgets: crate::Budgets {
                    max_wm: Some(3),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        e.run().unwrap_err();
        let buf = e.trace_events().unwrap();
        assert!(
            buf.events()
                .any(|ev| matches!(ev, TraceEvent::BudgetTrip { kind: "wm", .. })),
            "trip event recorded"
        );
    }

    #[test]
    fn shard_count_reported_is_the_one_in_effect() {
        // API callers can still pass 0 workers; the matcher clamps to 1
        // and *reports* 1 — labels never claim unused shards.
        let p = compile("(literalize a x) (p r (a ^x <v>) --> (halt))").unwrap();
        let e = ParallelEngine::new(
            &p,
            WorkingMemory::new(&p.classes),
            EngineOptions {
                matcher: MatcherKind::PartitionedRete(0),
                ..Default::default()
            },
        );
        let mm = e.matcher_metrics();
        assert_eq!(mm.shards, 1);
        assert_eq!(mm.kind, "partitioned-rete");
        let e = ParallelEngine::new(
            &p,
            WorkingMemory::new(&p.classes),
            EngineOptions {
                matcher: MatcherKind::PartitionedTreat(4),
                ..Default::default()
            },
        );
        assert_eq!(e.matcher_metrics().shards, 4);
    }

    #[test]
    fn trace_records_fired_rules_per_cycle() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[
                ("count", vec![Value::Int(0)]),
                ("count", vec![Value::Int(1)]),
            ],
            EngineOptions {
                trace: true,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let traces = e.traces();
        assert!(!traces.is_empty());
        assert_eq!(traces[0].cycle, 1);
        assert_eq!(traces[0].fired_rules, vec![("step".to_string(), 2)]);
        let rendered = traces[0].to_string();
        assert!(rendered.contains("stepx2"), "{rendered}");
        // trace off by default
        let mut quiet = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        quiet.run().unwrap();
        assert!(quiet.traces().is_empty());
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        let src = "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 8)) --> (modify 1 ^n (+ <n> 1)) (write at <n>))";
        let facts = [("count", vec![Value::Int(0)])];
        let mut full = engine(src, &facts, EngineOptions::default());
        full.run().unwrap();

        let mut part = engine(src, &facts, EngineOptions::default());
        for _ in 0..3 {
            part.step().unwrap();
        }
        // Roundtrip through the wire format, then resume on a freshly
        // compiled program (interner ids re-derived from strings).
        let snap = Snapshot::from_bytes(&part.checkpoint().to_bytes()).unwrap();
        assert_eq!(snap.cycle, 3);
        let p = compile(src).unwrap();
        let mut resumed = ParallelEngine::resume(&p, &snap, EngineOptions::default()).unwrap();
        let out = resumed.run().unwrap();
        assert!(out.quiescent);

        assert_eq!(resumed.wm().sorted_snapshot(), full.wm().sorted_snapshot());
        let counters = |s: &RunStats| {
            (
                s.cycles,
                s.firings,
                s.adds,
                s.removes,
                s.peak_eligible,
                s.total_eligible,
            )
        };
        // Counters are bit-identical; phase times are wall-clock and are
        // deliberately not compared.
        assert_eq!(counters(resumed.stats()), counters(full.stats()));
        assert_eq!(resumed.log(), full.log());
    }

    #[test]
    fn resume_can_switch_matchers() {
        let src = "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 6)) --> (modify 1 ^n (+ <n> 1)))";
        let facts = [("count", vec![Value::Int(0)])];
        let mut full = engine(src, &facts, EngineOptions::default());
        full.run().unwrap();

        let mut part = engine(src, &facts, EngineOptions::default());
        part.step().unwrap();
        let snap = part.checkpoint();
        let p = compile(src).unwrap();
        let opts = EngineOptions {
            matcher: MatcherKind::Treat,
            ..Default::default()
        };
        let mut resumed = ParallelEngine::resume(&p, &snap, opts).unwrap();
        resumed.run().unwrap();
        assert_eq!(resumed.wm().sorted_snapshot(), full.wm().sorted_snapshot());
    }

    #[test]
    fn resume_rejects_foreign_programs() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        e.step().unwrap();
        let snap = e.checkpoint();
        let other = compile("(literalize other x)").unwrap();
        assert_eq!(
            ParallelEngine::resume(&other, &snap, EngineOptions::default()).err().unwrap(),
            crate::snapshot::SnapshotError::UnknownClass("count".into())
        );
        // A rule whose firing keeps its own support leaves a live
        // refraction entry; resuming on a program without that rule
        // fails on the refraction keys.
        let src = "(literalize count n)
             (literalize out v)
             (p mk (count ^n <n>) --> (make out ^v <n>))";
        let mut e = engine(src, &[("count", vec![Value::Int(0)])], EngineOptions::default());
        e.step().unwrap();
        let snap = e.checkpoint();
        assert!(!snap.refraction.is_empty());
        let no_rule = compile("(literalize count n) (literalize out v)").unwrap();
        assert_eq!(
            ParallelEngine::resume(&no_rule, &snap, EngineOptions::default()).err().unwrap(),
            crate::snapshot::SnapshotError::UnknownRule("mk".into())
        );
    }

    #[test]
    fn wm_budget_trips_with_cycle_number_and_checkpoint() {
        let mut e = engine(
            "(literalize n v)
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
            &[("n", vec![Value::Int(0)])],
            EngineOptions {
                budgets: crate::Budgets {
                    max_wm: Some(5),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Refraction keeps old instantiations from refiring, so only the
        // newest WME spawns a firing: WM grows by one per cycle
        // (2, 3, 4, 5, 6) and trips after cycle 5.
        let err = e.run().unwrap_err();
        match err {
            EngineError::WmBudget { cycle, size, budget } => {
                assert_eq!((cycle, size, budget), (5, 6, 5));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let snap = e.latest_checkpoint().expect("trip stores a checkpoint");
        assert_eq!(snap.cycle, 5);
        assert_eq!(snap.wmes.len(), 6, "checkpoint captures the committed state");
    }

    #[test]
    fn conflict_set_and_delta_budgets_trip_before_any_mutation() {
        let src = "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))";
        let facts = [
            ("cell", vec![Value::Int(1), Value::Int(0)]),
            ("cell", vec![Value::Int(2), Value::Int(0)]),
            ("cell", vec![Value::Int(3), Value::Int(0)]),
        ];
        let mut e = engine(
            src,
            &facts,
            EngineOptions {
                budgets: crate::Budgets {
                    max_conflict_set: Some(2),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::ConflictSetBudget { cycle, width, budget, rules } => {
                assert_eq!((cycle, width, budget), (1, 3, 2));
                assert_eq!(rules, vec!["bump"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(0)), "nothing fired");

        let mut e = engine(
            src,
            &facts,
            EngineOptions {
                budgets: crate::Budgets {
                    max_delta: Some(5),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            // 3 modifies = 3 removes + 3 adds = 6 changes > 5.
            EngineError::DeltaBudget { cycle, size, budget, rules } => {
                assert_eq!((cycle, size, budget), (1, 6, 5));
                assert_eq!(rules, vec!["bump"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(0)), "delta not applied");
        // The stored checkpoint is the pre-cycle state and can resume.
        let snap = e.latest_checkpoint().unwrap().clone();
        assert_eq!(snap.cycle, 0);
        let p = compile(src).unwrap();
        let mut resumed = ParallelEngine::resume(&p, &snap, EngineOptions::default()).unwrap();
        resumed.run().unwrap();
        assert!(resumed.wm().iter().all(|w| w.field(1) == Value::Int(1)));
    }

    #[test]
    fn timeout_trips_at_a_cycle_boundary() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                budgets: crate::Budgets {
                    timeout: Some(std::time::Duration::ZERO),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::Timeout { cycle, budget, .. } => {
                assert_eq!(cycle, 1);
                assert_eq!(budget, std::time::Duration::ZERO);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 0);
    }

    #[test]
    fn periodic_checkpoints_are_captured_during_run() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 7)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                checkpoint_every: Some(3),
                ..Default::default()
            },
        );
        e.run().unwrap();
        // 7 cycles run; the last multiple of 3 is cycle 6.
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 6);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_rhs_panic_yields_structured_error_not_abort() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 9)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                faults: crate::faults::FaultPlan {
                    rhs_panic: Some(crate::faults::FaultPoint::new(3, "step")),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::RhsPanic { rule, payload } => {
                assert_eq!(rule, "step");
                assert!(payload.contains("cycle 3"), "{payload}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The engine survives at the last consistent boundary: cycles 1–2
        // committed, cycle 3 did not.
        assert_eq!(e.stats().cycles, 2);
        assert_eq!(e.wm().iter().next().unwrap().field(0), Value::Int(2));
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 2);
    }

    #[test]
    fn all_matcher_kinds_agree_on_final_wm() {
        let src = "
            (literalize edge from to)
            (literalize reach from to)
            (p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>)
             --> (make reach ^from <a> ^to <b>))
            (p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>)
                     -(reach ^from <a> ^to <c>)
             --> (make reach ^from <a> ^to <c>))";
        let p = compile(src).unwrap();
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let build_wm = || {
            let mut wm = WorkingMemory::new(&p.classes);
            for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1), (2, 5)] {
                wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
            }
            wm
        };
        let mut reference = None;
        for kind in [
            MatcherKind::Naive,
            MatcherKind::Rete,
            MatcherKind::Treat,
            MatcherKind::PartitionedRete(3),
            MatcherKind::PartitionedTreat(2),
        ] {
            let mut e = ParallelEngine::new(
                &p,
                build_wm(),
                EngineOptions {
                    matcher: kind,
                    ..Default::default()
                },
            );
            let out = e.run().unwrap();
            assert!(out.quiescent, "{kind:?}");
            let facts = e.wm().canonical_facts();
            match &reference {
                None => reference = Some(facts),
                Some(r) => assert_eq!(&facts, r, "{kind:?} diverged"),
            }
        }
    }
}
