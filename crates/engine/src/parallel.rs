//! The PARULEL execution engine: match → redact → fire-all.

use crate::fire::{self, EngineError, FireResult};
use crate::interference;
use crate::meta;
use crate::refraction::Refraction;
use crate::stats::{CycleStats, CycleTrace, Outcome, RunStats};
use crate::EngineOptions;
use parulel_core::{Program, WorkingMemory};
use parulel_match::Matcher;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// The set-oriented parallel engine.
///
/// Every cycle: take the eligible (unrefracted) conflict set, run the
/// program's meta-rules to redact conflicting instantiations, optionally
/// apply the interference guard, evaluate every survivor's RHS in
/// parallel, merge the deltas deterministically, and commit the batch to
/// working memory and the incremental matcher.
///
/// Termination: the run ends when the eligible set is empty (quiescence),
/// when everything eligible is redacted (a meta-level deadlock — firing
/// nothing would loop forever, so it counts as quiescence), when a `halt`
/// fires, or at the cycle limit.
pub struct ParallelEngine {
    program: Arc<Program>,
    wm: WorkingMemory,
    matcher: Box<dyn Matcher>,
    refraction: Refraction,
    opts: EngineOptions,
    stats: RunStats,
    log: Vec<String>,
    traces: Vec<CycleTrace>,
    halted: bool,
}

impl ParallelEngine {
    /// Builds an engine over `program` with `wm` as the initial working
    /// memory; the matcher is seeded immediately.
    pub fn new(program: &Program, wm: WorkingMemory, opts: EngineOptions) -> Self {
        let program = Arc::new(program.clone());
        let mut matcher = opts.matcher.build(program.clone());
        matcher.seed(&wm);
        ParallelEngine {
            program,
            wm,
            matcher,
            refraction: Refraction::new(),
            opts,
            stats: RunStats::default(),
            log: Vec::new(),
            traces: Vec::new(),
            halted: false,
        }
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Consumes the engine, yielding the final working memory.
    pub fn into_wm(self) -> WorkingMemory {
        self.wm
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Collected `write` output.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Per-cycle traces (empty unless `EngineOptions::trace` was set).
    pub fn traces(&self) -> &[CycleTrace] {
        &self.traces
    }

    /// The compiled program this engine runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// True once a `halt` action has fired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Injects external working-memory changes between cycles (a live
    /// feed, an embedding application's transaction). The delta is applied
    /// to working memory and pushed through the incremental matcher; the
    /// next [`step`](Self::step) sees the updated conflict set. Returns
    /// the concrete WMEs removed and added.
    pub fn inject(
        &mut self,
        delta: &parulel_core::Delta,
    ) -> (Vec<parulel_core::Wme>, Vec<parulel_core::Wme>) {
        let (removed, added) = self.wm.apply(delta);
        self.matcher.apply(&removed, &added);
        self.refraction.prune(self.matcher.conflict_set());
        (removed, added)
    }

    /// Executes one cycle. Returns `Ok(true)` if at least one
    /// instantiation fired, `Ok(false)` on quiescence.
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let mut cycle = CycleStats::default();

        let t = Instant::now();
        let cs = self.matcher.conflict_set();
        cycle.conflict_set = cs.len();
        let eligible = self.refraction.eligible(cs);
        cycle.eligible = eligible.len();
        cycle.match_time = t.elapsed();
        if eligible.is_empty() {
            return Ok(false);
        }

        let t = Instant::now();
        let redact_out = meta::redact(&self.program, eligible);
        cycle.redacted_meta = redact_out.redacted;
        cycle.meta_rounds = redact_out.rounds;
        let guard_out = interference::guard(&self.program, redact_out.surviving, self.opts.guard);
        cycle.redacted_guard = guard_out.redacted;
        let surviving = guard_out.surviving;
        cycle.redact_time = t.elapsed();
        if surviving.is_empty() {
            // Everything eligible was redacted: firing nothing would
            // repeat forever, so treat as quiescence.
            self.stats.absorb(&cycle);
            return Ok(false);
        }

        let t = Instant::now();
        let program = &self.program;
        let collect_log = self.opts.collect_log;
        let results: Result<Vec<FireResult>, EngineError> = if self.opts.parallel_fire {
            surviving
                .par_iter()
                .map(|inst| fire::fire(program, inst, collect_log))
                .collect()
        } else {
            surviving
                .iter()
                .map(|inst| fire::fire(program, inst, collect_log))
                .collect()
        };
        let (delta, log, halt) = fire::merge(results?);
        cycle.fired = surviving.len();
        cycle.adds = delta.adds.len();
        cycle.removes = delta.removes.len();
        self.refraction.record(surviving.iter());
        cycle.fire_time = t.elapsed();

        // Attribute the incremental network update to match time (it
        // *is* matching); apply time covers WM mutation and refraction
        // upkeep only.
        let t = Instant::now();
        let (removed, added) = self.wm.apply(&delta);
        cycle.apply_time = t.elapsed();
        let t = Instant::now();
        self.matcher.apply(&removed, &added);
        cycle.match_time += t.elapsed();
        let t = Instant::now();
        self.refraction.prune(self.matcher.conflict_set());
        cycle.apply_time += t.elapsed();

        self.log.extend(log);
        self.halted |= halt;
        if self.opts.trace {
            let mut by_rule: parulel_core::FxHashMap<parulel_core::RuleId, usize> =
                parulel_core::FxHashMap::default();
            for inst in &surviving {
                *by_rule.entry(inst.rule).or_default() += 1;
            }
            let mut fired_rules: Vec<(String, usize)> = by_rule
                .into_iter()
                .map(|(r, n)| (self.program.rule_name(r), n))
                .collect();
            fired_rules.sort();
            self.traces.push(CycleTrace {
                cycle: self.stats.cycles + 1,
                eligible: cycle.eligible,
                redacted_meta: cycle.redacted_meta,
                redacted_guard: cycle.redacted_guard,
                fired_rules,
                adds: cycle.adds,
                removes: cycle.removes,
            });
        }
        self.stats.absorb(&cycle);
        Ok(true)
    }

    /// Runs to quiescence, halt, or the cycle limit.
    pub fn run(&mut self) -> Result<Outcome, EngineError> {
        let start = Instant::now();
        let mut quiescent = false;
        let mut hit_cycle_limit = false;
        let first_cycle = self.stats.cycles;
        let first_firings = self.stats.firings;
        loop {
            if self.halted {
                break;
            }
            if self.stats.cycles - first_cycle >= self.opts.max_cycles {
                hit_cycle_limit = true;
                break;
            }
            if !self.step()? {
                quiescent = true;
                break;
            }
        }
        // Per-call numbers: a caller that injects facts and runs again
        // gets this continuation's cycles, not the lifetime total (which
        // lives in `stats`).
        Ok(Outcome {
            cycles: self.stats.cycles - first_cycle,
            firings: self.stats.firings - first_firings,
            halted: self.halted,
            quiescent,
            hit_cycle_limit,
            wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use parulel_core::Value;
    use parulel_lang::compile;

    fn engine(src: &str, facts: &[(&str, Vec<Value>)], opts: EngineOptions) -> ParallelEngine {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(cid, fields.clone());
        }
        ParallelEngine::new(&p, wm, opts)
    }

    #[test]
    fn counter_runs_to_quiescence() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 5)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.quiescent);
        assert!(!out.halted);
        assert_eq!(out.cycles, 5);
        assert_eq!(out.firings, 5);
        let final_n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(final_n, Value::Int(5));
    }

    #[test]
    fn set_oriented_firing_runs_all_instantiations_in_one_cycle() {
        let mut e = engine(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
                ("cell", vec![Value::Int(3), Value::Int(0)]),
                ("cell", vec![Value::Int(4), Value::Int(0)]),
            ],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1, "all four fire simultaneously");
        assert_eq!(out.firings, 4);
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(1)));
    }

    #[test]
    fn meta_redaction_serializes_conflicting_work() {
        // Two jobs want the one machine; the meta-rule keeps the shorter.
        let src = "
            (literalize job id len done)
            (literalize machine busy)
            (p run (job ^id <j> ^len <l> ^done no) (machine ^busy no)
             --> (modify 1 ^done yes))
            (mp shortest-first
              (inst run (job ^len <l1>) _)
              (inst run (job ^len <l2>) _)
              (test (> <l1> <l2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let machine = p.classes.id_of(i.intern("machine")).unwrap();
        let (no, yes) = (i.intern("no"), i.intern("yes"));
        wm.insert(job, vec![Value::Int(1), Value::Int(9), Value::Sym(no)]);
        wm.insert(job, vec![Value::Int(2), Value::Int(3), Value::Sym(no)]);
        wm.insert(machine, vec![Value::Sym(no)]);
        let mut e = ParallelEngine::new(&p, wm, EngineOptions::default());
        let out = e.run().unwrap();
        // Cycle 1: both jobs eligible, meta keeps job 2 only. Cycle 2:
        // job 1 (no longer redacted — job 2 is done) fires.
        assert_eq!(out.cycles, 2);
        assert_eq!(out.firings, 2);
        assert_eq!(e.stats().redacted_meta, 1);
        assert!(e
            .wm()
            .iter_class(job)
            .all(|w| w.field(2) == Value::Sym(yes)));
    }

    #[test]
    fn halt_stops_the_run() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))
             (p stop (count ^n 3) --> (halt))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.halted);
        assert!(!out.quiescent);
        // count reaches 3, `stop` fires (with `step` also firing that
        // cycle), run ends after that cycle: n == 4.
        let n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(n, Value::Int(4));
    }

    #[test]
    fn cycle_limit_catches_runaways() {
        let mut e = engine(
            "(literalize count n)
             (p grow (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                max_cycles: 10,
                ..Default::default()
            },
        );
        let out = e.run().unwrap();
        assert!(out.hit_cycle_limit);
        assert_eq!(out.cycles, 10);
    }

    #[test]
    fn refraction_prevents_refiring_pure_makes() {
        let mut e = engine(
            "(literalize seed v)
             (literalize derived v)
             (p derive (seed ^v <x>) --> (make derived ^v <x>))",
            &[("seed", vec![Value::Int(1)]), ("seed", vec![Value::Int(2)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1);
        assert_eq!(out.firings, 2);
        assert_eq!(e.wm().len(), 4); // 2 seeds + 2 derived, no runaway
    }

    #[test]
    fn write_log_collected_in_key_order() {
        let mut e = engine(
            "(literalize n v)
             (p say (n ^v <x>) --> (write saw <x>) (remove 1))",
            &[("n", vec![Value::Int(10)]), ("n", vec![Value::Int(20)])],
            EngineOptions::default(),
        );
        e.run().unwrap();
        assert_eq!(e.log(), &["saw 10".to_string(), "saw 20".to_string()]);
    }

    #[test]
    fn inject_feeds_the_running_engine() {
        let mut e = engine(
            "(literalize req id)
             (literalize done id)
             (p serve (req ^id <r>) --> (remove 1) (make done ^id <r>))",
            &[("req", vec![Value::Int(1)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 1));
        // Inject two more requests into the live engine.
        let req = e
            .program()
            .classes
            .id_of(e.program().interner.intern("req"))
            .unwrap();
        let mut delta = parulel_core::Delta::new();
        delta.adds.push((req, vec![Value::Int(2)].into()));
        delta.adds.push((req, vec![Value::Int(3)].into()));
        let (removed, added) = e.inject(&delta);
        assert!(removed.is_empty());
        assert_eq!(added.len(), 2);
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 2), "per-call outcome");
        assert_eq!(e.stats().firings, 3, "lifetime stats keep the total");
        let done = e
            .program()
            .classes
            .id_of(e.program().interner.intern("done"))
            .unwrap();
        assert_eq!(e.wm().iter_class(done).count(), 3);
    }

    #[test]
    fn trace_records_fired_rules_per_cycle() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[
                ("count", vec![Value::Int(0)]),
                ("count", vec![Value::Int(1)]),
            ],
            EngineOptions {
                trace: true,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let traces = e.traces();
        assert!(!traces.is_empty());
        assert_eq!(traces[0].cycle, 1);
        assert_eq!(traces[0].fired_rules, vec![("step".to_string(), 2)]);
        let rendered = traces[0].to_string();
        assert!(rendered.contains("stepx2"), "{rendered}");
        // trace off by default
        let mut quiet = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        quiet.run().unwrap();
        assert!(quiet.traces().is_empty());
    }

    #[test]
    fn all_matcher_kinds_agree_on_final_wm() {
        let src = "
            (literalize edge from to)
            (literalize reach from to)
            (p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>)
             --> (make reach ^from <a> ^to <b>))
            (p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>)
                     -(reach ^from <a> ^to <c>)
             --> (make reach ^from <a> ^to <c>))";
        let p = compile(src).unwrap();
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let build_wm = || {
            let mut wm = WorkingMemory::new(&p.classes);
            for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1), (2, 5)] {
                wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
            }
            wm
        };
        let mut reference = None;
        for kind in [
            MatcherKind::Naive,
            MatcherKind::Rete,
            MatcherKind::Treat,
            MatcherKind::PartitionedRete(3),
            MatcherKind::PartitionedTreat(2),
        ] {
            let mut e = ParallelEngine::new(
                &p,
                build_wm(),
                EngineOptions {
                    matcher: kind,
                    ..Default::default()
                },
            );
            let out = e.run().unwrap();
            assert!(out.quiescent, "{kind:?}");
            let facts = e.wm().canonical_facts();
            match &reference {
                None => reference = Some(facts),
                Some(r) => assert_eq!(&facts, r, "{kind:?} diverged"),
            }
        }
    }
}
