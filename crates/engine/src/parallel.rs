//! The PARULEL execution engine: match → redact → fire-all.

use crate::fire::{self, EngineError, FireResult};
use crate::interference;
use crate::meta;
use crate::metrics::{EngineMetrics, Phase, TraceBuffer, TraceEvent};
use crate::refraction::Refraction;
use crate::snapshot::{SnapKey, SnapValue, SnapWme, Snapshot, SnapshotError};
use crate::stats::{CycleStats, CycleTrace, Outcome, RunStats};
use crate::EngineOptions;
use parulel_core::{InstKey, Instantiation, Program, Value, Wme, WmeId, WorkingMemory};
use parulel_match::{Matcher, MatcherMetrics};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Instantiation counts per rule (metrics collection only).
fn counts_by_rule(insts: &[Instantiation], num_rules: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_rules];
    for inst in insts {
        counts[inst.rule.0 as usize] += 1;
    }
    counts
}

/// The set-oriented parallel engine.
///
/// Every cycle: take the eligible (unrefracted) conflict set, run the
/// program's meta-rules to redact conflicting instantiations, optionally
/// apply the interference guard, evaluate every survivor's RHS in
/// parallel, merge the deltas deterministically, and commit the batch to
/// working memory and the incremental matcher.
///
/// Termination: the run ends when the eligible set is empty (quiescence),
/// when everything eligible is redacted (a meta-level deadlock — firing
/// nothing would loop forever, so it counts as quiescence), when a `halt`
/// fires, or at the cycle limit.
pub struct ParallelEngine {
    program: Arc<Program>,
    wm: WorkingMemory,
    matcher: Box<dyn Matcher>,
    refraction: Refraction,
    opts: EngineOptions,
    stats: RunStats,
    log: Vec<String>,
    traces: Vec<CycleTrace>,
    halted: bool,
    latest_checkpoint: Option<Snapshot>,
    metrics: EngineMetrics,
    trace_buf: Option<TraceBuffer>,
}

impl ParallelEngine {
    /// Builds an engine over `program` with `wm` as the initial working
    /// memory; the matcher is seeded immediately.
    pub fn new(program: &Program, wm: WorkingMemory, opts: EngineOptions) -> Self {
        let program = Arc::new(program.clone());
        let mut matcher = opts.matcher.build(program.clone());
        matcher.seed(&wm);
        let metrics = EngineMetrics::new(opts.metrics, program.rules().len());
        let trace_buf = opts.trace_events.map(TraceBuffer::new);
        ParallelEngine {
            program,
            wm,
            matcher,
            refraction: Refraction::new(),
            opts,
            stats: RunStats::default(),
            log: Vec::new(),
            traces: Vec::new(),
            halted: false,
            latest_checkpoint: None,
            metrics,
            trace_buf,
        }
    }

    /// Rebuilds an engine from a [`Snapshot`], continuing the captured
    /// run exactly: working memory keeps its WME ids and id counter, the
    /// refraction table is restored, and statistics/log/traces continue
    /// from the captured values. The matcher is *reseeded* from the
    /// restored working memory (a snapshot never stores matcher state —
    /// the conflict set is a pure function of working memory), so any
    /// [`MatcherKind`](crate::MatcherKind) may be chosen for the
    /// continuation.
    ///
    /// Fails with a structured error if the snapshot references classes
    /// or rules `program` does not define, or if its working memory does
    /// not validate.
    pub fn resume(
        program: &Program,
        snapshot: &Snapshot,
        opts: EngineOptions,
    ) -> Result<Self, SnapshotError> {
        let program = Arc::new(program.clone());
        let interner = &program.interner;
        let mut wmes = Vec::with_capacity(snapshot.wmes.len());
        for sw in &snapshot.wmes {
            let class = program
                .classes
                .id_of(interner.intern(&sw.class))
                .ok_or_else(|| SnapshotError::UnknownClass(sw.class.clone()))?;
            if program.classes.decl(class).arity() != sw.fields.len() {
                return Err(SnapshotError::Malformed("wme arity mismatch"));
            }
            let fields: Vec<Value> = sw
                .fields
                .iter()
                .map(|v| match v {
                    SnapValue::Sym(s) => Value::Sym(interner.intern(s)),
                    SnapValue::Int(i) => Value::Int(*i),
                    SnapValue::Float(x) => Value::Float(*x),
                })
                .collect();
            wmes.push(Wme::new(WmeId(sw.id), class, fields));
        }
        let wm = WorkingMemory::from_parts(&program.classes, wmes, snapshot.next_wme_id)
            .map_err(|e| SnapshotError::BadWm(e.to_string()))?;
        let mut keys = Vec::with_capacity(snapshot.refraction.len());
        for sk in &snapshot.refraction {
            let rule = program
                .rule_by_name(interner.intern(&sk.rule))
                .ok_or_else(|| SnapshotError::UnknownRule(sk.rule.clone()))?;
            keys.push(InstKey {
                rule,
                wmes: sk.wmes.iter().map(|&id| WmeId(id)).collect(),
            });
        }
        let mut matcher = opts.matcher.build(program.clone());
        matcher.seed(&wm);
        // Observability state is not part of the snapshot wire format:
        // a resumed engine starts fresh counters.
        let metrics = EngineMetrics::new(opts.metrics, program.rules().len());
        let trace_buf = opts.trace_events.map(TraceBuffer::new);
        Ok(ParallelEngine {
            program,
            wm,
            matcher,
            refraction: Refraction::from_keys(keys),
            opts,
            stats: snapshot.stats.clone(),
            log: snapshot.log.clone(),
            traces: snapshot.traces.clone(),
            halted: snapshot.halted,
            latest_checkpoint: None,
            metrics,
            trace_buf,
        })
    }

    /// Captures the engine's state as a portable [`Snapshot`]. Valid at
    /// any cycle boundary (between [`step`](Self::step) calls); symbols
    /// and rule names are stored resolved so the snapshot survives
    /// program recompilation.
    pub fn checkpoint(&self) -> Snapshot {
        let interner = &self.program.interner;
        let mut wmes: Vec<SnapWme> = self
            .wm
            .iter()
            .map(|w| SnapWme {
                id: w.id.0,
                class: interner
                    .resolve(self.program.classes.decl(w.class).name)
                    .to_string(),
                fields: w
                    .fields
                    .iter()
                    .map(|v| match v {
                        Value::Sym(s) => SnapValue::Sym(interner.resolve(*s).to_string()),
                        Value::Int(i) => SnapValue::Int(*i),
                        Value::Float(x) => SnapValue::Float(*x),
                    })
                    .collect(),
            })
            .collect();
        wmes.sort_by_key(|w| w.id);
        let mut refraction: Vec<SnapKey> = self
            .refraction
            .keys()
            .map(|k| SnapKey {
                rule: self.program.rule_name(k.rule),
                wmes: k.wmes.iter().map(|id| id.0).collect(),
            })
            .collect();
        refraction.sort();
        Snapshot {
            cycle: self.stats.cycles,
            halted: self.halted,
            next_wme_id: self.wm.next_id(),
            wmes,
            refraction,
            stats: self.stats.clone(),
            log: self.log.clone(),
            traces: self.traces.clone(),
        }
    }

    /// The most recent automatic checkpoint: captured every
    /// `checkpoint_every` cycles during [`run`](Self::run), and
    /// unconditionally when a budget (or injected-fault audit) aborts the
    /// run — the last consistent state before/at the failure.
    pub fn latest_checkpoint(&self) -> Option<&Snapshot> {
        self.latest_checkpoint.as_ref()
    }

    /// Records a checkpoint at the failure boundary and passes the error
    /// through (engine state is always boundary-consistent when a check
    /// trips, so the capture is safe).
    fn trip(&mut self, err: EngineError) -> EngineError {
        self.latest_checkpoint = Some(self.checkpoint());
        if let Some(buf) = &mut self.trace_buf {
            let cycle = err.cycle().unwrap_or(self.stats.cycles + 1);
            buf.push(TraceEvent::BudgetTrip { cycle, kind: err.kind() });
            buf.push(TraceEvent::Checkpoint { cycle: self.stats.cycles });
        }
        err
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Consumes the engine, yielding the final working memory.
    pub fn into_wm(self) -> WorkingMemory {
        self.wm
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Collected `write` output.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Per-cycle traces (empty unless `EngineOptions::trace` was set).
    pub fn traces(&self) -> &[CycleTrace] {
        &self.traces
    }

    /// Observability counters collected so far (all-zero when
    /// `EngineOptions::metrics` is [`crate::MetricsLevel::Off`]).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A live sample of the matcher's internal population — including the
    /// shard count actually in effect for partitioned matchers.
    pub fn matcher_metrics(&self) -> MatcherMetrics {
        self.matcher.metrics()
    }

    /// The structured event ring (populated only when
    /// `EngineOptions::trace_events` is set).
    pub fn trace_events(&self) -> Option<&TraceBuffer> {
        self.trace_buf.as_ref()
    }

    /// The compiled program this engine runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// True once a `halt` action has fired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Injects external working-memory changes between cycles (a live
    /// feed, an embedding application's transaction). The delta is applied
    /// to working memory and pushed through the incremental matcher; the
    /// next [`step`](Self::step) sees the updated conflict set. Returns
    /// the concrete WMEs removed and added.
    pub fn inject(
        &mut self,
        delta: &parulel_core::Delta,
    ) -> (Vec<parulel_core::Wme>, Vec<parulel_core::Wme>) {
        let (removed, added) = self.wm.apply(delta);
        self.matcher.apply(&removed, &added);
        self.refraction.prune(self.matcher.conflict_set());
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::Inject {
                adds: added.len(),
                removes: removed.len(),
            });
        }
        (removed, added)
    }

    /// Executes one cycle. Returns `Ok(true)` if at least one
    /// instantiation fired, `Ok(false)` on quiescence.
    ///
    /// Budget checks ([`crate::guard::Budgets`]) run at points where
    /// engine state is consistent: conflict-set width before anything
    /// fires, delta size after RHS evaluation but before the delta is
    /// recorded or applied, and working-memory size after the cycle
    /// commits. A trip therefore never leaves working memory, the
    /// matcher, and the refraction table out of sync — and every trip
    /// stores a [`Snapshot`] in
    /// [`latest_checkpoint`](Self::latest_checkpoint).
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let cycle_no = self.stats.cycles + 1;
        #[cfg(feature = "fault-inject")]
        self.opts
            .faults
            .maybe_corrupt_matcher(cycle_no, &self.wm, self.matcher.as_mut());
        let mut cycle = CycleStats::default();

        let t = Instant::now();
        let cs = self.matcher.conflict_set();
        cycle.conflict_set = cs.len();
        #[cfg(feature = "fault-inject")]
        let audit = self.opts.faults.audit(cycle_no, &self.program, &self.wm, cs);
        let cs_budget = self
            .opts
            .budgets
            .check_conflict_set(cycle_no, cs, &self.program);
        let eligible = self.refraction.eligible(cs);
        #[cfg(feature = "fault-inject")]
        audit.map_err(|e| self.trip(e))?;
        cs_budget.map_err(|e| self.trip(e))?;
        cycle.eligible = eligible.len();
        cycle.match_time = t.elapsed();
        let collect = self.opts.metrics.per_rule();
        if collect {
            self.metrics.peak_conflict_set =
                self.metrics.peak_conflict_set.max(cycle.conflict_set);
            for inst in &eligible {
                self.metrics.per_rule[inst.rule.0 as usize].matched += 1;
            }
        }
        if eligible.is_empty() {
            return Ok(false);
        }

        let t = Instant::now();
        let num_rules = self.metrics.per_rule.len();
        let pre_meta = collect.then(|| counts_by_rule(&eligible, num_rules));
        let redact_out = meta::redact(&self.program, eligible);
        cycle.redacted_meta = redact_out.redacted;
        cycle.meta_rounds = redact_out.rounds;
        let post_meta = collect.then(|| counts_by_rule(&redact_out.surviving, num_rules));
        let guard_out = interference::guard(&self.program, redact_out.surviving, self.opts.guard);
        cycle.redacted_guard = guard_out.redacted;
        let surviving = guard_out.surviving;
        cycle.redact_time = t.elapsed();
        if let (Some(pre), Some(post)) = (pre_meta, post_meta) {
            // Per-rule redaction attribution: eligible minus post-meta is
            // what the meta-rules took; post-meta minus surviving is what
            // the interference guard took.
            let fin = counts_by_rule(&surviving, num_rules);
            for r in 0..num_rules {
                self.metrics.per_rule[r].redacted_meta += pre[r] - post[r];
                self.metrics.per_rule[r].redacted_guard += post[r] - fin[r];
            }
        }
        if surviving.is_empty() {
            // Everything eligible was redacted: firing nothing would
            // repeat forever, so treat as quiescence.
            self.stats.absorb(&cycle);
            return Ok(false);
        }

        let t = Instant::now();
        let program = &self.program;
        let collect_log = self.opts.collect_log;
        #[cfg(feature = "fault-inject")]
        let faults = &self.opts.faults;
        // Each RHS runs behind `fire::isolate`: a panicking rule becomes
        // `Err(RhsPanic)` for this run instead of tearing down the
        // process (sibling firings on other workers complete first).
        let fire_one = |inst: &Instantiation| -> Result<FireResult, EngineError> {
            fire::isolate(
                || program.rule_name(inst.rule),
                || {
                    #[cfg(feature = "fault-inject")]
                    faults.maybe_fail_rhs(cycle_no, &program.rule_name(inst.rule))?;
                    fire::fire(program, inst, collect_log)
                },
            )
        };
        // Per-firing RHS timing exists only when metrics are on; the Off
        // arm is the seed's exact path (no `Instant::now` per firing).
        let (results, rhs_times): (Vec<FireResult>, Vec<Duration>) = if collect {
            let timed = |inst: &Instantiation| -> Result<(FireResult, Duration), EngineError> {
                let t = Instant::now();
                fire_one(inst).map(|r| (r, t.elapsed()))
            };
            let results: Result<Vec<(FireResult, Duration)>, EngineError> =
                if self.opts.parallel_fire {
                    surviving.par_iter().map(timed).collect()
                } else {
                    surviving.iter().map(timed).collect()
                };
            results.map_err(|e| self.trip(e))?.into_iter().unzip()
        } else {
            let results: Result<Vec<FireResult>, EngineError> = if self.opts.parallel_fire {
                surviving.par_iter().map(fire_one).collect()
            } else {
                surviving.iter().map(fire_one).collect()
            };
            (results.map_err(|e| self.trip(e))?, Vec::new())
        };
        self.opts
            .budgets
            .check_delta(cycle_no, &results, &surviving, &self.program)
            .map_err(|e| self.trip(e))?;
        let (delta, log, halt) = fire::merge(results);
        cycle.fired = surviving.len();
        cycle.adds = delta.adds.len();
        cycle.removes = delta.removes.len();
        self.refraction.record(surviving.iter());
        cycle.fire_time = t.elapsed();
        if collect {
            for (inst, dur) in surviving.iter().zip(&rhs_times) {
                let rm = &mut self.metrics.per_rule[inst.rule.0 as usize];
                rm.fired += 1;
                rm.rhs_time += *dur;
            }
        }

        // Attribute the incremental network update to match time (it
        // *is* matching); apply time covers WM mutation and refraction
        // upkeep only.
        let t = Instant::now();
        let (removed, added) = self.wm.apply(&delta);
        cycle.apply_time = t.elapsed();
        let t = Instant::now();
        self.matcher.apply(&removed, &added);
        cycle.match_time += t.elapsed();
        let t = Instant::now();
        self.refraction.prune(self.matcher.conflict_set());
        cycle.apply_time += t.elapsed();
        if collect {
            self.metrics.peak_wm = self.metrics.peak_wm.max(self.wm.len());
        }
        if self.opts.metrics.matcher() {
            let sample = self.matcher.metrics();
            self.metrics.sample_matcher(&sample);
        }

        self.log.extend(log);
        self.halted |= halt;
        if self.opts.trace {
            let mut by_rule: parulel_core::FxHashMap<parulel_core::RuleId, usize> =
                parulel_core::FxHashMap::default();
            for inst in &surviving {
                *by_rule.entry(inst.rule).or_default() += 1;
            }
            let mut fired_rules: Vec<(String, usize)> = by_rule
                .into_iter()
                .map(|(r, n)| (self.program.rule_name(r), n))
                .collect();
            fired_rules.sort();
            self.traces.push(CycleTrace {
                cycle: self.stats.cycles + 1,
                eligible: cycle.eligible,
                redacted_meta: cycle.redacted_meta,
                redacted_guard: cycle.redacted_guard,
                fired_rules,
                adds: cycle.adds,
                removes: cycle.removes,
            });
        }
        self.stats.absorb(&cycle);
        if let Some(buf) = &mut self.trace_buf {
            let c = self.stats.cycles;
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Match,
                dur: cycle.match_time,
                items: cycle.eligible,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Redact,
                dur: cycle.redact_time,
                items: cycle.redacted_meta + cycle.redacted_guard,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Fire,
                dur: cycle.fire_time,
                items: cycle.fired,
            });
            buf.push(TraceEvent::Span {
                cycle: c,
                phase: Phase::Apply,
                dur: cycle.apply_time,
                items: cycle.adds + cycle.removes,
            });
        }
        self.opts
            .budgets
            .check_wm(cycle_no, self.wm.len())
            .map_err(|e| self.trip(e))?;
        Ok(true)
    }

    /// Runs to quiescence, halt, or the cycle limit.
    ///
    /// The wall-clock budget is checked before each cycle; periodic
    /// checkpoints (`EngineOptions::checkpoint_every`) are captured after
    /// each completed cycle.
    pub fn run(&mut self) -> Result<Outcome, EngineError> {
        let start = Instant::now();
        let mut quiescent = false;
        let mut hit_cycle_limit = false;
        let first_cycle = self.stats.cycles;
        let first_firings = self.stats.firings;
        loop {
            if self.halted {
                break;
            }
            if self.stats.cycles - first_cycle >= self.opts.max_cycles {
                hit_cycle_limit = true;
                break;
            }
            if let Err(e) = self
                .opts
                .budgets
                .check_deadline(self.stats.cycles + 1, start)
            {
                return Err(self.trip(e));
            }
            if !self.step()? {
                quiescent = true;
                break;
            }
            if let Some(every) = self.opts.checkpoint_every {
                if every > 0 && self.stats.cycles.is_multiple_of(every) {
                    self.latest_checkpoint = Some(self.checkpoint());
                    if let Some(buf) = &mut self.trace_buf {
                        buf.push(TraceEvent::Checkpoint { cycle: self.stats.cycles });
                    }
                }
            }
        }
        // Per-call numbers: a caller that injects facts and runs again
        // gets this continuation's cycles, not the lifetime total (which
        // lives in `stats`).
        let outcome = Outcome {
            cycles: self.stats.cycles - first_cycle,
            firings: self.stats.firings - first_firings,
            halted: self.halted,
            quiescent,
            hit_cycle_limit,
            wall: start.elapsed(),
        };
        if let Some(buf) = &mut self.trace_buf {
            buf.push(TraceEvent::RunEnd {
                cycles: outcome.cycles,
                firings: outcome.firings,
                status: if outcome.halted {
                    "halted"
                } else if outcome.hit_cycle_limit {
                    "cycle-limit"
                } else {
                    "quiescent"
                },
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use parulel_core::Value;
    use parulel_lang::compile;

    fn engine(src: &str, facts: &[(&str, Vec<Value>)], opts: EngineOptions) -> ParallelEngine {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        for (class, fields) in facts {
            let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
            wm.insert(cid, fields.clone());
        }
        ParallelEngine::new(&p, wm, opts)
    }

    #[test]
    fn counter_runs_to_quiescence() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 5)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.quiescent);
        assert!(!out.halted);
        assert_eq!(out.cycles, 5);
        assert_eq!(out.firings, 5);
        let final_n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(final_n, Value::Int(5));
    }

    #[test]
    fn set_oriented_firing_runs_all_instantiations_in_one_cycle() {
        let mut e = engine(
            "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))",
            &[
                ("cell", vec![Value::Int(1), Value::Int(0)]),
                ("cell", vec![Value::Int(2), Value::Int(0)]),
                ("cell", vec![Value::Int(3), Value::Int(0)]),
                ("cell", vec![Value::Int(4), Value::Int(0)]),
            ],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1, "all four fire simultaneously");
        assert_eq!(out.firings, 4);
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(1)));
    }

    #[test]
    fn meta_redaction_serializes_conflicting_work() {
        // Two jobs want the one machine; the meta-rule keeps the shorter.
        let src = "
            (literalize job id len done)
            (literalize machine busy)
            (p run (job ^id <j> ^len <l> ^done no) (machine ^busy no)
             --> (modify 1 ^done yes))
            (mp shortest-first
              (inst run (job ^len <l1>) _)
              (inst run (job ^len <l2>) _)
              (test (> <l1> <l2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let machine = p.classes.id_of(i.intern("machine")).unwrap();
        let (no, yes) = (i.intern("no"), i.intern("yes"));
        wm.insert(job, vec![Value::Int(1), Value::Int(9), Value::Sym(no)]);
        wm.insert(job, vec![Value::Int(2), Value::Int(3), Value::Sym(no)]);
        wm.insert(machine, vec![Value::Sym(no)]);
        let mut e = ParallelEngine::new(&p, wm, EngineOptions::default());
        let out = e.run().unwrap();
        // Cycle 1: both jobs eligible, meta keeps job 2 only. Cycle 2:
        // job 1 (no longer redacted — job 2 is done) fires.
        assert_eq!(out.cycles, 2);
        assert_eq!(out.firings, 2);
        assert_eq!(e.stats().redacted_meta, 1);
        assert!(e
            .wm()
            .iter_class(job)
            .all(|w| w.field(2) == Value::Sym(yes)));
    }

    #[test]
    fn halt_stops_the_run() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))
             (p stop (count ^n 3) --> (halt))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.halted);
        assert!(!out.quiescent);
        // count reaches 3, `stop` fires (with `step` also firing that
        // cycle), run ends after that cycle: n == 4.
        let n = e.wm().iter().next().unwrap().field(0);
        assert_eq!(n, Value::Int(4));
    }

    #[test]
    fn cycle_limit_catches_runaways() {
        let mut e = engine(
            "(literalize count n)
             (p grow (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                max_cycles: 10,
                ..Default::default()
            },
        );
        let out = e.run().unwrap();
        assert!(out.hit_cycle_limit);
        assert_eq!(out.cycles, 10);
    }

    #[test]
    fn refraction_prevents_refiring_pure_makes() {
        let mut e = engine(
            "(literalize seed v)
             (literalize derived v)
             (p derive (seed ^v <x>) --> (make derived ^v <x>))",
            &[("seed", vec![Value::Int(1)]), ("seed", vec![Value::Int(2)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1);
        assert_eq!(out.firings, 2);
        assert_eq!(e.wm().len(), 4); // 2 seeds + 2 derived, no runaway
    }

    #[test]
    fn write_log_collected_in_key_order() {
        let mut e = engine(
            "(literalize n v)
             (p say (n ^v <x>) --> (write saw <x>) (remove 1))",
            &[("n", vec![Value::Int(10)]), ("n", vec![Value::Int(20)])],
            EngineOptions::default(),
        );
        e.run().unwrap();
        assert_eq!(e.log(), &["saw 10".to_string(), "saw 20".to_string()]);
    }

    #[test]
    fn inject_feeds_the_running_engine() {
        let mut e = engine(
            "(literalize req id)
             (literalize done id)
             (p serve (req ^id <r>) --> (remove 1) (make done ^id <r>))",
            &[("req", vec![Value::Int(1)])],
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 1));
        // Inject two more requests into the live engine.
        let req = e
            .program()
            .classes
            .id_of(e.program().interner.intern("req"))
            .unwrap();
        let mut delta = parulel_core::Delta::new();
        delta.adds.push((req, vec![Value::Int(2)].into()));
        delta.adds.push((req, vec![Value::Int(3)].into()));
        let (removed, added) = e.inject(&delta);
        assert!(removed.is_empty());
        assert_eq!(added.len(), 2);
        let out = e.run().unwrap();
        assert_eq!((out.cycles, out.firings), (1, 2), "per-call outcome");
        assert_eq!(e.stats().firings, 3, "lifetime stats keep the total");
        let done = e
            .program()
            .classes
            .id_of(e.program().interner.intern("done"))
            .unwrap();
        assert_eq!(e.wm().iter_class(done).count(), 3);
    }

    #[test]
    fn metrics_collect_per_rule_counters_and_peaks() {
        use crate::metrics::MetricsLevel;
        // Reuse the redaction scenario: job 1 is redacted once, then fires.
        let src = "
            (literalize job id len done)
            (literalize machine busy)
            (p run (job ^id <j> ^len <l> ^done no) (machine ^busy no)
             --> (modify 1 ^done yes))
            (mp shortest-first
              (inst run (job ^len <l1>) _)
              (inst run (job ^len <l2>) _)
              (test (> <l1> <l2>))
             --> (redact 1))";
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let i = &p.interner;
        let job = p.classes.id_of(i.intern("job")).unwrap();
        let machine = p.classes.id_of(i.intern("machine")).unwrap();
        let no = i.intern("no");
        wm.insert(job, vec![Value::Int(1), Value::Int(9), Value::Sym(no)]);
        wm.insert(job, vec![Value::Int(2), Value::Int(3), Value::Sym(no)]);
        wm.insert(machine, vec![Value::Sym(no)]);
        let mut e = ParallelEngine::new(
            &p,
            wm,
            EngineOptions {
                metrics: MetricsLevel::Full,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let run_rule = p.rule_by_name(p.interner.intern("run")).unwrap();
        let m = e.metrics().rule(run_rule);
        // Cycle 1: both instantiations eligible, one redacted, one fires.
        // Cycle 2: job 1 eligible again and fires.
        assert_eq!(m.matched, 3);
        assert_eq!(m.fired, 2);
        assert_eq!(m.redacted_meta, 1);
        assert_eq!(m.redacted_guard, 0);
        assert_eq!(e.metrics().peak_wm, 3);
        assert_eq!(e.metrics().peak_conflict_set, 2);
        assert!(e.metrics().peak_alpha_wmes > 0, "Full level samples the matcher");
        // The lifetime totals agree with RunStats.
        let fired_total: u64 = e.metrics().per_rule.iter().map(|r| r.fired).sum();
        assert_eq!(fired_total, e.stats().firings);
        // And a default-options engine collects nothing.
        assert!(ParallelEngine::new(&p, WorkingMemory::new(&p.classes), Default::default())
            .metrics()
            .per_rule
            .is_empty());
    }

    #[test]
    fn trace_events_record_spans_and_run_end() {
        use crate::metrics::TraceEvent;
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                trace_events: Some(64),
                ..Default::default()
            },
        );
        e.run().unwrap();
        let buf = e.trace_events().expect("ring enabled");
        // 3 cycles x 4 spans + run-end.
        assert_eq!(buf.len(), 13);
        assert_eq!(buf.dropped(), 0);
        let spans = buf
            .events()
            .filter(|ev| matches!(ev, TraceEvent::Span { .. }))
            .count();
        assert_eq!(spans, 12);
        match buf.events().last().unwrap() {
            TraceEvent::RunEnd { cycles, firings, status } => {
                assert_eq!((*cycles, *firings), (3, 3));
                assert_eq!(*status, "quiescent");
            }
            other => panic!("expected run-end, got {other:?}"),
        }
        let jsonl = buf.to_jsonl();
        for line in jsonl.lines() {
            crate::json::Json::parse(line).expect("every trace line parses");
        }
    }

    #[test]
    fn budget_trip_lands_in_the_trace_ring() {
        use crate::metrics::TraceEvent;
        let mut e = engine(
            "(literalize n v)
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
            &[("n", vec![Value::Int(0)])],
            EngineOptions {
                trace_events: Some(8),
                budgets: crate::Budgets {
                    max_wm: Some(3),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        e.run().unwrap_err();
        let buf = e.trace_events().unwrap();
        assert!(
            buf.events()
                .any(|ev| matches!(ev, TraceEvent::BudgetTrip { kind: "wm", .. })),
            "trip event recorded"
        );
    }

    #[test]
    fn shard_count_reported_is_the_one_in_effect() {
        // API callers can still pass 0 workers; the matcher clamps to 1
        // and *reports* 1 — labels never claim unused shards.
        let p = compile("(literalize a x) (p r (a ^x <v>) --> (halt))").unwrap();
        let e = ParallelEngine::new(
            &p,
            WorkingMemory::new(&p.classes),
            EngineOptions {
                matcher: MatcherKind::PartitionedRete(0),
                ..Default::default()
            },
        );
        let mm = e.matcher_metrics();
        assert_eq!(mm.shards, 1);
        assert_eq!(mm.kind, "partitioned-rete");
        let e = ParallelEngine::new(
            &p,
            WorkingMemory::new(&p.classes),
            EngineOptions {
                matcher: MatcherKind::PartitionedTreat(4),
                ..Default::default()
            },
        );
        assert_eq!(e.matcher_metrics().shards, 4);
    }

    #[test]
    fn trace_records_fired_rules_per_cycle() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[
                ("count", vec![Value::Int(0)]),
                ("count", vec![Value::Int(1)]),
            ],
            EngineOptions {
                trace: true,
                ..Default::default()
            },
        );
        e.run().unwrap();
        let traces = e.traces();
        assert!(!traces.is_empty());
        assert_eq!(traces[0].cycle, 1);
        assert_eq!(traces[0].fired_rules, vec![("step".to_string(), 2)]);
        let rendered = traces[0].to_string();
        assert!(rendered.contains("stepx2"), "{rendered}");
        // trace off by default
        let mut quiet = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        quiet.run().unwrap();
        assert!(quiet.traces().is_empty());
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        let src = "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 8)) --> (modify 1 ^n (+ <n> 1)) (write at <n>))";
        let facts = [("count", vec![Value::Int(0)])];
        let mut full = engine(src, &facts, EngineOptions::default());
        full.run().unwrap();

        let mut part = engine(src, &facts, EngineOptions::default());
        for _ in 0..3 {
            part.step().unwrap();
        }
        // Roundtrip through the wire format, then resume on a freshly
        // compiled program (interner ids re-derived from strings).
        let snap = Snapshot::from_bytes(&part.checkpoint().to_bytes()).unwrap();
        assert_eq!(snap.cycle, 3);
        let p = compile(src).unwrap();
        let mut resumed = ParallelEngine::resume(&p, &snap, EngineOptions::default()).unwrap();
        let out = resumed.run().unwrap();
        assert!(out.quiescent);

        assert_eq!(resumed.wm().sorted_snapshot(), full.wm().sorted_snapshot());
        let counters = |s: &RunStats| {
            (
                s.cycles,
                s.firings,
                s.adds,
                s.removes,
                s.peak_eligible,
                s.total_eligible,
            )
        };
        // Counters are bit-identical; phase times are wall-clock and are
        // deliberately not compared.
        assert_eq!(counters(resumed.stats()), counters(full.stats()));
        assert_eq!(resumed.log(), full.log());
    }

    #[test]
    fn resume_can_switch_matchers() {
        let src = "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 6)) --> (modify 1 ^n (+ <n> 1)))";
        let facts = [("count", vec![Value::Int(0)])];
        let mut full = engine(src, &facts, EngineOptions::default());
        full.run().unwrap();

        let mut part = engine(src, &facts, EngineOptions::default());
        part.step().unwrap();
        let snap = part.checkpoint();
        let p = compile(src).unwrap();
        let opts = EngineOptions {
            matcher: MatcherKind::Treat,
            ..Default::default()
        };
        let mut resumed = ParallelEngine::resume(&p, &snap, opts).unwrap();
        resumed.run().unwrap();
        assert_eq!(resumed.wm().sorted_snapshot(), full.wm().sorted_snapshot());
    }

    #[test]
    fn resume_rejects_foreign_programs() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions::default(),
        );
        e.step().unwrap();
        let snap = e.checkpoint();
        let other = compile("(literalize other x)").unwrap();
        assert_eq!(
            ParallelEngine::resume(&other, &snap, EngineOptions::default()).err().unwrap(),
            crate::snapshot::SnapshotError::UnknownClass("count".into())
        );
        // A rule whose firing keeps its own support leaves a live
        // refraction entry; resuming on a program without that rule
        // fails on the refraction keys.
        let src = "(literalize count n)
             (literalize out v)
             (p mk (count ^n <n>) --> (make out ^v <n>))";
        let mut e = engine(src, &[("count", vec![Value::Int(0)])], EngineOptions::default());
        e.step().unwrap();
        let snap = e.checkpoint();
        assert!(!snap.refraction.is_empty());
        let no_rule = compile("(literalize count n) (literalize out v)").unwrap();
        assert_eq!(
            ParallelEngine::resume(&no_rule, &snap, EngineOptions::default()).err().unwrap(),
            crate::snapshot::SnapshotError::UnknownRule("mk".into())
        );
    }

    #[test]
    fn wm_budget_trips_with_cycle_number_and_checkpoint() {
        let mut e = engine(
            "(literalize n v)
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
            &[("n", vec![Value::Int(0)])],
            EngineOptions {
                budgets: crate::Budgets {
                    max_wm: Some(5),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Refraction keeps old instantiations from refiring, so only the
        // newest WME spawns a firing: WM grows by one per cycle
        // (2, 3, 4, 5, 6) and trips after cycle 5.
        let err = e.run().unwrap_err();
        match err {
            EngineError::WmBudget { cycle, size, budget } => {
                assert_eq!((cycle, size, budget), (5, 6, 5));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let snap = e.latest_checkpoint().expect("trip stores a checkpoint");
        assert_eq!(snap.cycle, 5);
        assert_eq!(snap.wmes.len(), 6, "checkpoint captures the committed state");
    }

    #[test]
    fn conflict_set_and_delta_budgets_trip_before_any_mutation() {
        let src = "(literalize cell id v)
             (p bump (cell ^id <i> ^v 0) --> (modify 1 ^v 1))";
        let facts = [
            ("cell", vec![Value::Int(1), Value::Int(0)]),
            ("cell", vec![Value::Int(2), Value::Int(0)]),
            ("cell", vec![Value::Int(3), Value::Int(0)]),
        ];
        let mut e = engine(
            src,
            &facts,
            EngineOptions {
                budgets: crate::Budgets {
                    max_conflict_set: Some(2),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::ConflictSetBudget { cycle, width, budget, rules } => {
                assert_eq!((cycle, width, budget), (1, 3, 2));
                assert_eq!(rules, vec!["bump"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(0)), "nothing fired");

        let mut e = engine(
            src,
            &facts,
            EngineOptions {
                budgets: crate::Budgets {
                    max_delta: Some(5),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            // 3 modifies = 3 removes + 3 adds = 6 changes > 5.
            EngineError::DeltaBudget { cycle, size, budget, rules } => {
                assert_eq!((cycle, size, budget), (1, 6, 5));
                assert_eq!(rules, vec!["bump"]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(e.wm().iter().all(|w| w.field(1) == Value::Int(0)), "delta not applied");
        // The stored checkpoint is the pre-cycle state and can resume.
        let snap = e.latest_checkpoint().unwrap().clone();
        assert_eq!(snap.cycle, 0);
        let p = compile(src).unwrap();
        let mut resumed = ParallelEngine::resume(&p, &snap, EngineOptions::default()).unwrap();
        resumed.run().unwrap();
        assert!(resumed.wm().iter().all(|w| w.field(1) == Value::Int(1)));
    }

    #[test]
    fn timeout_trips_at_a_cycle_boundary() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                budgets: crate::Budgets {
                    timeout: Some(std::time::Duration::ZERO),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::Timeout { cycle, budget, .. } => {
                assert_eq!(cycle, 1);
                assert_eq!(budget, std::time::Duration::ZERO);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 0);
    }

    #[test]
    fn periodic_checkpoints_are_captured_during_run() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 7)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                checkpoint_every: Some(3),
                ..Default::default()
            },
        );
        e.run().unwrap();
        // 7 cycles run; the last multiple of 3 is cycle 6.
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 6);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_rhs_panic_yields_structured_error_not_abort() {
        let mut e = engine(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 9)) --> (modify 1 ^n (+ <n> 1)))",
            &[("count", vec![Value::Int(0)])],
            EngineOptions {
                faults: crate::faults::FaultPlan {
                    rhs_panic: Some(crate::faults::FaultPoint::new(3, "step")),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        match e.run().unwrap_err() {
            EngineError::RhsPanic { rule, payload } => {
                assert_eq!(rule, "step");
                assert!(payload.contains("cycle 3"), "{payload}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The engine survives at the last consistent boundary: cycles 1–2
        // committed, cycle 3 did not.
        assert_eq!(e.stats().cycles, 2);
        assert_eq!(e.wm().iter().next().unwrap().field(0), Value::Int(2));
        assert_eq!(e.latest_checkpoint().unwrap().cycle, 2);
    }

    #[test]
    fn all_matcher_kinds_agree_on_final_wm() {
        let src = "
            (literalize edge from to)
            (literalize reach from to)
            (p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>)
             --> (make reach ^from <a> ^to <b>))
            (p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>)
                     -(reach ^from <a> ^to <c>)
             --> (make reach ^from <a> ^to <c>))";
        let p = compile(src).unwrap();
        let edge = p.classes.id_of(p.interner.intern("edge")).unwrap();
        let build_wm = || {
            let mut wm = WorkingMemory::new(&p.classes);
            for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1), (2, 5)] {
                wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
            }
            wm
        };
        let mut reference = None;
        for kind in [
            MatcherKind::Naive,
            MatcherKind::Rete,
            MatcherKind::Treat,
            MatcherKind::PartitionedRete(3),
            MatcherKind::PartitionedTreat(2),
        ] {
            let mut e = ParallelEngine::new(
                &p,
                build_wm(),
                EngineOptions {
                    matcher: kind,
                    ..Default::default()
                },
            );
            let out = e.run().unwrap();
            assert!(out.quiescent, "{kind:?}");
            let facts = e.wm().canonical_facts();
            match &reference {
                None => reference = Some(facts),
                Some(r) => assert_eq!(&facts, r, "{kind:?} diverged"),
            }
        }
    }
}
