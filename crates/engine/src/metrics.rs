//! The observability layer: per-rule counters, engine-wide peaks, and a
//! ring-buffered structured trace.
//!
//! Everything here is gated on [`MetricsLevel`]: at the default
//! [`MetricsLevel::Off`] the engines skip every collection branch, so the
//! hot path is bit-identical to an uninstrumented run (covered by
//! `tests/determinism.rs`). Metrics are *observability* state, not run
//! state — they are deliberately excluded from [`crate::Snapshot`]s, which
//! must stay wire-compatible across releases.

use crate::json::Json;
use crate::stats::RunStats;
use parulel_core::{Program, RuleId};
use parulel_match::MatcherMetrics;
use std::time::Duration;

/// How much the engine records beyond [`RunStats`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum MetricsLevel {
    /// No collection at all — the seed hot path (default).
    #[default]
    Off,
    /// Per-rule counters (matches seen, firings, redactions, RHS time)
    /// plus peak working-memory and conflict-set sizes. Adds a few hash
    /// bumps and one `Instant::now()` per firing per cycle.
    Rules,
    /// Everything in `Rules`, plus a per-cycle sample of the matcher's
    /// internal population ([`MatcherMetrics`]): RETE beta tokens, TREAT
    /// re-enumerations, partitioned shard imbalance. Adds one network
    /// walk per cycle.
    Full,
}

impl MetricsLevel {
    /// True when per-rule counters are collected.
    pub fn per_rule(self) -> bool {
        self >= MetricsLevel::Rules
    }

    /// True when matcher internals are sampled each cycle.
    pub fn matcher(self) -> bool {
        self >= MetricsLevel::Full
    }
}

/// Counters for one rule, accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleMetrics {
    /// Eligible (unrefracted) instantiations of this rule observed at
    /// cycle starts, summed over cycles. An instantiation that stays
    /// eligible across cycles (e.g. repeatedly redacted) counts once per
    /// cycle — this measures match *pressure*, not distinct matches.
    pub matched: u64,
    /// Instantiations of this rule that fired.
    pub fired: u64,
    /// Instantiations redacted by meta-rules.
    pub redacted_meta: u64,
    /// Instantiations redacted by the interference guard.
    pub redacted_guard: u64,
    /// Wall time spent evaluating this rule's RHS (summed across
    /// firings; under parallel fire the sum can exceed the cycle's
    /// fire-phase wall time).
    pub rhs_time: Duration,
}

/// Run-wide metrics collected by an engine when
/// [`EngineOptions::metrics`](crate::EngineOptions) is not `Off`.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// The level this was collected at.
    pub level: MetricsLevel,
    /// Per-rule counters, indexed by `RuleId` order.
    pub per_rule: Vec<RuleMetrics>,
    /// Largest working memory seen at a cycle boundary.
    pub peak_wm: usize,
    /// Widest conflict set seen at a cycle start.
    pub peak_conflict_set: usize,
    /// Peak alpha-memory population sampled from the matcher
    /// (`Full` only).
    pub peak_alpha_wmes: usize,
    /// Peak beta-token population sampled from the matcher (`Full` only;
    /// zero for TREAT/naive, which keep no beta state).
    pub peak_beta_tokens: usize,
    /// Worst per-shard work imbalance sampled from a partitioned matcher
    /// (`Full` only; 1.0 means perfectly balanced or unpartitioned).
    pub max_shard_imbalance: f64,
}

impl EngineMetrics {
    /// An empty collector for `num_rules` rules at `level`.
    pub fn new(level: MetricsLevel, num_rules: usize) -> Self {
        EngineMetrics {
            level,
            per_rule: if level.per_rule() {
                vec![RuleMetrics::default(); num_rules]
            } else {
                Vec::new()
            },
            max_shard_imbalance: 1.0,
            ..Default::default()
        }
    }

    /// The counters for `rule` (zero-default when collection is off).
    pub fn rule(&self, rule: RuleId) -> RuleMetrics {
        self.per_rule.get(rule.0 as usize).cloned().unwrap_or_default()
    }

    /// Folds one matcher sample into the peaks (`Full` level).
    pub fn sample_matcher(&mut self, m: &MatcherMetrics) {
        self.peak_alpha_wmes = self.peak_alpha_wmes.max(m.alpha_wmes);
        self.peak_beta_tokens = self.peak_beta_tokens.max(m.beta_tokens);
        self.max_shard_imbalance = self.max_shard_imbalance.max(m.imbalance());
    }

    /// The `k` busiest rules by firings (ties broken by rule order),
    /// with resolved names. Rules that never matched are skipped.
    pub fn top_rules(&self, program: &Program, k: usize) -> Vec<(String, RuleMetrics)> {
        let mut rows: Vec<(usize, &RuleMetrics)> = self
            .per_rule
            .iter()
            .enumerate()
            .filter(|(_, m)| m.matched > 0 || m.fired > 0)
            .collect();
        rows.sort_by(|a, b| b.1.fired.cmp(&a.1.fired).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows.into_iter()
            .map(|(i, m)| (program.rule_name(RuleId(i as u32)), m.clone()))
            .collect()
    }

    /// Renders the full report (level, peaks, per-rule table) as JSON,
    /// with rule names resolved through `program`. The matcher sample and
    /// run stats give the report enough context to stand alone.
    pub fn to_json(
        &self,
        program: &Program,
        matcher: &MatcherMetrics,
        stats: &RunStats,
    ) -> Json {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let rules: Vec<Json> = self
            .per_rule
            .iter()
            .enumerate()
            .filter(|(_, m)| m.matched > 0 || m.fired > 0)
            .map(|(i, m)| {
                Json::obj()
                    .set("rule", program.rule_name(RuleId(i as u32)))
                    .set("matched", m.matched)
                    .set("fired", m.fired)
                    .set("redacted_meta", m.redacted_meta)
                    .set("redacted_guard", m.redacted_guard)
                    .set("rhs_ms", ms(m.rhs_time))
            })
            .collect();
        Json::obj()
            .set("schema", METRICS_SCHEMA)
            .set("level", format!("{:?}", self.level).to_lowercase())
            .set("cycles", stats.cycles)
            .set("firings", stats.firings)
            .set("redacted_meta", stats.redacted_meta)
            .set("redacted_guard", stats.redacted_guard)
            .set("peak_wm", self.peak_wm)
            .set("peak_conflict_set", self.peak_conflict_set)
            .set("peak_alpha_wmes", self.peak_alpha_wmes)
            .set("peak_beta_tokens", self.peak_beta_tokens)
            .set("max_shard_imbalance", self.max_shard_imbalance)
            .set("match_ms", ms(stats.match_time))
            .set("redact_ms", ms(stats.redact_time))
            .set("fire_ms", ms(stats.fire_time))
            .set("apply_ms", ms(stats.apply_time))
            .set("matcher", matcher_json(matcher))
            .set("rules", rules)
    }
}

/// Schema tag stamped into every metrics report.
pub const METRICS_SCHEMA: &str = "parulel-metrics/v1";

/// Renders a [`MatcherMetrics`] sample (shards recurse one level).
pub fn matcher_json(m: &MatcherMetrics) -> Json {
    let mut j = Json::obj()
        .set("kind", m.kind)
        .set("shards", m.shards)
        .set("rules", m.rules)
        .set("conflict_set", m.conflict_set)
        .set("alpha_wmes", m.alpha_wmes)
        .set("beta_tokens", m.beta_tokens)
        .set("negative_counts", m.negative_counts)
        .set("alpha_nodes", m.alpha_nodes)
        .set("alpha_subscriptions", m.alpha_subscriptions)
        .set("alpha_share_hits", m.alpha_share_hits)
        .set("reenumerations", m.reenumerations)
        .set("recomputes", m.recomputes)
        .set("imbalance", m.imbalance());
    if !m.per_shard.is_empty() {
        let shards: Vec<Json> = m
            .per_shard
            .iter()
            .map(|s| {
                Json::obj()
                    .set("kind", s.kind)
                    .set("rules", s.rules)
                    .set("conflict_set", s.conflict_set)
                    .set("alpha_wmes", s.alpha_wmes)
                    .set("beta_tokens", s.beta_tokens)
                    .set("alpha_nodes", s.alpha_nodes)
                    .set("alpha_share_hits", s.alpha_share_hits)
                    .set("reenumerations", s.reenumerations)
            })
            .collect();
        j = j.set("per_shard", shards);
    }
    j
}

/// Which engine phase a [`TraceEvent::Span`] covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Conflict-set read + refraction filter (plus the incremental
    /// network update at cycle end).
    Match,
    /// Meta-rule redaction + interference guard.
    Redact,
    /// RHS evaluation and delta merge.
    Fire,
    /// Committing the delta to working memory and refraction upkeep.
    Apply,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Match => "match",
            Phase::Redact => "redact",
            Phase::Fire => "fire",
            Phase::Apply => "apply",
        }
    }
}

/// One structured engine event.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A timed phase within a cycle; `items` is phase-specific (matched
    /// instantiations, redactions, firings, delta size).
    Span {
        /// 1-based cycle number.
        cycle: u64,
        /// Which phase.
        phase: Phase,
        /// Phase wall time.
        dur: Duration,
        /// Phase-specific item count.
        items: usize,
    },
    /// A resource budget tripped and aborted the run.
    BudgetTrip {
        /// Cycle at which the budget tripped.
        cycle: u64,
        /// Short machine-readable kind (`timeout`, `wm`, …).
        kind: &'static str,
    },
    /// A checkpoint snapshot was captured.
    Checkpoint {
        /// Cycle the snapshot covers.
        cycle: u64,
    },
    /// External facts were injected between cycles.
    Inject {
        /// WMEs asserted.
        adds: usize,
        /// WMEs retracted.
        removes: usize,
    },
    /// A `run()` call ended.
    RunEnd {
        /// Per-call cycles.
        cycles: u64,
        /// Per-call firings.
        firings: u64,
        /// `quiescent`, `halted`, or `cycle-limit`.
        status: &'static str,
    },
}

impl TraceEvent {
    /// One compact JSON object (a JSONL line, sans newline).
    pub fn to_json(&self) -> Json {
        let us = |d: &Duration| d.as_secs_f64() * 1e6;
        match self {
            TraceEvent::Span { cycle, phase, dur, items } => Json::obj()
                .set("ev", "span")
                .set("cycle", *cycle)
                .set("phase", phase.name())
                .set("us", us(dur))
                .set("items", *items),
            TraceEvent::BudgetTrip { cycle, kind } => Json::obj()
                .set("ev", "budget")
                .set("cycle", *cycle)
                .set("kind", *kind),
            TraceEvent::Checkpoint { cycle } => {
                Json::obj().set("ev", "checkpoint").set("cycle", *cycle)
            }
            TraceEvent::Inject { adds, removes } => Json::obj()
                .set("ev", "inject")
                .set("adds", *adds)
                .set("removes", *removes),
            TraceEvent::RunEnd { cycles, firings, status } => Json::obj()
                .set("ev", "run-end")
                .set("cycles", *cycles)
                .set("firings", *firings)
                .set("status", *status),
        }
    }
}

/// A bounded ring of [`TraceEvent`]s: pushing past capacity evicts the
/// oldest event and bumps [`dropped`](Self::dropped), so a long run keeps
/// its *tail* — the part that explains how it ended.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    cap: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// A ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceBuffer {
            cap,
            events: std::collections::VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the buffer as JSONL: a header line (schema + drop count),
    /// then one line per retained event.
    pub fn to_jsonl(&self) -> String {
        let mut out = Json::obj()
            .set("ev", "trace-header")
            .set("schema", TRACE_SCHEMA)
            .set("events", self.len())
            .set("dropped", self.dropped)
            .render();
        out.push('\n');
        for ev in self.events() {
            out.push_str(&ev.to_json().render());
            out.push('\n');
        }
        out
    }
}

/// Schema tag on the JSONL trace header line.
pub const TRACE_SCHEMA: &str = "parulel-trace/v1";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        assert!(!MetricsLevel::Off.per_rule());
        assert!(!MetricsLevel::Off.matcher());
        assert!(MetricsLevel::Rules.per_rule());
        assert!(!MetricsLevel::Rules.matcher());
        assert!(MetricsLevel::Full.per_rule());
        assert!(MetricsLevel::Full.matcher());
    }

    #[test]
    fn off_level_allocates_nothing_per_rule() {
        let m = EngineMetrics::new(MetricsLevel::Off, 100);
        assert!(m.per_rule.is_empty());
        assert_eq!(m.rule(RuleId(7)), RuleMetrics::default());
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut b = TraceBuffer::new(3);
        for c in 1..=5 {
            b.push(TraceEvent::Checkpoint { cycle: c });
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 2);
        let cycles: Vec<u64> = b
            .events()
            .map(|e| match e {
                TraceEvent::Checkpoint { cycle } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cycles, vec![3, 4, 5]);
        let jsonl = b.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4, "header + 3 events");
        let header = Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        assert_eq!(header.get("dropped").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn every_event_kind_renders_parseable_json() {
        let events = [
            TraceEvent::Span {
                cycle: 1,
                phase: Phase::Fire,
                dur: Duration::from_micros(250),
                items: 4,
            },
            TraceEvent::BudgetTrip { cycle: 2, kind: "wm" },
            TraceEvent::Checkpoint { cycle: 3 },
            TraceEvent::Inject { adds: 2, removes: 0 },
            TraceEvent::RunEnd { cycles: 3, firings: 9, status: "quiescent" },
        ];
        for ev in &events {
            let line = ev.to_json().render();
            let parsed = Json::parse(&line).unwrap();
            assert!(parsed.get("ev").unwrap().as_str().is_some(), "{line}");
        }
    }

    #[test]
    fn sample_matcher_tracks_peaks() {
        let mut m = EngineMetrics::new(MetricsLevel::Full, 2);
        let mut s = MatcherMetrics {
            alpha_wmes: 10,
            beta_tokens: 4,
            ..Default::default()
        };
        m.sample_matcher(&s);
        s.alpha_wmes = 3;
        s.beta_tokens = 9;
        m.sample_matcher(&s);
        assert_eq!(m.peak_alpha_wmes, 10);
        assert_eq!(m.peak_beta_tokens, 9);
        assert_eq!(m.max_shard_imbalance, 1.0);
    }
}
