//! RHS evaluation: turning a surviving instantiation into a [`Delta`]
//! fragment, and merging fragments deterministically.
//!
//! PARULEL fires a whole *set* of instantiations per cycle. Each RHS is
//! evaluated against a snapshot (the WMEs the instantiation matched and
//! its bindings — no live WM access), producing an isolated
//! [`FireResult`]; evaluation is therefore embarrassingly parallel. The
//! fragments are then concatenated in instantiation-key order and
//! normalized, so the merged delta — including the ids assigned to new
//! WMEs — is identical no matter how many threads evaluated it.

use parulel_core::expr::EvalError;
use parulel_core::{Action, Delta, Instantiation, Interner, Program, Value};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors that abort a run.
///
/// Every variant is structured: budget trips carry the 1-based cycle
/// number they fired on and (where one exists) the offending rules, so an
/// embedding application can react programmatically instead of parsing a
/// message.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// An RHS expression failed to evaluate (arithmetic on a symbol,
    /// division by zero).
    RhsEval {
        /// The rule whose RHS failed.
        rule: String,
        /// The underlying evaluation error.
        error: EvalError,
    },
    /// An RHS panicked during parallel evaluation. The panic was caught at
    /// the firing boundary — sibling firings complete and the process
    /// survives; only the run is aborted.
    RhsPanic {
        /// The rule whose RHS panicked.
        rule: String,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The wall-clock budget ([`Budgets::timeout`](crate::guard::Budgets))
    /// expired at a cycle boundary.
    Timeout {
        /// Cycle the run was about to start (1-based).
        cycle: u64,
        /// Time spent when the budget tripped.
        elapsed: Duration,
        /// The configured budget.
        budget: Duration,
    },
    /// Working memory grew past
    /// [`Budgets::max_wm`](crate::guard::Budgets).
    WmBudget {
        /// Cycle that produced the oversized working memory (1-based).
        cycle: u64,
        /// Live WME count when the budget tripped.
        size: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The conflict set grew wider than
    /// [`Budgets::max_conflict_set`](crate::guard::Budgets).
    ConflictSetBudget {
        /// Cycle whose conflict set tripped the budget (1-based).
        cycle: u64,
        /// Conflict-set width at the trip.
        width: usize,
        /// The configured budget.
        budget: usize,
        /// The rules with the most instantiations (worst offenders first).
        rules: Vec<String>,
    },
    /// One cycle's merged delta exceeded
    /// [`Budgets::max_delta`](crate::guard::Budgets).
    DeltaBudget {
        /// Cycle whose delta tripped the budget (1-based).
        cycle: u64,
        /// Total changes (adds + removes) in the cycle's delta.
        size: usize,
        /// The configured budget.
        budget: usize,
        /// The rules contributing the most changes (worst first).
        rules: Vec<String>,
    },
    /// The incremental matcher's conflict set diverged from the naive
    /// recompute-from-scratch oracle (detected by the fault-injection
    /// audit).
    MatcherCorrupt {
        /// Cycle the divergence was detected on (1-based).
        cycle: u64,
        /// Human-readable description of the divergence.
        detail: String,
    },
}

impl EngineError {
    /// A short machine-readable tag for the error variant, used by the
    /// structured trace (`budget` events) and metrics sinks.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::RhsEval { .. } => "rhs-eval",
            EngineError::RhsPanic { .. } => "rhs-panic",
            EngineError::Timeout { .. } => "timeout",
            EngineError::WmBudget { .. } => "wm",
            EngineError::ConflictSetBudget { .. } => "conflict-set",
            EngineError::DeltaBudget { .. } => "delta",
            EngineError::MatcherCorrupt { .. } => "matcher-corrupt",
        }
    }

    /// The cycle the error is attributed to, when the variant carries one
    /// (RHS failures identify a rule instead).
    pub fn cycle(&self) -> Option<u64> {
        match self {
            EngineError::Timeout { cycle, .. }
            | EngineError::WmBudget { cycle, .. }
            | EngineError::ConflictSetBudget { cycle, .. }
            | EngineError::DeltaBudget { cycle, .. }
            | EngineError::MatcherCorrupt { cycle, .. } => Some(*cycle),
            EngineError::RhsEval { .. } | EngineError::RhsPanic { .. } => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RhsEval { rule, error } => {
                write!(f, "RHS of rule '{rule}' failed to evaluate: {error}")
            }
            EngineError::RhsPanic { rule, payload } => {
                write!(f, "RHS of rule '{rule}' panicked: {payload}")
            }
            EngineError::Timeout {
                cycle,
                elapsed,
                budget,
            } => write!(
                f,
                "timeout at cycle {cycle}: {elapsed:?} elapsed (budget {budget:?})"
            ),
            EngineError::WmBudget {
                cycle,
                size,
                budget,
            } => write!(
                f,
                "working memory budget exceeded at cycle {cycle}: {size} WMEs (budget {budget})"
            ),
            EngineError::ConflictSetBudget {
                cycle,
                width,
                budget,
                rules,
            } => write!(
                f,
                "conflict-set budget exceeded at cycle {cycle}: width {width} (budget {budget}); \
                 top rules: {}",
                rules.join(", ")
            ),
            EngineError::DeltaBudget {
                cycle,
                size,
                budget,
                rules,
            } => write!(
                f,
                "delta budget exceeded at cycle {cycle}: {size} changes (budget {budget}); \
                 top rules: {}",
                rules.join(", ")
            ),
            EngineError::MatcherCorrupt { cycle, detail } => {
                write!(f, "matcher corruption detected at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Runs `f` with panic isolation: a panic unwinding out of `f` is caught
/// and converted to [`EngineError::RhsPanic`] naming the rule, instead of
/// tearing down the worker thread (and with it the process).
///
/// The engine wraps every RHS evaluation in this, so one buggy rule aborts
/// the *run* with a structured error while sibling firings, the engine,
/// and the embedding application survive. `rule` is lazy so the happy path
/// never allocates a name.
pub fn isolate<N, F>(rule: N, f: F) -> Result<FireResult, EngineError>
where
    N: FnOnce() -> String,
    F: FnOnce() -> Result<FireResult, EngineError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::RhsPanic {
            rule: rule(),
            // `&*payload`, not `&payload`: a `&Box<dyn Any>` would unsize
            // to `&dyn Any` *as the Box*, and every downcast would miss.
            payload: panic_payload_to_string(&*payload),
        }),
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The isolated effect of firing one instantiation.
#[derive(Clone, Debug, Default)]
pub struct FireResult {
    /// The delta fragment (removes reference matched WME ids; adds carry
    /// evaluated field tuples).
    pub delta: Delta,
    /// Rendered `write` output lines.
    pub log: Vec<String>,
    /// The RHS executed a `halt`.
    pub halt: bool,
}

/// Evaluates the RHS of `inst` (a match of `program`'s rule `inst.rule`).
///
/// `modify` decomposes into remove-then-make: the new tuple starts from
/// the *matched* WME's fields (the cycle-start snapshot) with the listed
/// slots replaced. Two instantiations modifying the same WME therefore
/// both retract it (idempotent) and each assert their own version — the
/// interference PARULEL expects meta-rules (or the guard) to prevent.
pub fn fire(
    program: &Program,
    inst: &Instantiation,
    collect_log: bool,
) -> Result<FireResult, EngineError> {
    let rule = program.rule(inst.rule);
    let mut env: Vec<Value> = inst.env.to_vec();
    let fail = |error: EvalError| EngineError::RhsEval {
        rule: program.rule_name(inst.rule),
        error,
    };
    for (var, expr) in &rule.binds {
        env[var.index()] = expr.eval(&env).map_err(fail)?;
    }
    let mut out = FireResult::default();
    for action in &rule.actions {
        match action {
            Action::Make { class, fields } => {
                let vals: Result<Vec<Value>, EvalError> =
                    fields.iter().map(|e| e.eval(&env)).collect();
                out.delta
                    .adds
                    .push((*class, Arc::from(vals.map_err(fail)?)));
            }
            Action::Remove { ce } => {
                out.delta.removes.push(inst.wmes[*ce as usize].id);
            }
            Action::Modify { ce, sets } => {
                let wme = &inst.wmes[*ce as usize];
                out.delta.removes.push(wme.id);
                let mut fields: Vec<Value> = wme.fields.to_vec();
                for (slot, expr) in sets {
                    fields[*slot as usize] = expr.eval(&env).map_err(fail)?;
                }
                out.delta.adds.push((wme.class, Arc::from(fields)));
            }
            Action::Write(exprs) => {
                if collect_log {
                    out.log.push(render_write(&program.interner, exprs, &env)?);
                }
            }
            Action::Halt => out.halt = true,
        }
    }
    Ok(out)
}

fn render_write(
    interner: &Interner,
    exprs: &[parulel_core::Expr],
    env: &[Value],
) -> Result<String, EngineError> {
    let mut parts = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = e.eval(env).map_err(|error| EngineError::RhsEval {
            rule: String::from("<write>"),
            error,
        })?;
        parts.push(v.display(interner));
    }
    Ok(parts.join(" "))
}

/// Merges per-instantiation results (already in deterministic order) into
/// one normalized cycle delta plus the combined log/halt flag.
pub fn merge(results: Vec<FireResult>) -> (Delta, Vec<String>, bool) {
    let mut delta = Delta::new();
    let mut log = Vec::new();
    let mut halt = false;
    for r in results {
        delta.merge(r.delta);
        log.extend(r.log);
        halt |= r.halt;
    }
    delta.normalize();
    (delta, log, halt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;
    use parulel_match::{Matcher, Rete};

    fn one_inst(
        src: &str,
        setup: impl FnOnce(&Program, &mut WorkingMemory),
    ) -> (Program, Instantiation) {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        setup(&p, &mut wm);
        let mut m = Rete::new(Arc::new(p.clone()));
        m.seed(&wm);
        let cs = m.conflict_set().sorted();
        assert_eq!(cs.len(), 1, "expected exactly one instantiation");
        (p, cs[0].clone())
    }

    #[test]
    fn make_remove_modify_bind_write_halt() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (literalize out v)
             (p r (n ^v <x>)
              -->
              (bind <y> (* <x> 10))
              (make out ^v <y>)
              (modify 1 ^v (+ <x> 1))
              (write result <y>)
              (halt))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(4)]);
            },
        );
        let r = fire(&p, &inst, true).unwrap();
        assert!(r.halt);
        assert_eq!(r.log, vec!["result 40"]);
        // modify = remove + make; plus the explicit make
        assert_eq!(r.delta.removes.len(), 1);
        assert_eq!(r.delta.adds.len(), 2);
        let out_add = &r.delta.adds[0];
        assert_eq!(out_add.1[0], Value::Int(40));
        let modified = &r.delta.adds[1];
        assert_eq!(modified.1[0], Value::Int(5));
    }

    #[test]
    fn rhs_eval_error_is_reported_with_rule_name() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (p crash (n ^v <x>) --> (make n ^v (// <x> 0)))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(1)]);
            },
        );
        let err = fire(&p, &inst, false).unwrap_err();
        match err {
            EngineError::RhsEval { rule, error } => {
                assert_eq!(rule, "crash");
                assert_eq!(error, EvalError::DivideByZero);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn isolate_catches_panics_and_names_the_rule() {
        let ok = isolate(|| unreachable!(), || Ok(FireResult::default()));
        assert!(ok.is_ok(), "no panic, no name resolution");

        let err = isolate(|| "boom".to_string(), || panic!("kaboom {}", 7)).unwrap_err();
        match err {
            EngineError::RhsPanic { rule, payload } => {
                assert_eq!(rule, "boom");
                assert!(payload.contains("kaboom 7"), "{payload}");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // &'static str payloads render too.
        let err = isolate(|| "b".to_string(), || panic!("static")).unwrap_err();
        assert!(err.to_string().contains("static"));
    }

    #[test]
    fn merge_dedupes_removes_and_keeps_add_order() {
        let mut a = FireResult::default();
        a.delta.removes.push(parulel_core::WmeId(5));
        a.delta
            .adds
            .push((parulel_core::ClassId(0), Arc::from(vec![Value::Int(1)])));
        a.log.push("a".into());
        let mut b = FireResult::default();
        b.delta.removes.push(parulel_core::WmeId(5));
        b.delta
            .adds
            .push((parulel_core::ClassId(0), Arc::from(vec![Value::Int(2)])));
        b.halt = true;
        let (delta, log, halt) = merge(vec![a, b]);
        assert_eq!(delta.removes.len(), 1);
        assert_eq!(delta.adds.len(), 2);
        assert_eq!(delta.adds[0].1[0], Value::Int(1));
        assert_eq!(delta.adds[1].1[0], Value::Int(2));
        assert_eq!(log, vec!["a"]);
        assert!(halt);
    }

    #[test]
    fn write_renders_symbols_via_interner() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (p r (n ^v <x>) --> (write the answer is <x>))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(42)]);
            },
        );
        let r = fire(&p, &inst, true).unwrap();
        assert_eq!(r.log, vec!["the answer is 42"]);
        // log collection off ⇒ no allocation
        let r = fire(&p, &inst, false).unwrap();
        assert!(r.log.is_empty());
    }
}
