//! RHS evaluation: turning a surviving instantiation into a [`Delta`]
//! fragment, and merging fragments deterministically.
//!
//! PARULEL fires a whole *set* of instantiations per cycle. Each RHS is
//! evaluated against a snapshot (the WMEs the instantiation matched and
//! its bindings — no live WM access), producing an isolated
//! [`FireResult`]; evaluation is therefore embarrassingly parallel. The
//! fragments are then concatenated in instantiation-key order and
//! normalized, so the merged delta — including the ids assigned to new
//! WMEs — is identical no matter how many threads evaluated it.

use parulel_core::expr::EvalError;
use parulel_core::{Action, Delta, Instantiation, Interner, Program, Value};
use std::fmt;
use std::sync::Arc;

/// Errors that abort a run.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// An RHS expression failed to evaluate (arithmetic on a symbol,
    /// division by zero).
    RhsEval {
        /// The rule whose RHS failed.
        rule: String,
        /// The underlying evaluation error.
        error: EvalError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RhsEval { rule, error } => {
                write!(f, "RHS of rule '{rule}' failed to evaluate: {error}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The isolated effect of firing one instantiation.
#[derive(Clone, Debug, Default)]
pub struct FireResult {
    /// The delta fragment (removes reference matched WME ids; adds carry
    /// evaluated field tuples).
    pub delta: Delta,
    /// Rendered `write` output lines.
    pub log: Vec<String>,
    /// The RHS executed a `halt`.
    pub halt: bool,
}

/// Evaluates the RHS of `inst` (a match of `program`'s rule `inst.rule`).
///
/// `modify` decomposes into remove-then-make: the new tuple starts from
/// the *matched* WME's fields (the cycle-start snapshot) with the listed
/// slots replaced. Two instantiations modifying the same WME therefore
/// both retract it (idempotent) and each assert their own version — the
/// interference PARULEL expects meta-rules (or the guard) to prevent.
pub fn fire(
    program: &Program,
    inst: &Instantiation,
    collect_log: bool,
) -> Result<FireResult, EngineError> {
    let rule = program.rule(inst.rule);
    let mut env: Vec<Value> = inst.env.to_vec();
    let fail = |error: EvalError| EngineError::RhsEval {
        rule: program.rule_name(inst.rule),
        error,
    };
    for (var, expr) in &rule.binds {
        env[var.index()] = expr.eval(&env).map_err(fail)?;
    }
    let mut out = FireResult::default();
    for action in &rule.actions {
        match action {
            Action::Make { class, fields } => {
                let vals: Result<Vec<Value>, EvalError> =
                    fields.iter().map(|e| e.eval(&env)).collect();
                out.delta
                    .adds
                    .push((*class, Arc::from(vals.map_err(fail)?)));
            }
            Action::Remove { ce } => {
                out.delta.removes.push(inst.wmes[*ce as usize].id);
            }
            Action::Modify { ce, sets } => {
                let wme = &inst.wmes[*ce as usize];
                out.delta.removes.push(wme.id);
                let mut fields: Vec<Value> = wme.fields.to_vec();
                for (slot, expr) in sets {
                    fields[*slot as usize] = expr.eval(&env).map_err(fail)?;
                }
                out.delta.adds.push((wme.class, Arc::from(fields)));
            }
            Action::Write(exprs) => {
                if collect_log {
                    out.log.push(render_write(&program.interner, exprs, &env)?);
                }
            }
            Action::Halt => out.halt = true,
        }
    }
    Ok(out)
}

fn render_write(
    interner: &Interner,
    exprs: &[parulel_core::Expr],
    env: &[Value],
) -> Result<String, EngineError> {
    let mut parts = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = e.eval(env).map_err(|error| EngineError::RhsEval {
            rule: String::from("<write>"),
            error,
        })?;
        parts.push(v.display(interner));
    }
    Ok(parts.join(" "))
}

/// Merges per-instantiation results (already in deterministic order) into
/// one normalized cycle delta plus the combined log/halt flag.
pub fn merge(results: Vec<FireResult>) -> (Delta, Vec<String>, bool) {
    let mut delta = Delta::new();
    let mut log = Vec::new();
    let mut halt = false;
    for r in results {
        delta.merge(r.delta);
        log.extend(r.log);
        halt |= r.halt;
    }
    delta.normalize();
    (delta, log, halt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::{Value, WorkingMemory};
    use parulel_lang::compile;
    use parulel_match::{Matcher, Rete};

    fn one_inst(
        src: &str,
        setup: impl FnOnce(&Program, &mut WorkingMemory),
    ) -> (Program, Instantiation) {
        let p = compile(src).unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        setup(&p, &mut wm);
        let mut m = Rete::new(Arc::new(p.clone()));
        m.seed(&wm);
        let cs = m.conflict_set().sorted();
        assert_eq!(cs.len(), 1, "expected exactly one instantiation");
        (p, cs[0].clone())
    }

    #[test]
    fn make_remove_modify_bind_write_halt() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (literalize out v)
             (p r (n ^v <x>)
              -->
              (bind <y> (* <x> 10))
              (make out ^v <y>)
              (modify 1 ^v (+ <x> 1))
              (write result <y>)
              (halt))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(4)]);
            },
        );
        let r = fire(&p, &inst, true).unwrap();
        assert!(r.halt);
        assert_eq!(r.log, vec!["result 40"]);
        // modify = remove + make; plus the explicit make
        assert_eq!(r.delta.removes.len(), 1);
        assert_eq!(r.delta.adds.len(), 2);
        let out_add = &r.delta.adds[0];
        assert_eq!(out_add.1[0], Value::Int(40));
        let modified = &r.delta.adds[1];
        assert_eq!(modified.1[0], Value::Int(5));
    }

    #[test]
    fn rhs_eval_error_is_reported_with_rule_name() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (p crash (n ^v <x>) --> (make n ^v (// <x> 0)))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(1)]);
            },
        );
        let err = fire(&p, &inst, false).unwrap_err();
        match err {
            EngineError::RhsEval { rule, error } => {
                assert_eq!(rule, "crash");
                assert_eq!(error, EvalError::DivideByZero);
            }
        }
    }

    #[test]
    fn merge_dedupes_removes_and_keeps_add_order() {
        let mut a = FireResult::default();
        a.delta.removes.push(parulel_core::WmeId(5));
        a.delta
            .adds
            .push((parulel_core::ClassId(0), Arc::from(vec![Value::Int(1)])));
        a.log.push("a".into());
        let mut b = FireResult::default();
        b.delta.removes.push(parulel_core::WmeId(5));
        b.delta
            .adds
            .push((parulel_core::ClassId(0), Arc::from(vec![Value::Int(2)])));
        b.halt = true;
        let (delta, log, halt) = merge(vec![a, b]);
        assert_eq!(delta.removes.len(), 1);
        assert_eq!(delta.adds.len(), 2);
        assert_eq!(delta.adds[0].1[0], Value::Int(1));
        assert_eq!(delta.adds[1].1[0], Value::Int(2));
        assert_eq!(log, vec!["a"]);
        assert!(halt);
    }

    #[test]
    fn write_renders_symbols_via_interner() {
        let (p, inst) = one_inst(
            "(literalize n v)
             (p r (n ^v <x>) --> (write the answer is <x>))",
            |p, wm| {
                let n = p.classes.id_of(p.interner.intern("n")).unwrap();
                wm.insert(n, vec![Value::Int(42)]);
            },
        );
        let r = fire(&p, &inst, true).unwrap();
        assert_eq!(r.log, vec!["the answer is 42"]);
        // log collection off ⇒ no allocation
        let r = fire(&p, &inst, false).unwrap();
        assert!(r.log.is_empty());
    }
}
