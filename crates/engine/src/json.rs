//! A dependency-free JSON tree: builder, renderer, and parser.
//!
//! The build environment is fully offline (no serde), so the
//! observability layer — metrics reports, trace sinks, and the bench
//! harness's `BENCH_*.json` emitters — shares this minimal implementation.
//! It covers exactly the JSON subset those producers and their validators
//! need: objects with ordered keys, arrays, strings, finite numbers,
//! booleans, and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an
    /// object; panics on non-objects, which is always a programmer error.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The keys of an object, in order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Two-space-indented rendering (for files meant to be diffed).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(if x.is_finite() { x } else { 0.0 })
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push('0'); // JSON has no NaN/Inf; producers never emit them
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at offset {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_render_roundtrip() {
        let doc = Json::obj()
            .set("schema", "x/v1")
            .set("n", 42u64)
            .set("pi", 3.5)
            .set("ok", true)
            .set("none", Json::Null)
            .set("tags", vec![Json::from("a"), Json::from("b\n\"c\"")]);
        let compact = doc.render();
        assert!(compact.contains("\"n\":42"), "{compact}");
        assert!(compact.contains("\\n\\\"c\\\""), "{compact}");
        let back = Json::parse(&compact).unwrap();
        assert_eq!(back, doc);
        let back = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, 2.5], "s": "hi", "b": false}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("b"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.keys(), vec!["a", "s", "b"]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from(-3i64).render(), "-3");
        assert_eq!(Json::from(0.25).render(), "0.25");
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let s = "héllo \u{1}\t∆";
        let rendered = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        assert_eq!(
            Json::parse(r#""Aé""#).unwrap().as_str(),
            Some("Aé")
        );
    }
}
