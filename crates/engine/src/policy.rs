//! Firing policies: the one pluggable phase of the recognize-act cycle.
//!
//! OPS5 and PARULEL share everything — incremental matching, refraction,
//! delta application — except *which instantiations of the eligible set
//! fire each cycle*. That decision is a [`FiringPolicy`]:
//!
//! * [`FiringPolicy::FireAll`] — PARULEL's match → redact → fire-all:
//!   the program's meta-rules run to fixpoint over the eligible set
//!   ([`crate::meta`]), an optional interference guard
//!   ([`crate::interference`]) backstops them, and every survivor fires
//!   in the same cycle.
//! * [`FiringPolicy::SelectOne`] — the OPS5 baseline: a hard-wired
//!   [`Strategy`] (LEX or MEA) picks a single winner per cycle.
//!
//! The cycle driver ([`crate::core::Engine`]) is policy-agnostic; a new
//! policy (fire-k, priority classes…) is a new arm here, not a third
//! engine.

use crate::interference::{self, GuardMode};
use crate::meta;
use parulel_core::{Instantiation, Program};
use std::cmp::Ordering;

/// OPS5 conflict-resolution strategy (used by [`FiringPolicy::SelectOne`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// LEX: refraction, then recency of all timestamps (lexicographic,
    /// newest first), then specificity.
    #[default]
    Lex,
    /// MEA: refraction, then recency of the *first* CE's timestamp, then
    /// the LEX ordering.
    Mea,
}

/// Which instantiations of a cycle's eligible set fire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FiringPolicy {
    /// PARULEL: redact via meta-rules, guard, then fire every survivor
    /// in the same cycle (parallel RHS evaluation, deterministic merge).
    FireAll {
        /// Run the program's meta-rules to fixpoint over the eligible
        /// set. `false` fires the raw eligible set (Table 4's "no
        /// metas" configuration).
        meta: bool,
        /// Interference backstop applied after meta redaction.
        guard: GuardMode,
    },
    /// OPS5 baseline: the strategy selects one winner per cycle.
    /// Meta-rules and guards do not apply — that is exactly the
    /// contrast PARULEL draws.
    SelectOne(Strategy),
}

impl Default for FiringPolicy {
    fn default() -> Self {
        FiringPolicy::fire_all()
    }
}

impl FiringPolicy {
    /// The standard PARULEL policy: meta-rules on, guard off.
    pub fn fire_all() -> Self {
        FiringPolicy::FireAll {
            meta: true,
            guard: GuardMode::Off,
        }
    }

    /// The OPS5 baseline under `strategy`.
    pub fn select_one(strategy: Strategy) -> Self {
        FiringPolicy::SelectOne(strategy)
    }

    /// Stable identifier stored in snapshots and bench output.
    pub fn tag(&self) -> &'static str {
        match self {
            FiringPolicy::FireAll { .. } => "fire-all",
            FiringPolicy::SelectOne(Strategy::Lex) => "select-one-lex",
            FiringPolicy::SelectOne(Strategy::Mea) => "select-one-mea",
        }
    }

    /// Inverse of [`tag`](Self::tag) (fire-all comes back with the
    /// default meta/guard configuration — the tag does not encode it).
    pub fn from_tag(tag: &str) -> Option<FiringPolicy> {
        match tag {
            "fire-all" => Some(FiringPolicy::fire_all()),
            "select-one-lex" => Some(FiringPolicy::SelectOne(Strategy::Lex)),
            "select-one-mea" => Some(FiringPolicy::SelectOne(Strategy::Mea)),
            _ => None,
        }
    }

    /// One-line warning when this policy drops machinery the program
    /// carries: a `SelectOne` policy never consults meta-rules, so a
    /// program that defines them is (knowingly or not) running without
    /// its conflict-resolution knowledge.
    pub(crate) fn dropped_machinery_warning(&self, program: &Program) -> Option<String> {
        match self {
            FiringPolicy::SelectOne(_) if !program.metas().is_empty() => Some(format!(
                "warning: {} ignores the program's {} meta-rule(s); \
                 conflict resolution is the fixed OPS5 strategy",
                self.tag(),
                program.metas().len()
            )),
            _ => None,
        }
    }

    /// The policy decision for one cycle: which of `eligible` fire.
    ///
    /// `collect` is `Some(num_rules)` when per-rule metrics are being
    /// gathered; the fire-all arm then reports its post-meta counts so
    /// the caller can attribute redactions to meta-rules vs the guard.
    pub(crate) fn select(
        &self,
        program: &Program,
        eligible: Vec<Instantiation>,
        collect: Option<usize>,
    ) -> Selection {
        match self {
            FiringPolicy::FireAll { meta, guard } => {
                let (surviving, redacted_meta, meta_rounds) = if *meta {
                    let out = meta::redact(program, eligible);
                    (out.surviving, out.redacted, out.rounds)
                } else {
                    (eligible, 0, 0)
                };
                let post_meta_counts = collect.map(|n| counts_by_rule(&surviving, n));
                let guard_out = interference::guard(program, surviving, *guard);
                Selection {
                    to_fire: guard_out.surviving,
                    redacted_meta,
                    redacted_guard: guard_out.redacted,
                    meta_rounds,
                    post_meta_counts,
                }
            }
            FiringPolicy::SelectOne(strategy) => {
                let winner = eligible
                    .iter()
                    .max_by(|a, b| prefer(program, *strategy, a, b))
                    .expect("non-empty eligible set")
                    .clone();
                Selection {
                    to_fire: vec![winner],
                    redacted_meta: 0,
                    redacted_guard: 0,
                    meta_rounds: 0,
                    post_meta_counts: None,
                }
            }
        }
    }
}

/// What a policy decided for one cycle.
pub(crate) struct Selection {
    /// Instantiations cleared to fire this cycle.
    pub to_fire: Vec<Instantiation>,
    /// How many the meta-rules redacted.
    pub redacted_meta: usize,
    /// How many the interference guard redacted.
    pub redacted_guard: usize,
    /// Meta fixpoint rounds.
    pub meta_rounds: usize,
    /// Per-rule counts after meta redaction but before the guard — only
    /// when requested via `collect`, only meaningful for fire-all.
    pub post_meta_counts: Option<Vec<u64>>,
}

/// Instantiation counts per rule (metrics collection only).
pub(crate) fn counts_by_rule(insts: &[Instantiation], num_rules: usize) -> Vec<u64> {
    let mut counts = vec![0u64; num_rules];
    for inst in insts {
        counts[inst.rule.0 as usize] += 1;
    }
    counts
}

/// Compares two instantiations under the strategy; `Greater` wins.
fn prefer(
    program: &Program,
    strategy: Strategy,
    a: &Instantiation,
    b: &Instantiation,
) -> Ordering {
    let lex = |a: &Instantiation, b: &Instantiation| -> Ordering {
        let (ra, rb) = (a.recency(), b.recency());
        for (x, y) in ra.iter().zip(rb.iter()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        // More timestamps (deeper match) dominates on a tie.
        match ra.len().cmp(&rb.len()) {
            Ordering::Equal => {
                let sa = program.rule(a.rule).specificity();
                let sb = program.rule(b.rule).specificity();
                sa.cmp(&sb)
            }
            other => other,
        }
    };
    let primary = match strategy {
        Strategy::Lex => lex(a, b),
        Strategy::Mea => a
            .first_ce_time()
            .cmp(&b.first_ce_time())
            .then_with(|| lex(a, b)),
    };
    // Final deterministic tie-break: smaller key loses (so the
    // *larger* key wins; any fixed rule works, it just must be total).
    primary.then_with(|| a.key().cmp(&b.key()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for policy in [
            FiringPolicy::fire_all(),
            FiringPolicy::SelectOne(Strategy::Lex),
            FiringPolicy::SelectOne(Strategy::Mea),
        ] {
            assert_eq!(FiringPolicy::from_tag(policy.tag()), Some(policy));
        }
        assert_eq!(FiringPolicy::from_tag("fire-at-will"), None);
    }

    #[test]
    fn select_one_warns_about_dropped_meta_rules() {
        let with_metas = parulel_lang::compile(
            "(literalize a v)
             (p r (a ^v <x>) --> (remove 1))
             (mp m (inst r (a ^v <x>)) (inst r (a ^v <y>))
                   (test (> <x> <y>)) --> (redact 1))",
        )
        .unwrap();
        let warn = FiringPolicy::SelectOne(Strategy::Lex)
            .dropped_machinery_warning(&with_metas)
            .expect("warning expected");
        assert!(warn.contains("select-one-lex"), "{warn}");
        assert!(warn.contains("1 meta-rule"), "{warn}");
        // fire-all uses them; select-one without metas has nothing to drop.
        assert!(FiringPolicy::fire_all()
            .dropped_machinery_warning(&with_metas)
            .is_none());
        let plain = parulel_lang::compile("(literalize a v)").unwrap();
        assert!(FiringPolicy::SelectOne(Strategy::Mea)
            .dropped_machinery_warning(&plain)
            .is_none());
    }
}
