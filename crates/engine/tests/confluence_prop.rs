//! Property test: for *confluent* programs (rules that only `make` into
//! output-only classes), the PARULEL many-firing engine, the serial OPS5
//! engine under both strategies, every guard mode, and every matcher all
//! derive exactly the same set of output facts.
//!
//! This is the semantic heart of the reproduction: set-oriented firing is
//! a pure scheduling change whenever firings cannot interfere.

use parulel_core::ir::{
    Action, ConditionElement, FieldCheck, FieldTest, Polarity, Rule, RuleId, VarId,
};
use parulel_core::{ClassRegistry, Expr, Interner, PredOp, Program, Value, WorkingMemory};
use parulel_engine::{
    Engine, EngineOptions, FiringPolicy, GuardMode, MatcherKind, SerialEngine, Strategy as Ops5,
};
use proptest::prelude::*;

const ARITY: usize = 2;

/// Spec for one generated rule: up to two positive CEs over input classes
/// c0/c1, optional negated CE, and a `make` into the output class with
/// expressions over the bound variables.
#[derive(Clone, Debug)]
struct RuleSpec {
    ce_classes: Vec<u8>,       // 1..=2 entries
    join: bool,                // equate first vars of CE0/CE1
    negated_guard: Option<u8>, // class for a trailing -(...) CE
    out_const: i64,
}

fn build(specs: &[RuleSpec]) -> Program {
    let interner = Interner::new();
    let mut classes = ClassRegistry::new();
    for c in 0..2 {
        classes
            .declare(
                interner.intern(&format!("c{c}")),
                (0..ARITY)
                    .map(|f| interner.intern(&format!("f{f}")))
                    .collect(),
            )
            .unwrap();
    }
    let out = classes
        .declare(
            interner.intern("out"),
            (0..ARITY)
                .map(|f| interner.intern(&format!("o{f}")))
                .collect(),
        )
        .unwrap();
    let mut program = Program::new(interner.clone(), classes);
    for (ri, spec) in specs.iter().enumerate() {
        let mut ces = Vec::new();
        let mut next_var = 0u16;
        for (k, class) in spec.ce_classes.iter().enumerate() {
            let mut tests = vec![FieldTest {
                slot: 0,
                check: if k == 1 && spec.join {
                    FieldCheck::Var(PredOp::Eq, VarId(0))
                } else {
                    FieldCheck::Bind(VarId(next_var))
                },
            }];
            if !(k == 1 && spec.join) {
                next_var += 1;
            }
            tests.push(FieldTest {
                slot: 1,
                check: FieldCheck::Bind(VarId(next_var)),
            });
            next_var += 1;
            ces.push(ConditionElement {
                class: parulel_core::ClassId((*class % 2) as u32),
                polarity: Polarity::Positive,
                tests,
            });
        }
        if let Some(class) = spec.negated_guard {
            // -(cX ^f0 <first var>) — blocks when a same-keyed fact exists
            ces.push(ConditionElement {
                class: parulel_core::ClassId((class % 2) as u32),
                polarity: Polarity::Negative,
                tests: vec![
                    FieldTest {
                        slot: 0,
                        check: FieldCheck::Var(PredOp::Eq, VarId(0)),
                    },
                    FieldTest {
                        slot: 1,
                        check: FieldCheck::Const(PredOp::Eq, Value::Int(spec.out_const % 3)),
                    },
                ],
            });
        }
        let rule = Rule {
            id: RuleId(0),
            name: interner.intern(&format!("r{ri}")),
            ces,
            tests: vec![],
            binds: vec![],
            actions: vec![Action::Make {
                class: out,
                fields: vec![
                    Expr::Var(VarId(0)),
                    Expr::Bin(
                        parulel_core::BinOp::Add,
                        Box::new(Expr::Var(VarId(next_var - 1))),
                        Box::new(Expr::Const(Value::Int(spec.out_const))),
                    ),
                ],
            }],
            num_vars: next_var,
        };
        program.add_rule(rule).unwrap();
    }
    program
}

fn rule_spec() -> impl Strategy<Value = RuleSpec> {
    (
        prop::collection::vec(any::<u8>(), 1..3),
        any::<bool>(),
        prop::option::of(any::<u8>()),
        -5i64..5,
    )
        .prop_map(|(ce_classes, join, negated_guard, out_const)| RuleSpec {
            join: join && ce_classes.len() == 2,
            ce_classes,
            negated_guard,
            out_const,
        })
}

fn facts() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    prop::collection::vec((any::<u8>(), 0i64..4, 0i64..4), 0..12)
}

/// Output facts only (input facts are identical by construction).
fn out_facts(program: &Program, wm: &WorkingMemory) -> Vec<Vec<Value>> {
    let out = program
        .classes
        .id_of(program.interner.intern("out"))
        .unwrap();
    let mut rows: Vec<Vec<Value>> = wm.iter_class(out).map(|w| w.fields.to_vec()).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_engines_derive_the_same_outputs(
        specs in prop::collection::vec(rule_spec(), 1..4),
        input in facts(),
    ) {
        let program = build(&specs);
        let make_wm = || {
            let mut wm = WorkingMemory::new(&program.classes);
            for &(class, a, b) in &input {
                wm.insert(
                    parulel_core::ClassId((class % 2) as u32),
                    vec![Value::Int(a), Value::Int(b)],
                );
            }
            wm
        };

        let mut reference: Option<Vec<Vec<Value>>> = None;
        let mut check = |label: String, facts: Vec<Vec<Value>>| {
            match &reference {
                None => reference = Some(facts),
                Some(r) => assert_eq!(&facts, r, "{label} diverged"),
            }
        };

        for kind in [MatcherKind::Rete, MatcherKind::Treat, MatcherKind::PartitionedRete(3)] {
            for guard in [GuardMode::Off, GuardMode::WriteWrite, GuardMode::Serializable] {
                let mut e = Engine::with_policy(
                    &program,
                    make_wm(),
                    FiringPolicy::FireAll { meta: true, guard },
                    EngineOptions { matcher: kind, ..Default::default() },
                );
                let out = e.run().unwrap();
                prop_assert!(out.quiescent, "{kind:?}/{guard:?}: {out:?}");
                check(format!("parallel {kind:?}/{guard:?}"), out_facts(&program, e.wm()));
            }
        }
        for strategy in [Ops5::Lex, Ops5::Mea] {
            let mut e = SerialEngine::new(
                &program,
                make_wm(),
                strategy,
                EngineOptions::default(),
            );
            let out = e.run().unwrap();
            prop_assert!(out.quiescent);
            check(format!("serial {strategy:?}"), out_facts(&program, e.wm()));
        }
    }
}
