//! Hot-reload contract tests: content-hash diffing, preservation of live
//! match state (alpha nodes / subscriptions) for unchanged rules,
//! refraction survival, and the refusal gallery. The cross-matcher
//! differential suite lives at the workspace root; this file pins the
//! engine-level `reload` semantics.

use parulel_core::{Value, WorkingMemory};
use parulel_engine::core::ReloadError;
use parulel_engine::{Engine, EngineOptions, MatcherKind};
use parulel_lang::{compile, compile_into};

const SRC: &str = "
(literalize job id status)
(literalize cpu id free)
(literalize note v)
(p assign (job ^id <j> ^status waiting) (cpu ^id <c> ^free yes)
 --> (modify 1 ^status running) (modify 2 ^free no))
(p observe (job ^id <j>) --> (make note ^v <j>))
";

fn seeded(src: &str, opts: EngineOptions) -> Engine {
    let p = compile(src).unwrap();
    let mut wm = WorkingMemory::new(&p.classes);
    let i = &p.interner;
    let job = p.classes.id_of(i.intern("job")).unwrap();
    let cpu = p.classes.id_of(i.intern("cpu")).unwrap();
    let (waiting, yes) = (i.intern("waiting"), i.intern("yes"));
    for j in 0..4 {
        wm.insert(job, vec![Value::Int(j), Value::Sym(waiting)]);
    }
    for c in 0..2 {
        wm.insert(cpu, vec![Value::Int(c), Value::Sym(yes)]);
    }
    Engine::new(&p, wm, opts)
}

#[test]
fn identity_reload_is_incremental_and_preserves_alpha_state() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let hashes_before = engine.evaluator().code().name_map();
    let m_before = engine.matcher_metrics();
    assert!(m_before.alpha_nodes > 0);

    let replacement = compile_into(SRC, &engine.program().interner).unwrap();
    let report = engine.reload(&replacement).unwrap();
    assert!(report.added.is_empty() && report.removed.is_empty() && report.changed.is_empty());
    assert_eq!(report.unchanged, 2);
    assert!(report.incremental);

    // Content hashes are stable and the shared alpha network was not
    // rebuilt: same node count, same subscription count.
    assert_eq!(engine.evaluator().code().name_map(), hashes_before);
    let m_after = engine.matcher_metrics();
    assert_eq!(m_after.alpha_nodes, m_before.alpha_nodes);
    assert_eq!(m_after.alpha_subscriptions, m_before.alpha_subscriptions);

    // Refraction survived the reload: the quiescent run stays quiescent
    // (`observe` does not re-fire on the jobs it already noted).
    let wm_before: Vec<_> = engine.wm().sorted_snapshot();
    let out = engine.run().unwrap();
    assert_eq!(out.cycles, 0, "reload re-fired already-fired rules");
    assert_eq!(engine.wm().sorted_snapshot(), wm_before);
}

#[test]
fn changed_rule_is_detected_by_content_hash() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let assign_hash = engine.evaluator().code().hash_of("assign").unwrap();
    let changed_src = SRC.replace("(make note ^v <j>)", "(make note ^v (+ <j> 100))");
    let replacement = compile_into(&changed_src, &engine.program().interner).unwrap();
    let report = engine.reload(&replacement).unwrap();
    assert_eq!(report.changed, vec!["observe".to_string()]);
    assert_eq!(report.unchanged, 1);
    assert!(report.incremental);
    assert_eq!(
        engine.evaluator().code().hash_of("assign").unwrap(),
        assign_hash,
        "untouched rule's content hash moved"
    );
}

#[test]
fn rename_is_remove_plus_add_and_renamed_rule_refires() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let notes_before = engine.wm().sorted_snapshot().len();
    let renamed = SRC.replace("(p observe ", "(p watch ");
    let replacement = compile_into(&renamed, &engine.program().interner).unwrap();
    let report = engine.reload(&replacement).unwrap();
    assert_eq!(report.removed, vec!["observe".to_string()]);
    assert_eq!(report.added, vec!["watch".to_string()]);
    // Same body, new name: the content hash is reused from the store...
    assert_eq!(
        engine.evaluator().code().hash_of("watch"),
        compile_into(SRC, &engine.program().interner)
            .ok()
            .map(|p| parulel_vm::compile_program(&p).hash_of("observe").unwrap())
    );
    // ...but refraction is per-name, so the "new" rule fires afresh.
    engine.run().unwrap();
    assert!(engine.wm().sorted_snapshot().len() > notes_before);
}

#[test]
fn reload_mid_stream_matches_uninterrupted_run() {
    for kind in [
        MatcherKind::Naive,
        MatcherKind::Rete,
        MatcherKind::Treat,
        MatcherKind::PartitionedRete(3),
        MatcherKind::PartitionedTreat(3),
    ] {
        let opts = EngineOptions {
            matcher: kind,
            ..EngineOptions::default()
        };
        let mut control = seeded(SRC, opts.clone());
        control.run().unwrap();

        let mut reloaded = seeded(SRC, opts.clone());
        reloaded.step().unwrap();
        let replacement = compile_into(SRC, &reloaded.program().interner).unwrap();
        reloaded.reload(&replacement).unwrap();
        reloaded.run().unwrap();

        assert_eq!(
            reloaded.wm().sorted_snapshot(),
            control.wm().sorted_snapshot(),
            "identity reload mid-stream diverged under {kind:?}"
        );
        assert_eq!(
            reloaded.stats().firings,
            control.stats().firings,
            "firing count diverged under {kind:?}"
        );
    }
}

#[test]
fn add_only_reload_works_on_every_matcher() {
    // Pure addition: the partitioned matchers cannot place new rules
    // incrementally (no removal anchors an owner), so they fall back to
    // a full rebuild — the result must still be identical.
    let extended = format!("{SRC}(p cleanup (note ^v 99) --> (remove 1))");
    for kind in [
        MatcherKind::Rete,
        MatcherKind::PartitionedRete(2),
        MatcherKind::PartitionedTreat(2),
    ] {
        let opts = EngineOptions {
            matcher: kind,
            ..EngineOptions::default()
        };
        let mut engine = seeded(SRC, opts);
        engine.run().unwrap();
        let replacement = compile_into(&extended, &engine.program().interner).unwrap();
        let report = engine.reload(&replacement).unwrap();
        assert_eq!(report.added, vec!["cleanup".to_string()]);
        assert_eq!(report.unchanged, 2);
        engine.run().unwrap();
        assert_eq!(engine.program().rules().len(), 3, "under {kind:?}");
    }
}

#[test]
fn foreign_interner_is_refused_with_state_intact() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let hashes = engine.evaluator().code().name_map();
    let wm = engine.wm().sorted_snapshot();
    // Compiled in its own symbol space: symbol ids are not interchangeable.
    let foreign = compile(SRC).unwrap();
    assert_eq!(
        engine.reload(&foreign).unwrap_err(),
        ReloadError::ForeignInterner
    );
    assert_eq!(engine.evaluator().code().name_map(), hashes);
    assert_eq!(engine.wm().sorted_snapshot(), wm);
}

#[test]
fn class_changes_are_refused_with_state_intact() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let wm = engine.wm().sorted_snapshot();
    // `cpu` loses a field: live WMEs would no longer type-check.
    let narrowed = SRC
        .replace("(literalize cpu id free)", "(literalize cpu id)")
        .replace(" ^free yes)", ")")
        .replace(" (modify 2 ^free no)", "");
    let replacement = compile_into(&narrowed, &engine.program().interner).unwrap();
    assert_eq!(
        engine.reload(&replacement).unwrap_err(),
        ReloadError::ClassMismatch("cpu".to_string())
    );
    assert_eq!(engine.wm().sorted_snapshot(), wm);
}

#[test]
fn class_table_may_grow() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.run().unwrap();
    let grown = format!("{SRC}(literalize audit v)(p audit-note (note ^v <v>) --> (make audit ^v <v>) (remove 1))");
    let replacement = compile_into(&grown, &engine.program().interner).unwrap();
    let report = engine.reload(&replacement).unwrap();
    assert_eq!(report.added, vec!["audit-note".to_string()]);
    // Appended class forces a matcher rebuild (alpha network is sized by
    // the class table) — and the new rule can then make instances of it.
    assert!(!report.incremental);
    engine.run().unwrap();
    let audit = engine
        .program()
        .classes
        .id_of(engine.program().interner.intern("audit"))
        .unwrap();
    assert!(engine.wm().iter().any(|w| w.class == audit));
}

#[test]
fn checkpoint_after_reload_round_trips() {
    let mut engine = seeded(SRC, EngineOptions::default());
    engine.step().unwrap();
    let changed_src = SRC.replace("(make note ^v <j>)", "(make note ^v (+ <j> 7))");
    let replacement = compile_into(&changed_src, &engine.program().interner).unwrap();
    engine.reload(&replacement).unwrap();
    engine.run().unwrap();

    let snap = engine.checkpoint();
    assert_eq!(snap.eval, engine.evaluator().mode().name());
    assert_eq!(snap.rule_hashes, engine.evaluator().code().name_map());
    let resumed = Engine::resume(engine.program(), &snap, EngineOptions::default()).unwrap();
    assert_eq!(resumed.wm().sorted_snapshot(), engine.wm().sorted_snapshot());
    assert_eq!(resumed.stats().cycles, engine.stats().cycles);
}
