//! Kernel edge cases the serving daemon leans on: degenerate programs
//! (zero rules, empty working memory), cycles whose entire conflict set
//! is redacted, budget limits at their smallest meaningful values (0
//! and 1), and injecting new facts into an engine that already reached
//! fixpoint.

use parulel_core::{Delta, Value};
use parulel_engine::{
    Budgets, Engine, EngineOptions, FiringPolicy, GuardMode, Strategy,
};
use std::sync::Arc;

fn engine(src: &str, policy: FiringPolicy, opts: EngineOptions) -> Engine {
    let (program, wm) = parulel_lang::compile_with_wm(src).expect("compiles");
    Engine::with_policy(&program, wm, policy, opts)
}

/// A one-add inject for the engine's only (or named) class.
fn inject_one(e: &mut Engine, class: &str, fields: &[i64]) {
    let program = e.program().clone();
    let class = program
        .classes
        .id_of(program.interner.intern(class))
        .expect("class");
    let delta = Delta {
        removes: vec![],
        adds: vec![(
            class,
            fields.iter().map(|&i| Value::Int(i)).collect::<Arc<[_]>>(),
        )],
    };
    e.inject(&delta);
}

#[test]
fn zero_rule_program_quiesces_immediately_under_every_policy() {
    let src = "(literalize item x) (wm (item ^x 1) (item ^x 2))";
    for policy in [
        FiringPolicy::fire_all(),
        FiringPolicy::SelectOne(Strategy::Lex),
        FiringPolicy::SelectOne(Strategy::Mea),
    ] {
        let mut e = engine(src, policy, EngineOptions::default());
        let o = e.run().expect("zero-rule run");
        assert_eq!((o.cycles, o.firings), (0, 0), "{policy:?}");
        assert!(!o.halted && !o.hit_cycle_limit, "{policy:?}");
        assert_eq!(e.wm().len(), 2, "{policy:?}: WM must be untouched");
        // Still serviceable after quiescence: injects land, and another
        // run over zero rules stays a no-op rather than erroring.
        inject_one(&mut e, "item", &[3]);
        let o = e.run().expect("re-run");
        assert_eq!((o.cycles, o.firings), (0, 0), "{policy:?}");
        assert_eq!(e.wm().len(), 3, "{policy:?}");
    }
}

#[test]
fn empty_wm_quiesces_then_inject_after_fixpoint_resumes_matching() {
    // Rules but not a single fact: the first run is a zero-cycle
    // fixpoint. The daemon's whole workload model is "open bare, then
    // inject" — a post-fixpoint inject must wake the same engine up.
    let src = "
        (literalize seed x)
        (literalize out x)
        (p grow (seed ^x <v>) --> (make out ^x <v>))
    ";
    let mut e = engine(src, FiringPolicy::fire_all(), EngineOptions::default());
    let o = e.run().expect("empty-WM run");
    assert_eq!((o.cycles, o.firings), (0, 0));
    assert_eq!(e.wm().len(), 0);

    inject_one(&mut e, "seed", &[7]);
    let o = e.run().expect("run after inject");
    assert_eq!(o.firings, 1, "the injected seed must fire `grow`");
    assert_eq!(e.wm().len(), 2);

    // Refraction survives the fixpoint boundary: an *unrelated* second
    // inject must not let the already-fired instantiation fire again.
    inject_one(&mut e, "seed", &[8]);
    let o = e.run().expect("second inject run");
    assert_eq!(o.firings, 1, "only the new seed's instantiation fires");
    assert_eq!(e.wm().len(), 4);
}

#[test]
fn zero_ce_rules_are_rejected_at_compile_never_reaching_a_matcher() {
    // RETE's net builder indexes the first join level unconditionally, so
    // a rule with no positive CE must never survive to matcher build.
    // Both front doors reject it with a structured error: the parser
    // refuses an empty LHS outright, and the IR layer refuses a LHS
    // whose every CE is negative.
    let err = parulel_lang::compile("(literalize item x) (p nop --> (halt))")
        .expect_err("empty LHS must not compile");
    assert!(
        err.to_string().contains("empty LHS"),
        "structured parse error, got: {err}"
    );

    let err =
        parulel_lang::compile("(literalize item x) (p shadow -(item ^x 1) --> (halt))")
            .expect_err("negative-only LHS must not compile");
    assert!(
        err.to_string().contains("no positive condition element"),
        "structured IR error, got: {err}"
    );
}

#[test]
fn meta_rule_redacting_the_entire_conflict_set_is_quiescence() {
    // The redact-everything meta-rule: every instantiation of `grow`
    // matches the unconditional (inst grow) CE. Firing nothing forever
    // would loop, so the kernel must treat the empty surviving set as
    // quiescence on cycle 1 — with zero firings and the redactions
    // accounted.
    let src = "
        (literalize seed x)
        (literalize out x)
        (wm (seed ^x 1) (seed ^x 2) (seed ^x 3))
        (p grow (seed ^x <v>) --> (make out ^x <v>))
        (mp veto (inst grow) --> (redact 1))
    ";
    let mut e = engine(src, FiringPolicy::fire_all(), EngineOptions::default());
    let o = e.run().expect("fully-redacted run");
    assert_eq!(o.firings, 0, "nothing survives the meta-rule");
    assert!(!o.halted && !o.hit_cycle_limit);
    assert_eq!(e.stats().redacted_meta, 3, "all three instantiations redacted");
    assert_eq!(e.wm().len(), 3, "no out facts were made");
}

#[test]
fn serializable_guard_redacts_interfering_firings_on_cycle_one() {
    // Two rules race to modify the same WME: under GuardMode::Off both
    // fire on cycle 1; under the serializable guard only the first (in
    // deterministic key order) may, and the redaction is counted.
    let src = "
        (literalize cell n)
        (wm (cell ^n 0))
        (p bump-a (cell ^n <v>) (test (= <v> 0)) --> (modify 1 ^n 1))
        (p bump-b (cell ^n <v>) (test (= <v> 0)) --> (modify 1 ^n 2))
    ";
    let mut off = engine(src, FiringPolicy::fire_all(), EngineOptions::default());
    off.run().expect("guard-off run");
    assert_eq!(off.stats().redacted_guard, 0);

    for guard in [GuardMode::WriteWrite, GuardMode::Serializable] {
        let mut e = engine(
            src,
            FiringPolicy::FireAll { meta: true, guard },
            EngineOptions::default(),
        );
        let o = e.run().expect("guarded run");
        assert_eq!(o.firings, 1, "{guard:?}: exactly one interfering firing");
        assert_eq!(
            e.stats().redacted_guard,
            1,
            "{guard:?}: the loser must be redacted, not fired"
        );
        // The surviving modify rewrote the cell away from 0, so the
        // redacted instantiation is gone next cycle: fixpoint, one cell.
        assert_eq!(e.wm().len(), 1);
    }
}

#[test]
fn budgets_at_exactly_zero_trip_on_first_use() {
    let src = "
        (literalize seed x)
        (literalize out x)
        (wm (seed ^x 1))
        (p grow (seed ^x <v>) --> (make out ^x <v>))
    ";
    let cases: [(Budgets, &str); 3] = [
        (
            Budgets {
                max_wm: Some(0),
                ..Budgets::unlimited()
            },
            "wm",
        ),
        (
            Budgets {
                max_conflict_set: Some(0),
                ..Budgets::unlimited()
            },
            "conflict-set",
        ),
        (
            Budgets {
                max_delta: Some(0),
                ..Budgets::unlimited()
            },
            "delta",
        ),
    ];
    for (budgets, kind) in cases {
        let mut e = engine(
            src,
            FiringPolicy::fire_all(),
            EngineOptions {
                budgets,
                ..EngineOptions::default()
            },
        );
        let err = e.run().expect_err("budget 0 must trip");
        assert_eq!(err.kind(), kind);
        assert_eq!(err.cycle(), Some(1), "{kind}: trips on the first cycle");
        // Every trip leaves a resumable checkpoint behind.
        assert!(e.latest_checkpoint().is_some(), "{kind}");
    }
}

#[test]
fn budgets_at_exactly_one_admit_one_unit_then_trip() {
    // max_conflict_set 1 / max_delta 1 fit this program exactly (one
    // instantiation, one added WME per cycle); max_wm 1 is exceeded the
    // moment the first `make` commits.
    let src = "
        (literalize seed x)
        (literalize out x)
        (wm (seed ^x 1))
        (p grow (seed ^x <v>) --> (make out ^x <v>))
    ";
    for budgets in [
        Budgets {
            max_conflict_set: Some(1),
            ..Budgets::unlimited()
        },
        Budgets {
            max_delta: Some(1),
            ..Budgets::unlimited()
        },
    ] {
        let mut e = engine(
            src,
            FiringPolicy::fire_all(),
            EngineOptions {
                budgets,
                ..EngineOptions::default()
            },
        );
        let o = e.run().expect("budget 1 fits this program");
        assert_eq!(o.firings, 1);
        assert_eq!(e.wm().len(), 2);
    }
    let mut e = engine(
        src,
        FiringPolicy::fire_all(),
        EngineOptions {
            budgets: Budgets {
                max_wm: Some(1),
                ..Budgets::unlimited()
            },
            ..EngineOptions::default()
        },
    );
    let err = e.run().expect_err("wm grew to 2 > 1");
    assert_eq!(err.kind(), "wm");
    assert_eq!(err.cycle(), Some(1));
}

#[test]
fn cycle_limits_of_zero_and_one_bound_the_run_exactly() {
    // An endless ping-pong program: never quiesces on its own.
    let src = "
        (literalize cell n)
        (wm (cell ^n 0))
        (p flip (cell ^n 0) --> (modify 1 ^n 1))
        (p flop (cell ^n 1) --> (modify 1 ^n 0))
    ";
    let mut e = engine(
        src,
        FiringPolicy::fire_all(),
        EngineOptions {
            max_cycles: 0,
            ..EngineOptions::default()
        },
    );
    let o = e.run().expect("limit 0");
    assert!(o.hit_cycle_limit);
    assert_eq!((o.cycles, o.firings), (0, 0), "limit 0 runs nothing");

    let mut e = engine(
        src,
        FiringPolicy::fire_all(),
        EngineOptions {
            max_cycles: 1,
            ..EngineOptions::default()
        },
    );
    let o = e.run().expect("limit 1");
    assert!(o.hit_cycle_limit);
    assert_eq!((o.cycles, o.firings), (1, 1), "limit 1 runs exactly one cycle");
    // The limit is per run() call: a second call advances one more cycle.
    let o = e.run().expect("limit 1, second call");
    assert!(o.hit_cycle_limit);
    assert_eq!((o.cycles, o.firings), (1, 1));
}
