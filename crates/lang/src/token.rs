//! Token definitions for the PARULEL lexer.

use crate::error::Span;
use parulel_core::expr::PredOp;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<<` — opens a disjunction of constants.
    LDisj,
    /// `>>` — closes a disjunction.
    RDisj,
    /// `-->`
    Arrow,
    /// `-` immediately before `(` — marks a negated CE; also the binary
    /// minus inside arithmetic calls.
    Minus,
    /// `^attr`
    Attr(String),
    /// `<name>`
    Var(String),
    /// A bare symbol / identifier (`job`, `nil`, `yes`, `+`, `mod`, …).
    Sym(String),
    /// A string literal (interned as a symbol at compile time).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A comparison predicate: `=`, `<>`, `<`, `<=`, `>`, `>=`.
    Pred(PredOp),
    /// `_` — wildcard (meta-rule positional patterns).
    Wild,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LDisj => write!(f, "<<"),
            Tok::RDisj => write!(f, ">>"),
            Tok::Arrow => write!(f, "-->"),
            Tok::Minus => write!(f, "-"),
            Tok::Attr(a) => write!(f, "^{a}"),
            Tok::Var(v) => write!(f, "<{v}>"),
            Tok::Sym(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x:?}"),
            Tok::Pred(p) => write!(f, "{p}"),
            Tok::Wild => write!(f, "_"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}
