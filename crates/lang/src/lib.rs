//! # parulel-lang
//!
//! The PARULEL surface language: an OPS5-style s-expression syntax for
//! classes (`literalize`), object-level rules (`p`), and meta-rules (`mp`),
//! compiled to the [`parulel_core`] IR.
//!
//! ## Syntax overview
//!
//! ```lisp
//! (literalize job id len machine status)
//! (literalize machine id free)
//!
//! (p schedule
//!   (job ^id <j> ^len <l> ^machine nil ^status pending)
//!   (machine ^id <m> ^free yes)
//!   -(halted)                          ; negated CE
//!   (test (> <l> 0))                   ; predicate test
//!  -->
//!   (modify 1 ^machine <m> ^status running)
//!   (modify 2 ^free no)
//!   (write scheduled <j> on <m>))
//!
//! (mp one-job-per-machine              ; meta-rule
//!   (inst schedule (job ^len <l1>) (machine ^id <m>))
//!   (inst schedule (job ^len <l2>) (machine ^id <m>))
//!   (test (> <l1> <l2>))
//!  -->
//!   (redact 1))
//! ```
//!
//! Attribute value forms inside a pattern:
//!
//! * `^attr pending` / `^attr 3` / `^attr 1.5` — constant equality
//! * `^attr <v>` — variable (first occurrence binds, later ones test)
//! * `^attr > 3`, `^attr <> <v>` — single predicate restriction
//! * `^attr { > 0 <= <max> }` — conjunction of restrictions
//! * `^attr << red green blue >>` — disjunction of constants
//!
//! RHS actions: `make`, `remove k`, `modify k ^attr val…`, `bind <v> expr`,
//! `write …`, `halt`. Arithmetic: `(+ a b)`, `(- a b)`, `(* a b)`,
//! `(// a b)`, `(mod a b)` — nestable.
//!
//! ## Entry points
//!
//! * [`parse`] — source → [`ast::SrcProgram`]
//! * [`compile`] — source → [`parulel_core::Program`] (parse + semantic
//!   analysis + IR generation)
//! * [`printer::print_program`] — AST → canonical source (round-trips
//!   through [`parse`]; property-tested)

#![warn(missing_docs)]

pub mod ast;
pub mod compiler;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::SrcProgram;
pub use compiler::{compile_ast, compile_ast_in};
pub use error::{LangError, Span};

/// Parses PARULEL source into an AST.
pub fn parse(src: &str) -> Result<ast::SrcProgram, LangError> {
    parser::Parser::new(src)?.parse_program()
}

/// Compiles PARULEL source to an executable [`parulel_core::Program`].
/// Any `(wm …)` blocks are validated but not materialized — use
/// [`compile_with_wm`] when the source carries its own initial facts.
pub fn compile(src: &str) -> Result<parulel_core::Program, LangError> {
    compile_ast(&parse(src)?)
}

/// Compiles PARULEL source into an existing symbol space (see
/// [`compile_ast_in`]) — the hot-reload entry point: symbols shared with
/// the running program keep their interned ids.
pub fn compile_into(
    src: &str,
    interner: &parulel_core::Interner,
) -> Result<parulel_core::Program, LangError> {
    compile_ast_in(&parse(src)?, interner.clone())
}

/// Compiles PARULEL source *and* materializes its `(wm …)` blocks into an
/// initial working memory — everything a self-contained program file
/// needs to run.
pub fn compile_with_wm(
    src: &str,
) -> Result<(parulel_core::Program, parulel_core::WorkingMemory), LangError> {
    let ast = parse(src)?;
    let program = compile_ast(&ast)?;
    let wm = compiler::initial_wm(&program, &ast)?;
    Ok((program, wm))
}
