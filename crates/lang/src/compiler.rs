//! Semantic analysis and lowering from AST to the [`parulel_core`] IR.
//!
//! Responsibilities:
//!
//! * build the class registry from `literalize` declarations;
//! * resolve attribute names to field slots;
//! * allocate per-rule variable ids in first-occurrence order, enforcing
//!   the binding discipline (first occurrence binds; predicates on unbound
//!   variables are errors; variables first bound inside a negated CE are
//!   local to that CE);
//! * anchor `test` CEs at the earliest join position where their variables
//!   are bound;
//! * map CE designators in `remove`/`modify` to positive-CE ordinals;
//! * validate meta-rules against the object rules they reference
//!   (positional pattern classes must agree).

use crate::ast::{self, AstExpr, AstMeta, AstRule, AstTest, Ce, Decl, MetaCeAst, MetaPat, Term};
use crate::error::{LangError, Span};
use parulel_core::hash::{FxHashMap, FxHashSet};
use parulel_core::ir::{
    Action, CePattern, ConditionElement, FieldCheck, FieldTest, MetaAction, MetaCe, MetaRule,
    MetaRuleId, Polarity, Program, Rule, RuleId, RuleTest, VarId,
};
use parulel_core::{ClassRegistry, Expr, Interner, PredOp, Symbol, TestExpr, Value};

/// Compiles a parsed program to executable IR.
pub fn compile_ast(ast: &ast::SrcProgram) -> Result<Program, LangError> {
    compile_ast_in(ast, Interner::new())
}

/// Compiles a parsed program into an *existing* symbol space.
///
/// Hot reload compiles the replacement program with the running session's
/// interner so that symbols already referenced by live WMEs (and by
/// matcher-internal state) keep their ids; genuinely new symbols are
/// appended. The interner is shared, not copied — compile errors may
/// leave extra (harmless) symbols interned.
pub fn compile_ast_in(ast: &ast::SrcProgram, interner: Interner) -> Result<Program, LangError> {
    let mut classes = ClassRegistry::new();
    for decl in &ast.decls {
        if let Decl::Literalize { name, attrs, span } = decl {
            let name_sym = interner.intern(name);
            let attr_syms: Vec<Symbol> = attrs.iter().map(|a| interner.intern(a)).collect();
            classes
                .declare(name_sym, attr_syms)
                .map_err(|e| LangError::new(format!("in (literalize {name} …): {e}"), *span))?;
        }
    }

    let mut program = Program::new(interner, classes);

    for rule in ast.rules() {
        let compiled = compile_rule(&program, rule)?;
        program
            .add_rule(compiled)
            .map_err(|e| LangError::new(format!("in rule {}: {e}", rule.name), rule.span))?;
    }
    for meta in ast.metas() {
        let compiled = compile_meta(&program, meta)?;
        program
            .add_meta(compiled)
            .map_err(|e| LangError::new(format!("in meta-rule {}: {e}", meta.name), meta.span))?;
    }
    Ok(program)
}

/// Builds the initial working memory from a program's `(wm …)` blocks.
/// Every fact must be ground: attribute specs restricted to a single
/// constant equality; unlisted attributes default to `nil`.
pub fn initial_wm(
    program: &Program,
    ast: &ast::SrcProgram,
) -> Result<parulel_core::WorkingMemory, LangError> {
    let mut wm = parulel_core::WorkingMemory::new(&program.classes);
    for fact in ast.wm_facts() {
        if fact.negated {
            return Err(LangError::new("a WM fact cannot be negated", fact.span));
        }
        let class_sym = program.interner.intern(&fact.class);
        let class = program.classes.id_of(class_sym).ok_or_else(|| {
            LangError::new(
                format!("unknown class '{}' in wm fact", fact.class),
                fact.span,
            )
        })?;
        let decl = program.classes.decl(class);
        let mut fields = vec![Value::NIL; decl.arity()];
        for spec in &fact.attrs {
            let slot = decl
                .slot_of(program.interner.intern(&spec.attr))
                .ok_or_else(|| {
                    LangError::new(
                        format!("class '{}' has no attribute ^{}", fact.class, spec.attr),
                        fact.span,
                    )
                })?;
            match spec.restrictions.as_slice() {
                [ast::Restriction::Cmp(PredOp::Eq, Term::Const(c))] => {
                    fields[slot] = const_value(&program.interner, c);
                }
                _ => {
                    return Err(LangError::new(
                        format!("wm fact field ^{} must be a single constant", spec.attr),
                        fact.span,
                    ))
                }
            }
        }
        wm.insert(class, fields);
    }
    Ok(wm)
}

/// Tracks variable allocation for one rule (or meta-rule).
struct VarCtx {
    ids: FxHashMap<String, VarId>,
    /// Variables first bound inside a negated CE: usable only there.
    locals: FxHashSet<String>,
    next: u16,
}

impl VarCtx {
    fn new() -> Self {
        VarCtx {
            ids: FxHashMap::default(),
            locals: FxHashSet::default(),
            next: 0,
        }
    }

    fn alloc(&mut self, name: &str, span: Span) -> Result<VarId, LangError> {
        if self.next == u16::MAX {
            return Err(LangError::new("too many variables in one rule", span));
        }
        let id = VarId(self.next);
        self.next += 1;
        self.ids.insert(name.to_string(), id);
        Ok(id)
    }

    /// Resolves a variable for *reading* (predicates, expressions, later
    /// occurrences). Errors on unbound or negative-CE-local variables.
    fn read(&self, name: &str, span: Span) -> Result<VarId, LangError> {
        if self.locals.contains(name) {
            return Err(LangError::new(
                format!("variable <{name}> is local to a negated CE and cannot be used here"),
                span,
            ));
        }
        self.ids.get(name).copied().ok_or_else(|| {
            LangError::new(format!("variable <{name}> used before it is bound"), span)
        })
    }
}

fn const_value(interner: &Interner, c: &ast::Const) -> Value {
    match c {
        ast::Const::Sym(s) => Value::Sym(interner.intern(s)),
        ast::Const::Int(i) => Value::Int(*i),
        ast::Const::Float(f) => Value::Float(*f),
    }
}

fn compile_rule(program: &Program, rule: &AstRule) -> Result<Rule, LangError> {
    let interner = &program.interner;
    let mut vars = VarCtx::new();
    let mut ces: Vec<ConditionElement> = Vec::new();
    let mut tests: Vec<RuleTest> = Vec::new();
    // 1-based pattern-CE designator -> (compiled CE index, positive ordinal)
    let mut designators: Vec<(usize, Option<u8>)> = Vec::new();
    // Per compiled CE: cumulative exported-variable count after it joins.
    let mut bound_after: Vec<u16> = Vec::new();
    let mut pos_count: u8 = 0;

    for ce in &rule.ces {
        match ce {
            Ce::Pattern(pat) => {
                let compiled = compile_pattern_ce(program, pat, &mut vars)?;
                let pos_ord = if pat.negated {
                    None
                } else {
                    let o = pos_count;
                    pos_count = pos_count.checked_add(1).ok_or_else(|| {
                        LangError::new("too many positive CEs (max 255)", pat.span)
                    })?;
                    Some(o)
                };
                designators.push((ces.len(), pos_ord));
                ces.push(compiled);
                bound_after.push(vars.next);
            }
            Ce::Test(t) => {
                let test = compile_test(interner, t, &vars)?;
                // Anchor at the earliest CE after which all referenced
                // variables are bound.
                let anchor = match test.max_var() {
                    None => 0,
                    Some(v) => bound_after.iter().position(|&n| n > v.0).ok_or_else(|| {
                        LangError::new("test references variable bound later", t.span)
                    })?,
                };
                if ces.is_empty() {
                    return Err(LangError::new(
                        "a rule may not start with a test CE",
                        t.span,
                    ));
                }
                tests.push(RuleTest { anchor, test });
            }
        }
    }

    // RHS: binds first-class, actions resolved against designators.
    let mut binds: Vec<(VarId, Expr)> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    for action in &rule.actions {
        match action {
            ast::AstAction::Bind { var, expr, span } => {
                let e = compile_expr(interner, expr, &vars, *span)?;
                if vars.ids.contains_key(var) {
                    return Err(LangError::new(
                        format!("variable <{var}> rebound on the RHS"),
                        *span,
                    ));
                }
                let id = vars.alloc(var, *span)?;
                binds.push((id, e));
            }
            ast::AstAction::Make { class, sets, span } => {
                let (class_id, fields) =
                    compile_field_sets(program, class, sets, &vars, *span, None)?;
                actions.push(Action::Make {
                    class: class_id,
                    fields,
                });
            }
            ast::AstAction::Remove { ce, span } => {
                actions.push(Action::Remove {
                    ce: resolve_designator(&designators, *ce, *span)?,
                });
            }
            ast::AstAction::Modify { ce, sets, span } => {
                let pos = resolve_designator(&designators, *ce, *span)?;
                let ce_index = designators[*ce as usize - 1].0;
                let class_id = ces[ce_index].class;
                let decl = program.classes.decl(class_id);
                let mut slot_sets = Vec::with_capacity(sets.len());
                for (attr, expr) in sets {
                    let slot = decl.slot_of(program.interner.intern(attr)).ok_or_else(|| {
                        LangError::new(
                            format!("class has no attribute ^{attr} (modify {ce})"),
                            *span,
                        )
                    })?;
                    slot_sets.push((slot as u16, compile_expr(interner, expr, &vars, *span)?));
                }
                actions.push(Action::Modify {
                    ce: pos,
                    sets: slot_sets,
                });
            }
            ast::AstAction::Write { exprs, span } => {
                let compiled: Result<Vec<Expr>, LangError> = exprs
                    .iter()
                    .map(|e| compile_expr(interner, e, &vars, *span))
                    .collect();
                actions.push(Action::Write(compiled?));
            }
            ast::AstAction::Halt { .. } => actions.push(Action::Halt),
        }
    }

    Ok(Rule {
        id: RuleId(0), // assigned by Program::add_rule
        name: interner.intern(&rule.name),
        ces,
        tests,
        binds,
        actions,
        num_vars: vars.next,
    })
}

fn resolve_designator(
    designators: &[(usize, Option<u8>)],
    ce: u8,
    span: Span,
) -> Result<u8, LangError> {
    let idx = ce as usize - 1;
    match designators.get(idx) {
        Some((_, Some(pos))) => Ok(*pos),
        Some((_, None)) => Err(LangError::new(
            format!("CE {ce} is negated and cannot be removed/modified"),
            span,
        )),
        None => Err(LangError::new(
            format!(
                "CE designator {ce} out of range ({} pattern CEs)",
                designators.len()
            ),
            span,
        )),
    }
}

fn compile_pattern_ce(
    program: &Program,
    pat: &ast::PatternCe,
    vars: &mut VarCtx,
) -> Result<ConditionElement, LangError> {
    let interner = &program.interner;
    let class_sym = interner.intern(&pat.class);
    let class = program
        .classes
        .id_of(class_sym)
        .ok_or_else(|| LangError::new(format!("unknown class '{}'", pat.class), pat.span))?;
    let decl = program.classes.decl(class);

    let mut tests: Vec<FieldTest> = Vec::new();
    // Variables bound locally within this negated CE (for error reporting
    // we also push them into `vars.locals` at the end).
    let mut bound_here: Vec<String> = Vec::new();

    for spec in &pat.attrs {
        let slot = decl.slot_of(interner.intern(&spec.attr)).ok_or_else(|| {
            LangError::new(
                format!("class '{}' has no attribute ^{}", pat.class, spec.attr),
                pat.span,
            )
        })? as u16;
        for restriction in &spec.restrictions {
            let check = match restriction {
                ast::Restriction::OneOf(cs) => {
                    FieldCheck::OneOf(cs.iter().map(|c| const_value(interner, c)).collect())
                }
                ast::Restriction::Cmp(op, Term::Const(c)) => {
                    FieldCheck::Const(*op, const_value(interner, c))
                }
                ast::Restriction::Cmp(op, Term::Var(name)) => {
                    let known = vars.ids.contains_key(name);
                    let local_reuse = pat.negated && bound_here.contains(name);
                    let foreign_local = vars.locals.contains(name) && !local_reuse;
                    if known && !foreign_local {
                        FieldCheck::Var(*op, vars.ids[name])
                    } else if known && foreign_local {
                        return Err(LangError::new(
                            format!(
                                "variable <{name}> is local to a negated CE and cannot be used here"
                            ),
                            pat.span,
                        ));
                    } else if *op == PredOp::Eq {
                        // First occurrence: bind (exported from positive
                        // CEs, local within negated CEs).
                        let id = vars.alloc(name, pat.span)?;
                        if pat.negated {
                            bound_here.push(name.clone());
                        }
                        FieldCheck::Bind(id)
                    } else {
                        return Err(LangError::new(
                            format!("predicate {op} on unbound variable <{name}>"),
                            pat.span,
                        ));
                    }
                }
            };
            tests.push(FieldTest { slot, check });
        }
    }
    for name in bound_here {
        vars.locals.insert(name);
    }
    Ok(ConditionElement {
        class,
        polarity: if pat.negated {
            Polarity::Negative
        } else {
            Polarity::Positive
        },
        tests,
    })
}

fn compile_expr(
    interner: &Interner,
    expr: &AstExpr,
    vars: &VarCtx,
    span: Span,
) -> Result<Expr, LangError> {
    Ok(match expr {
        AstExpr::Term(Term::Const(c)) => Expr::Const(const_value(interner, c)),
        AstExpr::Term(Term::Var(name)) => Expr::Var(vars.read(name, span)?),
        AstExpr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(compile_expr(interner, l, vars, span)?),
            Box::new(compile_expr(interner, r, vars, span)?),
        ),
    })
}

fn compile_test(interner: &Interner, test: &AstTest, vars: &VarCtx) -> Result<TestExpr, LangError> {
    Ok(TestExpr {
        op: test.op,
        lhs: compile_expr(interner, &test.lhs, vars, test.span)?,
        rhs: compile_expr(interner, &test.rhs, vars, test.span)?,
    })
}

/// Compiles a `make`'s attribute assignments to a dense field vector
/// (unset attributes default to `nil`).
fn compile_field_sets(
    program: &Program,
    class: &str,
    sets: &[(String, AstExpr)],
    vars: &VarCtx,
    span: Span,
    _ce: Option<u8>,
) -> Result<(parulel_core::ClassId, Vec<Expr>), LangError> {
    let interner = &program.interner;
    let class_sym = interner.intern(class);
    let class_id = program
        .classes
        .id_of(class_sym)
        .ok_or_else(|| LangError::new(format!("unknown class '{class}'"), span))?;
    let decl = program.classes.decl(class_id);
    let mut fields: Vec<Expr> = vec![Expr::Const(Value::NIL); decl.arity()];
    for (attr, expr) in sets {
        let slot = decl.slot_of(interner.intern(attr)).ok_or_else(|| {
            LangError::new(format!("class '{class}' has no attribute ^{attr}"), span)
        })?;
        fields[slot] = compile_expr(interner, expr, vars, span)?;
    }
    Ok((class_id, fields))
}

fn compile_meta(program: &Program, meta: &AstMeta) -> Result<MetaRule, LangError> {
    let interner = &program.interner;
    let mut vars = VarCtx::new();
    let mut ces: Vec<MetaCe> = Vec::new();
    let mut tests: Vec<TestExpr> = Vec::new();

    for item in &meta.ces {
        match item {
            MetaCeAst::Inst { rule, pats, span } => {
                let rule_sym = interner.intern(rule);
                let rule_id = program
                    .rule_by_name(rule_sym)
                    .ok_or_else(|| LangError::new(format!("unknown rule '{rule}'"), *span))?;
                let obj_rule = program.rule(rule_id);
                let pos_classes: Vec<_> = obj_rule
                    .positive_ce_indices()
                    .map(|i| obj_rule.ces[i].class)
                    .collect();
                if pats.len() > pos_classes.len() {
                    return Err(LangError::new(
                        format!(
                            "inst pattern lists {} positions but rule '{rule}' has {} positive CEs",
                            pats.len(),
                            pos_classes.len()
                        ),
                        *span,
                    ));
                }
                let mut compiled_pats = Vec::with_capacity(pats.len());
                for (k, mp) in pats.iter().enumerate() {
                    match mp {
                        MetaPat::Wild => compiled_pats.push(CePattern::default()),
                        MetaPat::Pattern(pat) => {
                            if pat.negated {
                                return Err(LangError::new(
                                    "positional patterns in inst CEs cannot be negated",
                                    pat.span,
                                ));
                            }
                            let ce = compile_pattern_ce(program, pat, &mut vars)?;
                            if ce.class != pos_classes[k] {
                                return Err(LangError::new(
                                    format!(
                                        "position {} of rule '{rule}' matches class '{}', \
                                         pattern says '{}'",
                                        k + 1,
                                        interner.resolve(program.classes.decl(pos_classes[k]).name),
                                        pat.class
                                    ),
                                    pat.span,
                                ));
                            }
                            compiled_pats.push(CePattern { tests: ce.tests });
                        }
                    }
                }
                ces.push(MetaCe {
                    rule: rule_id,
                    pats: compiled_pats,
                });
            }
            MetaCeAst::Test(t) => tests.push(compile_test(interner, t, &vars)?),
        }
    }

    let mut actions = Vec::with_capacity(meta.redacts.len());
    for &r in &meta.redacts {
        if r as usize > ces.len() {
            return Err(LangError::new(
                format!("redact {r} out of range ({} inst CEs)", ces.len()),
                meta.span,
            ));
        }
        actions.push(MetaAction::Redact { ce: r - 1 });
    }

    Ok(MetaRule {
        id: MetaRuleId(0), // assigned by Program::add_meta
        name: interner.intern(&meta.name),
        ces,
        tests,
        actions,
        num_vars: vars.next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str) -> Program {
        compile_ast(&parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> LangError {
        compile_ast(&parse(src).unwrap()).unwrap_err()
    }

    const SCHED: &str = "
        (literalize job id len machine status)
        (literalize machine id free)
        (p schedule
          (job ^id <j> ^len <l> ^machine nil ^status pending)
          (machine ^id <m> ^free yes)
          (test (> <l> 0))
         -->
          (modify 1 ^machine <m> ^status running)
          (modify 2 ^free no))";

    #[test]
    fn compiles_schedule() {
        let p = compile(SCHED);
        assert_eq!(p.rules().len(), 1);
        let r = &p.rules()[0];
        assert_eq!(r.ces.len(), 2);
        assert_eq!(r.tests.len(), 1);
        assert_eq!(r.num_vars, 3); // j, l, m
        assert_eq!(r.tests[0].anchor, 0); // <l> bound by first CE
                                          // modify 1 -> positive ordinal 0; modify 2 -> 1
        match &r.actions[0] {
            Action::Modify { ce: 0, sets } => assert_eq!(sets.len(), 2),
            other => panic!("{other:?}"),
        }
        match &r.actions[1] {
            Action::Modify { ce: 1, sets } => {
                assert_eq!(sets[0].0, 1); // ^free is slot 1
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_first_use_binds_then_tests() {
        let p = compile(
            "(literalize pair a b)
             (p same (pair ^a <x> ^b <x>) --> (remove 1))",
        );
        let r = &p.rules()[0];
        assert_eq!(r.num_vars, 1);
        assert!(matches!(
            r.ces[0].tests[0].check,
            FieldCheck::Bind(VarId(0))
        ));
        assert!(matches!(
            r.ces[0].tests[1].check,
            FieldCheck::Var(PredOp::Eq, VarId(0))
        ));
    }

    #[test]
    fn predicate_on_unbound_var_is_error() {
        let e = compile_err(
            "(literalize a x)
             (p r (a ^x > <v>) --> (remove 1))",
        );
        assert!(e.msg.contains("unbound"), "{e}");
    }

    #[test]
    fn negated_ce_local_vars() {
        // <w> first bound in a negated CE: fine locally, error elsewhere.
        compile(
            "(literalize a x y)
             (p r (a ^x <v>) -(a ^x <w> ^y <w>) --> (remove 1))",
        );
        let e = compile_err(
            "(literalize a x y)
             (p r (a ^x <v>) -(a ^x <w>) (test (> <w> 1)) --> (remove 1))",
        );
        assert!(e.msg.contains("local to a negated CE"), "{e}");
    }

    #[test]
    fn designators_skip_negated_ces() {
        let e = compile_err(
            "(literalize a x)
             (p r (a ^x 1) -(a ^x 2) --> (remove 2))",
        );
        assert!(e.msg.contains("negated"), "{e}");
        let e = compile_err(
            "(literalize a x)
             (p r (a ^x 1) --> (remove 3))",
        );
        assert!(e.msg.contains("out of range"), "{e}");
        // remove of second pattern CE maps to positive ordinal 1
        let p = compile(
            "(literalize a x)
             (p r (a ^x 1) -(a ^x 2) (a ^x 3) --> (remove 3))",
        );
        assert!(matches!(p.rules()[0].actions[0], Action::Remove { ce: 1 }));
    }

    #[test]
    fn make_defaults_unset_fields_to_nil() {
        let p = compile(
            "(literalize a x y z)
             (p r (a ^x <v>) --> (make a ^y <v>))",
        );
        let Action::Make { fields, .. } = &p.rules()[0].actions[0] else {
            panic!()
        };
        assert_eq!(fields[0], Expr::Const(Value::NIL));
        assert_eq!(fields[1], Expr::Var(VarId(0)));
        assert_eq!(fields[2], Expr::Const(Value::NIL));
    }

    #[test]
    fn bind_allocates_new_var_and_rejects_rebind() {
        let p = compile(
            "(literalize a x)
             (p r (a ^x <v>) --> (bind <w> (+ <v> 1)) (make a ^x <w>))",
        );
        let r = &p.rules()[0];
        assert_eq!(r.num_vars, 2);
        assert_eq!(r.binds.len(), 1);
        let e = compile_err(
            "(literalize a x)
             (p r (a ^x <v>) --> (bind <v> 1))",
        );
        assert!(e.msg.contains("rebound"), "{e}");
    }

    #[test]
    fn unknown_names_error() {
        assert!(compile_err("(p r (ghost) --> (halt))")
            .msg
            .contains("unknown class"));
        assert!(compile_err(
            "(literalize a x)
             (p r (a ^bogus 1) --> (halt))"
        )
        .msg
        .contains("no attribute"));
        assert!(compile_err(
            "(literalize a x)
             (p r (a ^x 1) --> (make ghost))"
        )
        .msg
        .contains("unknown class"));
    }

    #[test]
    fn test_anchor_uses_latest_needed_ce() {
        let p = compile(
            "(literalize a x)
             (literalize b y)
             (p r (a ^x <u>) (b ^y <v>) (test (> <v> <u>)) --> (halt))",
        );
        assert_eq!(p.rules()[0].tests[0].anchor, 1);
    }

    #[test]
    fn meta_rule_compiles_and_validates() {
        let src = format!(
            "{SCHED}
             (mp one-per-machine
               (inst schedule (job ^len <l1>) (machine ^id <m>))
               (inst schedule (job ^len <l2>) (machine ^id <m>))
               (test (> <l1> <l2>))
              -->
               (redact 1))"
        );
        let p = compile(&src);
        assert_eq!(p.metas().len(), 1);
        let m = &p.metas()[0];
        assert_eq!(m.ces.len(), 2);
        assert_eq!(m.tests.len(), 1);
        assert_eq!(m.actions, vec![MetaAction::Redact { ce: 0 }]);
        assert_eq!(m.num_vars, 3); // l1, m, l2
    }

    #[test]
    fn meta_class_mismatch_rejected() {
        let src = format!(
            "{SCHED}
             (mp bad (inst schedule (machine ^id <m>)) --> (redact 1))"
        );
        let e = compile_ast(&parse(&src).unwrap()).unwrap_err();
        assert!(e.msg.contains("matches class"), "{e}");
    }

    #[test]
    fn meta_unknown_rule_and_bad_redact() {
        let e = compile_err("(mp m (inst ghost) --> (redact 1))");
        assert!(e.msg.contains("unknown rule"), "{e}");
        let src = format!("{SCHED} (mp m (inst schedule) --> (redact 2))");
        let e = compile_ast(&parse(&src).unwrap()).unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn meta_wildcard_positions() {
        let src = format!(
            "{SCHED}
             (mp m (inst schedule _ (machine ^id <m>)) --> (redact 1))"
        );
        let p = compile(&src);
        assert!(p.metas()[0].ces[0].pats[0].tests.is_empty());
        assert_eq!(p.metas()[0].ces[0].pats[1].tests.len(), 1);
    }

    #[test]
    fn duplicate_class_reported_with_span() {
        let e = compile_err("(literalize a x)\n(literalize a y)");
        assert_eq!(e.span.line, 2);
    }

    #[test]
    fn wm_facts_materialize() {
        let src = "
            (literalize job id len status)
            (wm (job ^id 1 ^len 5 ^status pending)
                (job ^id 2))
            (p r (job ^id <j>) --> (remove 1))";
        let (p, wm) = crate::compile_with_wm(src).unwrap();
        assert_eq!(wm.len(), 2);
        let job = p.classes.id_of(p.interner.intern("job")).unwrap();
        let mut rows: Vec<Vec<Value>> = wm.iter_class(job).map(|w| w.fields.to_vec()).collect();
        rows.sort();
        let pending = Value::Sym(p.interner.intern("pending"));
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(5), pending],
                vec![Value::Int(2), Value::NIL, Value::NIL],
            ]
        );
    }

    #[test]
    fn wm_facts_must_be_ground() {
        let var = "
            (literalize job id)
            (wm (job ^id <v>))";
        assert!(crate::compile_with_wm(var)
            .unwrap_err()
            .msg
            .contains("single constant"));
        let pred = "
            (literalize job id)
            (wm (job ^id > 3))";
        assert!(crate::compile_with_wm(pred)
            .unwrap_err()
            .msg
            .contains("single constant"));
        let unknown = "(wm (ghost ^id 1))";
        assert!(crate::compile_with_wm(unknown)
            .unwrap_err()
            .msg
            .contains("unknown class"));
    }

    #[test]
    fn oneof_and_brace_restrictions_compile() {
        let p = compile(
            "(literalize a x)
             (p r (a ^x << red green >>) (a ^x { > 0 <= 10 }) --> (halt))",
        );
        let r = &p.rules()[0];
        assert!(matches!(r.ces[0].tests[0].check, FieldCheck::OneOf(ref v) if v.len() == 2));
        assert_eq!(r.ces[1].tests.len(), 2);
    }
}
