//! Recursive-descent parser for PARULEL source.

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::lexer::lex;
use crate::token::{Tok, Token};
use parulel_core::expr::BinOp;

/// The parser. Construct with [`Parser::new`], consume with
/// [`Parser::parse_program`].
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes `src` and prepares a parser over it.
    pub fn new(src: &str) -> Result<Self, LangError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), LangError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{want}', found '{}'", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(msg, self.span())
    }

    fn sym(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Sym(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found '{other}'"))),
        }
    }

    fn attr(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Attr(a) => {
                self.bump();
                Ok(a)
            }
            other => Err(self.err(format!("expected ^attribute, found '{other}'"))),
        }
    }

    fn small_int(&mut self, what: &str) -> Result<u8, LangError> {
        match *self.peek() {
            Tok::Int(i) if (1..=255).contains(&i) => {
                self.bump();
                Ok(i as u8)
            }
            ref other => Err(self.err(format!("expected {what} (1..255), found '{other}'"))),
        }
    }

    /// Parses a whole program (to EOF).
    pub fn parse_program(&mut self) -> Result<SrcProgram, LangError> {
        let mut decls = Vec::new();
        while *self.peek() != Tok::Eof {
            decls.push(self.decl()?);
        }
        Ok(SrcProgram { decls })
    }

    fn decl(&mut self) -> Result<Decl, LangError> {
        let span = self.span();
        self.expect(&Tok::LParen)?;
        let head = self.sym("'literalize', 'p' or 'mp'")?;
        let decl = match head.as_str() {
            "literalize" => {
                let name = self.sym("class name")?;
                let mut attrs = Vec::new();
                while let Tok::Sym(_) = self.peek() {
                    attrs.push(self.sym("attribute")?);
                }
                Decl::Literalize { name, attrs, span }
            }
            "p" => Decl::Rule(self.rule_body(span)?),
            "mp" => Decl::Meta(self.meta_body(span)?),
            "wm" => {
                let mut facts = Vec::new();
                while *self.peek() == Tok::LParen {
                    facts.push(self.pattern()?);
                }
                if facts.is_empty() {
                    return Err(LangError::new("empty (wm …) block", span));
                }
                Decl::WmFacts { facts, span }
            }
            other => return Err(self.err(format!("unknown declaration '{other}'"))),
        };
        self.expect(&Tok::RParen)?;
        Ok(decl)
    }

    fn rule_body(&mut self, span: Span) -> Result<AstRule, LangError> {
        let name = self.sym("rule name")?;
        let mut ces = Vec::new();
        loop {
            match self.peek() {
                Tok::Arrow => {
                    self.bump();
                    break;
                }
                Tok::Minus => {
                    self.bump();
                    let mut pat = self.pattern()?;
                    pat.negated = true;
                    ces.push(Ce::Pattern(pat));
                }
                Tok::LParen => {
                    if self.lookahead_is_test() {
                        ces.push(Ce::Test(self.test_ce()?));
                    } else {
                        ces.push(Ce::Pattern(self.pattern()?));
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected condition element or -->, found '{other}'"
                    )))
                }
            }
        }
        if ces.is_empty() {
            return Err(LangError::new(
                format!("rule {name} has an empty LHS"),
                span,
            ));
        }
        let mut actions = Vec::new();
        while *self.peek() == Tok::LParen {
            actions.push(self.action()?);
        }
        Ok(AstRule {
            name,
            ces,
            actions,
            span,
        })
    }

    /// Looks past a `(` to see if the next token is the `test` keyword.
    fn lookahead_is_test(&self) -> bool {
        matches!(
            self.toks.get(self.pos + 1).map(|t| &t.tok),
            Some(Tok::Sym(s)) if s == "test"
        )
    }

    fn test_ce(&mut self) -> Result<AstTest, LangError> {
        let span = self.span();
        self.expect(&Tok::LParen)?;
        let kw = self.sym("'test'")?;
        debug_assert_eq!(kw, "test");
        let test = self.test_expr(span)?;
        self.expect(&Tok::RParen)?;
        Ok(test)
    }

    /// `(PRED expr expr)` — the comparison form shared by object-level and
    /// meta-level `test` CEs.
    fn test_expr(&mut self, span: Span) -> Result<AstTest, LangError> {
        self.expect(&Tok::LParen)?;
        let op = match self.bump() {
            Tok::Pred(op) => op,
            other => {
                return Err(LangError::new(
                    format!("expected comparison operator, found '{other}'"),
                    span,
                ))
            }
        };
        let lhs = self.expr()?;
        let rhs = self.expr()?;
        self.expect(&Tok::RParen)?;
        Ok(AstTest { op, lhs, rhs, span })
    }

    fn pattern(&mut self) -> Result<PatternCe, LangError> {
        let span = self.span();
        self.expect(&Tok::LParen)?;
        let class = self.sym("class name")?;
        let mut attrs = Vec::new();
        while let Tok::Attr(_) = self.peek() {
            let attr = self.attr()?;
            attrs.push(AttrSpec {
                attr,
                restrictions: self.restrictions()?,
            });
        }
        self.expect(&Tok::RParen)?;
        Ok(PatternCe {
            negated: false,
            class,
            attrs,
            span,
        })
    }

    fn restrictions(&mut self) -> Result<Vec<Restriction>, LangError> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut rs = Vec::new();
                while *self.peek() != Tok::RBrace {
                    rs.push(self.one_restriction()?);
                }
                self.bump(); // RBrace
                if rs.is_empty() {
                    return Err(self.err("empty restriction block {}"));
                }
                Ok(rs)
            }
            Tok::LDisj => {
                self.bump();
                let mut cs = Vec::new();
                while *self.peek() != Tok::RDisj {
                    cs.push(self.constant()?);
                }
                self.bump(); // RDisj
                if cs.is_empty() {
                    return Err(self.err("empty disjunction <<>>"));
                }
                Ok(vec![Restriction::OneOf(cs)])
            }
            _ => Ok(vec![self.one_restriction()?]),
        }
    }

    fn one_restriction(&mut self) -> Result<Restriction, LangError> {
        // A disjunction may appear inside a brace conjunction:
        // `^x { << a b >> <v> }`.
        if *self.peek() == Tok::LDisj {
            self.bump();
            let mut cs = Vec::new();
            while *self.peek() != Tok::RDisj {
                cs.push(self.constant()?);
            }
            self.bump(); // RDisj
            if cs.is_empty() {
                return Err(self.err("empty disjunction <<>>"));
            }
            return Ok(Restriction::OneOf(cs));
        }
        let op = match self.peek() {
            Tok::Pred(op) => {
                let op = *op;
                self.bump();
                op
            }
            _ => parulel_core::expr::PredOp::Eq,
        };
        let term = self.term()?;
        Ok(Restriction::Cmp(op, term))
    }

    fn constant(&mut self) -> Result<Const, LangError> {
        match self.bump() {
            Tok::Sym(s) => Ok(Const::Sym(s)),
            Tok::Str(s) => Ok(Const::Sym(s)),
            Tok::Int(i) => Ok(Const::Int(i)),
            Tok::Float(f) => Ok(Const::Float(f)),
            other => Err(self.err(format!("expected constant, found '{other}'"))),
        }
    }

    fn term(&mut self) -> Result<Term, LangError> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                Ok(Term::Var(v))
            }
            _ => Ok(Term::Const(self.constant()?)),
        }
    }

    fn expr(&mut self) -> Result<AstExpr, LangError> {
        if *self.peek() != Tok::LParen {
            return Ok(AstExpr::Term(self.term()?));
        }
        self.bump(); // LParen
        let op = match self.bump() {
            Tok::Sym(s) => match s.as_str() {
                "+" => BinOp::Add,
                "*" => BinOp::Mul,
                "//" => BinOp::Div,
                "mod" => BinOp::Mod,
                other => return Err(self.err(format!("unknown operator '{other}'"))),
            },
            Tok::Minus => BinOp::Sub,
            other => return Err(self.err(format!("expected arithmetic operator, found '{other}'"))),
        };
        let lhs = self.expr()?;
        let rhs = self.expr()?;
        self.expect(&Tok::RParen)?;
        Ok(AstExpr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn action(&mut self) -> Result<AstAction, LangError> {
        let span = self.span();
        self.expect(&Tok::LParen)?;
        let head = self.sym("action keyword")?;
        let action = match head.as_str() {
            "make" => {
                let class = self.sym("class name")?;
                AstAction::Make {
                    class,
                    sets: self.attr_exprs()?,
                    span,
                }
            }
            "remove" => AstAction::Remove {
                ce: self.small_int("CE designator")?,
                span,
            },
            "modify" => {
                let ce = self.small_int("CE designator")?;
                AstAction::Modify {
                    ce,
                    sets: self.attr_exprs()?,
                    span,
                }
            }
            "bind" => {
                let var = match self.bump() {
                    Tok::Var(v) => v,
                    other => return Err(self.err(format!("expected <var>, found '{other}'"))),
                };
                AstAction::Bind {
                    var,
                    expr: self.expr()?,
                    span,
                }
            }
            "write" => {
                let mut exprs = Vec::new();
                while *self.peek() != Tok::RParen {
                    exprs.push(self.expr()?);
                }
                AstAction::Write { exprs, span }
            }
            "halt" => AstAction::Halt { span },
            other => return Err(self.err(format!("unknown action '{other}'"))),
        };
        self.expect(&Tok::RParen)?;
        Ok(action)
    }

    fn attr_exprs(&mut self) -> Result<Vec<(String, AstExpr)>, LangError> {
        let mut sets = Vec::new();
        while let Tok::Attr(_) = self.peek() {
            let attr = self.attr()?;
            sets.push((attr, self.expr()?));
        }
        Ok(sets)
    }

    fn meta_body(&mut self, span: Span) -> Result<AstMeta, LangError> {
        let name = self.sym("meta-rule name")?;
        let mut ces = Vec::new();
        loop {
            match self.peek() {
                Tok::Arrow => {
                    self.bump();
                    break;
                }
                Tok::LParen => {
                    if self.lookahead_is_test() {
                        ces.push(MetaCeAst::Test(self.test_ce()?));
                    } else {
                        ces.push(self.inst_ce()?);
                    }
                }
                other => return Err(self.err(format!("expected inst CE or -->, found '{other}'"))),
            }
        }
        if !ces.iter().any(|ce| matches!(ce, MetaCeAst::Inst { .. })) {
            return Err(LangError::new(
                format!("meta-rule {name} has no inst condition element"),
                span,
            ));
        }
        let mut redacts = Vec::new();
        while *self.peek() == Tok::LParen {
            let rspan = self.span();
            self.bump();
            let kw = self.sym("'redact'")?;
            if kw != "redact" {
                return Err(LangError::new(
                    format!("meta-rules only support (redact k) actions, found '{kw}'"),
                    rspan,
                ));
            }
            redacts.push(self.small_int("inst CE designator")?);
            self.expect(&Tok::RParen)?;
        }
        if redacts.is_empty() {
            return Err(LangError::new(
                format!("meta-rule {name} has no redact action"),
                span,
            ));
        }
        Ok(AstMeta {
            name,
            ces,
            redacts,
            span,
        })
    }

    fn inst_ce(&mut self) -> Result<MetaCeAst, LangError> {
        let span = self.span();
        self.expect(&Tok::LParen)?;
        let kw = self.sym("'inst'")?;
        if kw != "inst" {
            return Err(LangError::new(
                format!("expected 'inst' or 'test' in meta-rule LHS, found '{kw}'"),
                span,
            ));
        }
        let rule = self.sym("object rule name")?;
        let mut pats = Vec::new();
        loop {
            match self.peek() {
                Tok::Wild => {
                    self.bump();
                    pats.push(MetaPat::Wild);
                }
                Tok::LParen => pats.push(MetaPat::Pattern(self.pattern()?)),
                _ => break,
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(MetaCeAst::Inst { rule, pats, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::expr::PredOp;

    fn parse(src: &str) -> SrcProgram {
        Parser::new(src).unwrap().parse_program().unwrap()
    }

    #[test]
    fn literalize() {
        let p = parse("(literalize job id len)");
        let (name, attrs) = p.literalizes().next().unwrap();
        assert_eq!(name, "job");
        assert_eq!(attrs, ["id".to_string(), "len".to_string()]);
    }

    #[test]
    fn simple_rule() {
        let p = parse(
            "(literalize a x)
             (p r (a ^x <v>) --> (remove 1))",
        );
        let r = p.rules().next().unwrap();
        assert_eq!(r.name, "r");
        assert_eq!(r.ces.len(), 1);
        assert_eq!(
            r.actions,
            vec![AstAction::Remove {
                ce: 1,
                span: r.actions[0].clone().span_of()
            }]
        );
    }

    impl AstAction {
        fn span_of(self) -> Span {
            match self {
                AstAction::Make { span, .. }
                | AstAction::Remove { span, .. }
                | AstAction::Modify { span, .. }
                | AstAction::Bind { span, .. }
                | AstAction::Write { span, .. }
                | AstAction::Halt { span } => span,
            }
        }
    }

    #[test]
    fn negated_and_test_ces() {
        let p = parse("(p r (a ^x <v>) -(b ^y <v>) (test (> <v> 3)) --> (halt))");
        let r = p.rules().next().unwrap();
        assert_eq!(r.ces.len(), 3);
        match &r.ces[1] {
            Ce::Pattern(pat) => assert!(pat.negated),
            other => panic!("expected pattern, got {other:?}"),
        }
        match &r.ces[2] {
            Ce::Test(t) => assert_eq!(t.op, PredOp::Gt),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn restriction_forms() {
        let p =
            parse("(p r (a ^x pending ^y > 3 ^z { > 0 <= <max> } ^w << red green >>) --> (halt))");
        let r = p.rules().next().unwrap();
        let Ce::Pattern(pat) = &r.ces[0] else {
            panic!()
        };
        assert_eq!(pat.attrs.len(), 4);
        assert_eq!(
            pat.attrs[0].restrictions,
            vec![Restriction::Cmp(
                PredOp::Eq,
                Term::Const(Const::Sym("pending".into()))
            )]
        );
        assert_eq!(
            pat.attrs[1].restrictions,
            vec![Restriction::Cmp(PredOp::Gt, Term::Const(Const::Int(3)))]
        );
        assert_eq!(pat.attrs[2].restrictions.len(), 2);
        assert_eq!(
            pat.attrs[3].restrictions,
            vec![Restriction::OneOf(vec![
                Const::Sym("red".into()),
                Const::Sym("green".into())
            ])]
        );
    }

    #[test]
    fn actions_full_set() {
        let p = parse(
            "(p r (a ^x <v>) -->
               (make b ^y (+ <v> 1))
               (modify 1 ^x (- <v> 1))
               (bind <w> (* <v> 2))
               (write \"value:\" <w>)
               (halt))",
        );
        let r = p.rules().next().unwrap();
        assert_eq!(r.actions.len(), 5);
        match &r.actions[0] {
            AstAction::Make { class, sets, .. } => {
                assert_eq!(class, "b");
                assert!(matches!(sets[0].1, AstExpr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&r.actions[2], AstAction::Bind { var, .. } if var == "w"));
    }

    #[test]
    fn meta_rule() {
        let p = parse(
            "(mp prefer
               (inst sched (job ^len <l1>) _)
               (inst sched (job ^len <l2>))
               (test (> <l1> <l2>))
              -->
               (redact 1))",
        );
        let m = p.metas().next().unwrap();
        assert_eq!(m.name, "prefer");
        assert_eq!(m.ces.len(), 3);
        match &m.ces[0] {
            MetaCeAst::Inst { rule, pats, .. } => {
                assert_eq!(rule, "sched");
                assert_eq!(pats.len(), 2);
                assert!(matches!(pats[1], MetaPat::Wild));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.redacts, vec![1]);
    }

    #[test]
    fn nested_arithmetic() {
        let p = parse("(p r (a ^x <v>) --> (make a ^x (+ (* <v> 2) (mod <v> 3))))");
        let r = p.rules().next().unwrap();
        let AstAction::Make { sets, .. } = &r.actions[0] else {
            panic!()
        };
        match &sets[0].1 {
            AstExpr::Bin(BinOp::Add, l, r) => {
                assert!(matches!(**l, AstExpr::Bin(BinOp::Mul, _, _)));
                assert!(matches!(**r, AstExpr::Bin(BinOp::Mod, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        // empty LHS
        assert!(Parser::new("(p r --> (halt))")
            .unwrap()
            .parse_program()
            .is_err());
        // meta without redact
        assert!(Parser::new("(mp m (inst r) -->)")
            .unwrap()
            .parse_program()
            .is_err());
        // meta without inst
        assert!(Parser::new("(mp m (test (> 1 0)) --> (redact 1))")
            .unwrap()
            .parse_program()
            .is_err());
        // unknown action
        assert!(Parser::new("(p r (a) --> (explode))")
            .unwrap()
            .parse_program()
            .is_err());
        // unknown declaration
        assert!(Parser::new("(q r)").unwrap().parse_program().is_err());
        // CE designator zero
        assert!(Parser::new("(p r (a) --> (remove 0))")
            .unwrap()
            .parse_program()
            .is_err());
    }

    #[test]
    fn error_carries_location() {
        let err = Parser::new("(p r\n  (a ^x })")
            .unwrap()
            .parse_program()
            .unwrap_err();
        assert_eq!(err.span.line, 2);
    }
}
