//! Abstract syntax for PARULEL source programs.
//!
//! The AST mirrors the surface syntax closely (names are still strings,
//! attributes unresolved); the [`compiler`](crate::compiler) lowers it to
//! the [`parulel_core`] IR.

use crate::error::Span;
use parulel_core::expr::{BinOp, PredOp};

/// A literal constant.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// Symbolic atom (`pending`, `nil`, …) or string literal.
    Sym(String),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
}

/// A term: a constant or a variable reference.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A constant.
    Const(Const),
    /// A `<var>`.
    Var(String),
}

/// One restriction on an attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Restriction {
    /// `OP term` (bare `term` means `= term`).
    Cmp(PredOp, Term),
    /// `<< c1 c2 … >>` — the value must equal one of the constants.
    OneOf(Vec<Const>),
}

/// `^attr restriction…` inside a pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrSpec {
    /// Attribute name (unresolved).
    pub attr: String,
    /// Conjunction of restrictions on the attribute's value.
    pub restrictions: Vec<Restriction>,
}

/// A pattern condition element: `(class ^attr spec …)`, possibly negated.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternCe {
    /// True for `-(class …)`.
    pub negated: bool,
    /// Class name (unresolved).
    pub class: String,
    /// Attribute specifications.
    pub attrs: Vec<AttrSpec>,
    /// Source location.
    pub span: Span,
}

/// An arithmetic expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// A term.
    Term(Term),
    /// `(op lhs rhs)`.
    Bin(BinOp, Box<AstExpr>, Box<AstExpr>),
}

/// A predicate test: `(op lhs rhs)` with a comparison operator.
#[derive(Clone, Debug, PartialEq)]
pub struct AstTest {
    /// The comparison.
    pub op: PredOp,
    /// Left expression.
    pub lhs: AstExpr,
    /// Right expression.
    pub rhs: AstExpr,
    /// Source location.
    pub span: Span,
}

/// An LHS item of an object-level rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Ce {
    /// A (possibly negated) pattern.
    Pattern(PatternCe),
    /// A `(test …)` predicate.
    Test(AstTest),
}

/// An RHS action.
#[derive(Clone, Debug, PartialEq)]
pub enum AstAction {
    /// `(make class ^attr expr …)`
    Make {
        /// Class name.
        class: String,
        /// Attribute assignments; unlisted attributes default to `nil`.
        sets: Vec<(String, AstExpr)>,
        /// Source location.
        span: Span,
    },
    /// `(remove k)` — k is the 1-based source ordinal of a pattern CE.
    Remove {
        /// 1-based CE designator.
        ce: u8,
        /// Source location.
        span: Span,
    },
    /// `(modify k ^attr expr …)`
    Modify {
        /// 1-based CE designator.
        ce: u8,
        /// Attribute reassignments.
        sets: Vec<(String, AstExpr)>,
        /// Source location.
        span: Span,
    },
    /// `(bind <var> expr)`
    Bind {
        /// Variable name being introduced.
        var: String,
        /// Its value.
        expr: AstExpr,
        /// Source location.
        span: Span,
    },
    /// `(write expr …)`
    Write {
        /// Values to render.
        exprs: Vec<AstExpr>,
        /// Source location.
        span: Span,
    },
    /// `(halt)`
    Halt {
        /// Source location.
        span: Span,
    },
}

/// An object-level rule: `(p name ce… --> action…)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AstRule {
    /// Rule name.
    pub name: String,
    /// LHS items in source order.
    pub ces: Vec<Ce>,
    /// RHS actions in source order.
    pub actions: Vec<AstAction>,
    /// Source location.
    pub span: Span,
}

/// One positional pattern inside a meta `inst` CE: either `_` (wildcard)
/// or `(class ^attr spec …)`.
#[derive(Clone, Debug, PartialEq)]
pub enum MetaPat {
    /// `_` — matches any WME in this position.
    Wild,
    /// A pattern over the WME in this position. The class must agree with
    /// the object rule's CE class (checked by the compiler).
    Pattern(PatternCe),
}

/// An LHS item of a meta-rule.
#[derive(Clone, Debug, PartialEq)]
pub enum MetaCeAst {
    /// `(inst rule-name pat…)` — matches one instantiation of `rule-name`.
    Inst {
        /// Object rule name.
        rule: String,
        /// Positional patterns over the instantiation's positive-CE WMEs.
        pats: Vec<MetaPat>,
        /// Source location.
        span: Span,
    },
    /// `(test …)` over meta variables.
    Test(AstTest),
}

/// A meta-rule: `(mp name inst-ce… --> (redact k)…)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AstMeta {
    /// Meta-rule name.
    pub name: String,
    /// LHS items.
    pub ces: Vec<MetaCeAst>,
    /// 1-based indices of `inst` CEs to redact.
    pub redacts: Vec<u8>,
    /// Source location.
    pub span: Span,
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `(literalize class attr…)`
    Literalize {
        /// Class name.
        name: String,
        /// Attribute names in slot order.
        attrs: Vec<String>,
        /// Source location.
        span: Span,
    },
    /// An object-level rule.
    Rule(AstRule),
    /// A meta-rule.
    Meta(AstMeta),
    /// `(wm (class ^attr const …) …)` — initial working-memory facts.
    /// Restrictions must be constant equalities; unlisted attributes
    /// default to `nil`.
    WmFacts {
        /// The facts, reusing the pattern shape (validated at compile
        /// time to be ground).
        facts: Vec<PatternCe>,
        /// Source location.
        span: Span,
    },
}

/// A parsed source program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SrcProgram {
    /// Declarations in source order.
    pub decls: Vec<Decl>,
}

impl SrcProgram {
    /// Iterates the object-level rules.
    pub fn rules(&self) -> impl Iterator<Item = &AstRule> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Rule(r) => Some(r),
            _ => None,
        })
    }

    /// Iterates the meta-rules.
    pub fn metas(&self) -> impl Iterator<Item = &AstMeta> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Meta(m) => Some(m),
            _ => None,
        })
    }

    /// Iterates the class declarations.
    pub fn literalizes(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Literalize { name, attrs, .. } => Some((name.as_str(), attrs.as_slice())),
            _ => None,
        })
    }

    /// Iterates the initial working-memory facts, in declaration order.
    pub fn wm_facts(&self) -> impl Iterator<Item = &PatternCe> {
        self.decls.iter().flat_map(|d| match d {
            Decl::WmFacts { facts, .. } => facts.as_slice(),
            _ => &[],
        })
    }
}
