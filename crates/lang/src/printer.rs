//! Canonical pretty-printer: AST → source text.
//!
//! The printer and [`crate::parse`] round-trip: for any well-formed AST,
//! `parse(print(ast))` yields an AST equal to the original modulo spans.
//! This is property-tested in the crate's test suite and used by tooling
//! that rewrites programs (e.g. the copy-and-constrain explainer).

use crate::ast::*;
use parulel_core::expr::BinOp;
use std::fmt::Write;

/// Prints a whole program.
pub fn print_program(p: &SrcProgram) -> String {
    let mut out = String::new();
    for decl in &p.decls {
        match decl {
            Decl::Literalize { name, attrs, .. } => {
                let _ = write!(out, "(literalize {name}");
                for a in attrs {
                    let _ = write!(out, " {a}");
                }
                out.push_str(")\n");
            }
            Decl::Rule(r) => print_rule(&mut out, r),
            Decl::Meta(m) => print_meta(&mut out, m),
            Decl::WmFacts { facts, .. } => {
                out.push_str("(wm\n");
                for f in facts {
                    out.push_str("  ");
                    print_pattern(&mut out, f);
                    out.push('\n');
                }
                out.push_str(")\n");
            }
        }
    }
    out
}

fn print_rule(out: &mut String, r: &AstRule) {
    let _ = writeln!(out, "(p {}", r.name);
    for ce in &r.ces {
        match ce {
            Ce::Pattern(pat) => {
                out.push_str("  ");
                if pat.negated {
                    out.push('-');
                }
                print_pattern(out, pat);
                out.push('\n');
            }
            Ce::Test(t) => {
                out.push_str("  (test ");
                print_test(out, t);
                out.push_str(")\n");
            }
        }
    }
    out.push_str(" -->\n");
    for a in &r.actions {
        out.push_str("  ");
        print_action(out, a);
        out.push('\n');
    }
    out.push_str(")\n");
}

fn print_pattern(out: &mut String, pat: &PatternCe) {
    let _ = write!(out, "({}", pat.class);
    for spec in &pat.attrs {
        let _ = write!(out, " ^{}", spec.attr);
        match spec.restrictions.as_slice() {
            [Restriction::OneOf(cs)] => {
                out.push_str(" <<");
                for c in cs {
                    out.push(' ');
                    print_const(out, c);
                }
                out.push_str(" >>");
            }
            [single] => {
                out.push(' ');
                print_restriction(out, single);
            }
            many => {
                out.push_str(" {");
                for r in many {
                    out.push(' ');
                    print_restriction(out, r);
                }
                out.push_str(" }");
            }
        }
    }
    out.push(')');
}

fn print_restriction(out: &mut String, r: &Restriction) {
    match r {
        Restriction::Cmp(op, term) => {
            if *op != parulel_core::expr::PredOp::Eq {
                let _ = write!(out, "{op} ");
            }
            print_term(out, term);
        }
        Restriction::OneOf(cs) => {
            out.push_str("<<");
            for c in cs {
                out.push(' ');
                print_const(out, c);
            }
            out.push_str(" >>");
        }
    }
}

fn print_const(out: &mut String, c: &Const) {
    match c {
        // Symbols that would not re-lex as a plain symbol are quoted.
        Const::Sym(s) if needs_quoting(s) => {
            let _ = write!(out, "{s:?}");
        }
        Const::Sym(s) => out.push_str(s),
        Const::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Const::Float(f) => {
            let _ = write!(out, "{f:?}");
        }
    }
}

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s == "_"
        || s.starts_with(|c: char| c.is_ascii_digit() || c == '-')
        || s.chars().any(|c| {
            c.is_whitespace()
                || matches!(c, '(' | ')' | '{' | '}' | '^' | '<' | '>' | '=' | ';' | '"')
        })
}

fn print_term(out: &mut String, t: &Term) {
    match t {
        Term::Const(c) => print_const(out, c),
        Term::Var(v) => {
            let _ = write!(out, "<{v}>");
        }
    }
}

fn print_expr(out: &mut String, e: &AstExpr) {
    match e {
        AstExpr::Term(t) => print_term(out, t),
        AstExpr::Bin(op, l, r) => {
            let name = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "//",
                BinOp::Mod => "mod",
            };
            let _ = write!(out, "({name} ");
            print_expr(out, l);
            out.push(' ');
            print_expr(out, r);
            out.push(')');
        }
    }
}

fn print_test(out: &mut String, t: &AstTest) {
    let _ = write!(out, "({} ", t.op);
    print_expr(out, &t.lhs);
    out.push(' ');
    print_expr(out, &t.rhs);
    out.push(')');
}

fn print_action(out: &mut String, a: &AstAction) {
    match a {
        AstAction::Make { class, sets, .. } => {
            let _ = write!(out, "(make {class}");
            print_sets(out, sets);
            out.push(')');
        }
        AstAction::Remove { ce, .. } => {
            let _ = write!(out, "(remove {ce})");
        }
        AstAction::Modify { ce, sets, .. } => {
            let _ = write!(out, "(modify {ce}");
            print_sets(out, sets);
            out.push(')');
        }
        AstAction::Bind { var, expr, .. } => {
            let _ = write!(out, "(bind <{var}> ");
            print_expr(out, expr);
            out.push(')');
        }
        AstAction::Write { exprs, .. } => {
            out.push_str("(write");
            for e in exprs {
                out.push(' ');
                print_expr(out, e);
            }
            out.push(')');
        }
        AstAction::Halt { .. } => out.push_str("(halt)"),
    }
}

fn print_sets(out: &mut String, sets: &[(String, AstExpr)]) {
    for (attr, e) in sets {
        let _ = write!(out, " ^{attr} ");
        print_expr(out, e);
    }
}

fn print_meta(out: &mut String, m: &AstMeta) {
    let _ = writeln!(out, "(mp {}", m.name);
    for ce in &m.ces {
        match ce {
            MetaCeAst::Inst { rule, pats, .. } => {
                let _ = write!(out, "  (inst {rule}");
                for p in pats {
                    out.push(' ');
                    match p {
                        MetaPat::Wild => out.push('_'),
                        MetaPat::Pattern(pat) => print_pattern(out, pat),
                    }
                }
                out.push_str(")\n");
            }
            MetaCeAst::Test(t) => {
                out.push_str("  (test ");
                print_test(out, t);
                out.push_str(")\n");
            }
        }
    }
    out.push_str(" -->\n");
    for r in &m.redacts {
        let _ = writeln!(out, "  (redact {r})");
    }
    out.push_str(")\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Strips spans so ASTs can be compared structurally.
    fn normalize(mut p: SrcProgram) -> SrcProgram {
        use crate::error::Span;
        fn fix_pat(p: &mut PatternCe) {
            p.span = Span::default();
        }
        fn fix_test(t: &mut AstTest) {
            t.span = Span::default();
        }
        for d in &mut p.decls {
            match d {
                Decl::Literalize { span, .. } => *span = Span::default(),
                Decl::Rule(r) => {
                    r.span = Span::default();
                    for ce in &mut r.ces {
                        match ce {
                            Ce::Pattern(pat) => fix_pat(pat),
                            Ce::Test(t) => fix_test(t),
                        }
                    }
                    for a in &mut r.actions {
                        match a {
                            AstAction::Make { span, .. }
                            | AstAction::Remove { span, .. }
                            | AstAction::Modify { span, .. }
                            | AstAction::Bind { span, .. }
                            | AstAction::Write { span, .. }
                            | AstAction::Halt { span } => *span = Span::default(),
                        }
                    }
                }
                Decl::WmFacts { span, facts } => {
                    *span = Span::default();
                    for f in facts {
                        fix_pat(f);
                    }
                }
                Decl::Meta(m) => {
                    m.span = Span::default();
                    for ce in &mut m.ces {
                        match ce {
                            MetaCeAst::Inst { span, pats, .. } => {
                                *span = Span::default();
                                for p in pats {
                                    if let MetaPat::Pattern(pat) = p {
                                        fix_pat(pat);
                                    }
                                }
                            }
                            MetaCeAst::Test(t) => fix_test(t),
                        }
                    }
                }
            }
        }
        p
    }

    fn roundtrip(src: &str) {
        let ast1 = normalize(parse(src).unwrap());
        let printed = print_program(&ast1);
        let ast2 = normalize(
            parse(&printed)
                .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}")),
        );
        assert_eq!(ast1, ast2, "--- printed ---\n{printed}");
    }

    #[test]
    fn roundtrip_kitchen_sink() {
        roundtrip(
            "(literalize job id len machine status)
             (literalize machine id free)
             (p schedule
               (job ^id <j> ^len { > 0 <= 100 } ^machine nil ^status << pending held >>)
               -(machine ^id <j> ^free no)
               (test (> (+ <j> 1) 0))
              -->
               (make machine ^id (* <j> 2) ^free yes)
               (modify 1 ^status running)
               (remove 1)
               (bind <w> (mod <j> 7))
               (write \"fired:\" <w>)
               (halt))
             (mp prefer
               (inst schedule (job ^len <l1>) _)
               (inst schedule (job ^len <l2>))
               (test (> <l1> <l2>))
              -->
               (redact 1))",
        );
    }

    #[test]
    fn roundtrip_negative_numbers_and_floats() {
        roundtrip(
            "(literalize a x)
             (p r (a ^x -3) (a ^x 2.5) (a ^x -0.125) --> (make a ^x (- 0 1)))",
        );
    }

    #[test]
    fn quoted_symbols_survive() {
        roundtrip(
            "(literalize a x)
             (p r (a ^x \"two words\") --> (write \"a;b\" \"-lead\" \"12x\"))",
        );
    }

    #[test]
    fn roundtrip_wm_facts() {
        roundtrip(
            "(literalize job id len)
             (wm (job ^id 1 ^len 5)
                 (job ^id 2)
                 (job))
             (p r (job ^id <j>) --> (remove 1))",
        );
    }

    #[test]
    fn wildcard_symbol_is_quoted() {
        // A symbol spelled "_" must print quoted or it would re-lex as Wild.
        let mut out = String::new();
        print_const(&mut out, &Const::Sym("_".into()));
        assert_eq!(out, "\"_\"");
    }
}
