//! The PARULEL lexer.
//!
//! Hand-rolled scanner producing [`Token`]s with line/column spans.
//! The only interesting disambiguation is around `<` and `>`:
//! `<<`/`>>` delimit constant disjunctions, `<=`/`<>`/`<`/`>=`/`>` are
//! predicates, and `<name>` is a variable.

use crate::error::{LangError, Span};
use crate::token::{Tok, Token};
use parulel_core::expr::PredOp;

/// Character class for symbol bodies: anything not reserved by the syntax.
fn is_sym_char(c: char) -> bool {
    !c.is_whitespace() && !matches!(c, '(' | ')' | '{' | '}' | '^' | '<' | '>' | '=' | ';' | '"')
}

fn is_sym_start(c: char) -> bool {
    is_sym_char(c) && !c.is_ascii_digit() && c != '-'
}

struct Cursor<'a> {
    src: &'a str,
    chars: std::str::CharIndices<'a>,
    peeked: Option<(usize, char)>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<(usize, char)> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.peeked.take().or_else(|| self.chars.next());
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn take_while(&mut self, start: usize, pred: impl Fn(char) -> bool) -> &'a str {
        let mut end = start;
        while let Some((i, c)) = self.peek() {
            if pred(c) {
                end = i + c.len_utf8();
                self.bump();
            } else {
                return &self.src[start..i];
            }
        }
        &self.src[start..end.max(start)]
    }
}

/// Lexes an entire source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `;` comments.
        loop {
            match cur.peek() {
                Some((_, c)) if c.is_whitespace() => {
                    cur.bump();
                }
                Some((_, ';')) => {
                    while let Some((_, c)) = cur.peek() {
                        if c == '\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                _ => break,
            }
        }
        let span = cur.span();
        let Some((start, c)) = cur.peek() else {
            out.push(Token {
                tok: Tok::Eof,
                span,
            });
            return Ok(out);
        };
        let tok = match c {
            '(' => {
                cur.bump();
                Tok::LParen
            }
            ')' => {
                cur.bump();
                Tok::RParen
            }
            '{' => {
                cur.bump();
                Tok::LBrace
            }
            '}' => {
                cur.bump();
                Tok::RBrace
            }
            '=' => {
                cur.bump();
                Tok::Pred(PredOp::Eq)
            }
            '^' => {
                cur.bump();
                let (s, _) = cur
                    .peek()
                    .ok_or_else(|| LangError::new("attribute name expected after ^", span))?;
                let name = cur.take_while(s, is_sym_char);
                if name.is_empty() {
                    return Err(LangError::new("attribute name expected after ^", span));
                }
                Tok::Attr(name.to_string())
            }
            '"' => {
                cur.bump();
                let mut text = String::new();
                loop {
                    match cur.bump() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match cur.bump() {
                            Some((_, 'n')) => text.push('\n'),
                            Some((_, 't')) => text.push('\t'),
                            Some((_, other)) => text.push(other),
                            None => {
                                return Err(LangError::new("unterminated string literal", span))
                            }
                        },
                        Some((_, other)) => text.push(other),
                        None => return Err(LangError::new("unterminated string literal", span)),
                    }
                }
                Tok::Str(text)
            }
            '<' => {
                cur.bump();
                match cur.peek() {
                    Some((_, '<')) => {
                        cur.bump();
                        Tok::LDisj
                    }
                    Some((_, '=')) => {
                        cur.bump();
                        Tok::Pred(PredOp::Le)
                    }
                    Some((_, '>')) => {
                        cur.bump();
                        Tok::Pred(PredOp::Ne)
                    }
                    Some((s, c2)) if is_sym_char(c2) => {
                        let name = cur.take_while(s, is_sym_char);
                        match cur.peek() {
                            Some((_, '>')) => {
                                cur.bump();
                                Tok::Var(name.to_string())
                            }
                            _ => {
                                return Err(LangError::new(
                                    format!("unterminated variable <{name}"),
                                    span,
                                ))
                            }
                        }
                    }
                    _ => Tok::Pred(PredOp::Lt),
                }
            }
            '>' => {
                cur.bump();
                match cur.peek() {
                    Some((_, '>')) => {
                        cur.bump();
                        Tok::RDisj
                    }
                    Some((_, '=')) => {
                        cur.bump();
                        Tok::Pred(PredOp::Ge)
                    }
                    _ => Tok::Pred(PredOp::Gt),
                }
            }
            '-' => {
                cur.bump();
                match cur.peek() {
                    Some((i, c2)) if c2.is_ascii_digit() || c2 == '.' => {
                        let text = cur.take_while(i, |c| {
                            c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-'
                        });
                        number(&format!("-{text}"), span)?
                    }
                    Some((_, '-')) => {
                        cur.bump();
                        match cur.peek() {
                            Some((_, '>')) => {
                                cur.bump();
                                Tok::Arrow
                            }
                            _ => return Err(LangError::new("expected --> after --", span)),
                        }
                    }
                    _ => Tok::Minus,
                }
            }
            d if d.is_ascii_digit() => {
                let text = cur.take_while(start, |c| {
                    c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-'
                });
                number(text, span)?
            }
            s if is_sym_start(s) => {
                let name = cur.take_while(start, is_sym_char);
                if name == "_" {
                    Tok::Wild
                } else {
                    Tok::Sym(name.to_string())
                }
            }
            other => {
                return Err(LangError::new(
                    format!("unexpected character '{other}'"),
                    span,
                ));
            }
        };
        out.push(Token { tok, span });
    }
}

fn number(text: &str, span: Span) -> Result<Tok, LangError> {
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(Tok::Float)
            .map_err(|_| LangError::new(format!("bad float literal '{text}'"), span))
    } else {
        text.parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| LangError::new(format!("bad integer literal '{text}'"), span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let mut v: Vec<Tok> = lex(src).unwrap().into_iter().map(|t| t.tok).collect();
        assert_eq!(v.pop(), Some(Tok::Eof));
        v
    }

    #[test]
    fn punctuation_and_arrow() {
        assert_eq!(
            toks("( ) { } -->"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Arrow
            ]
        );
    }

    #[test]
    fn angle_disambiguation() {
        assert_eq!(
            toks("< <= <> << <x> > >= >>"),
            vec![
                Tok::Pred(PredOp::Lt),
                Tok::Pred(PredOp::Le),
                Tok::Pred(PredOp::Ne),
                Tok::LDisj,
                Tok::Var("x".into()),
                Tok::Pred(PredOp::Gt),
                Tok::Pred(PredOp::Ge),
                Tok::RDisj,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.5 -0.25 1e3"),
            vec![
                Tok::Int(42),
                Tok::Int(-7),
                Tok::Float(3.5),
                Tok::Float(-0.25),
                Tok::Float(1000.0),
            ]
        );
    }

    #[test]
    fn symbols_attrs_vars() {
        assert_eq!(
            toks("job ^status <j-2> nil rule-name mod // + *"),
            vec![
                Tok::Sym("job".into()),
                Tok::Attr("status".into()),
                Tok::Var("j-2".into()),
                Tok::Sym("nil".into()),
                Tok::Sym("rule-name".into()),
                Tok::Sym("mod".into()),
                Tok::Sym("//".into()),
                Tok::Sym("+".into()),
                Tok::Sym("*".into()),
            ]
        );
    }

    #[test]
    fn minus_vs_negation_vs_arrow() {
        assert_eq!(
            toks("-( - -3 -->"),
            vec![
                Tok::Minus,
                Tok::LParen,
                Tok::Minus,
                Tok::Int(-3),
                Tok::Arrow
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hello" "a\nb" "q\"q""#),
            vec![
                Tok::Str("hello".into()),
                Tok::Str("a\nb".into()),
                Tok::Str("q\"q".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("foo ; a comment ( ) <x>\nbar"),
            vec![Tok::Sym("foo".into()), Tok::Sym("bar".into())]
        );
    }

    #[test]
    fn wildcard() {
        assert_eq!(toks("_ _x"), vec![Tok::Wild, Tok::Sym("_x".into())]);
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("foo\n  bar").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }

    #[test]
    fn errors() {
        assert!(lex("<unclosed").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("--").is_err());
        assert!(lex("98765432109876543210987").is_err()); // i64 overflow
    }

    #[test]
    fn eq_pred() {
        assert_eq!(toks("="), vec![Tok::Pred(PredOp::Eq)]);
    }
}
