//! Source-located error reporting for the lexer, parser and compiler.

use std::fmt;

/// A half-open byte span with line/column of its start (1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column of the span start.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error raised while lexing, parsing or compiling PARULEL source.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// Human-readable description.
    pub msg: String,
    /// Where the problem was found.
    pub span: Span,
}

impl LangError {
    /// Builds an error at `span`.
    pub fn new(msg: impl Into<String>, span: Span) -> Self {
        LangError {
            msg: msg.into(),
            span,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = LangError::new("unexpected token", Span::new(3, 14));
        assert_eq!(e.to_string(), "3:14: unexpected token");
    }
}
