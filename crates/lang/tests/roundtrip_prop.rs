//! Property test: for any well-formed AST the pretty-printer emits source
//! that re-parses to the same AST (modulo spans).

use parulel_core::expr::{BinOp, PredOp};
use parulel_lang::ast::*;
use parulel_lang::error::Span;
use parulel_lang::printer::print_program;
use proptest::prelude::*;

// ---------- generators ----------

fn ident() -> impl Strategy<Value = String> {
    // identifiers the lexer accepts as bare symbols
    "[a-z][a-z0-9-]{0,6}".prop_map(|s| s)
}

fn constant() -> impl Strategy<Value = Const> {
    prop_oneof![
        ident().prop_map(Const::Sym),
        // quoted-symbol path: strings with spaces and reserved chars
        "[a-z ;^<>=()]{1,8}".prop_map(Const::Sym),
        (-1000i64..1000).prop_map(Const::Int),
        (-100.0f64..100.0).prop_map(|f| Const::Float((f * 4.0).round() / 4.0)),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        constant().prop_map(Term::Const),
        ident().prop_map(Term::Var),
    ]
}

fn pred() -> impl Strategy<Value = PredOp> {
    prop_oneof![
        Just(PredOp::Eq),
        Just(PredOp::Ne),
        Just(PredOp::Lt),
        Just(PredOp::Le),
        Just(PredOp::Gt),
        Just(PredOp::Ge),
    ]
}

fn restriction() -> impl Strategy<Value = Restriction> {
    prop_oneof![
        3 => (pred(), term()).prop_map(|(op, t)| Restriction::Cmp(op, t)),
        1 => prop::collection::vec(constant(), 1..3).prop_map(Restriction::OneOf),
    ]
}

fn attr_spec() -> impl Strategy<Value = AttrSpec> {
    (ident(), prop::collection::vec(restriction(), 1..3))
        .prop_map(|(attr, restrictions)| AttrSpec { attr, restrictions })
}

fn pattern(negated: bool) -> impl Strategy<Value = PatternCe> {
    (ident(), prop::collection::vec(attr_spec(), 0..3)).prop_map(move |(class, attrs)| PatternCe {
        negated,
        class,
        attrs,
        span: Span::default(),
    })
}

fn expr() -> impl Strategy<Value = AstExpr> {
    let leaf = term().prop_map(AstExpr::Term);
    leaf.prop_recursive(3, 12, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div),
                Just(BinOp::Mod),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| AstExpr::Bin(op, Box::new(l), Box::new(r)))
    })
}

fn test_ce() -> impl Strategy<Value = AstTest> {
    (pred(), expr(), expr()).prop_map(|(op, lhs, rhs)| AstTest {
        op,
        lhs,
        rhs,
        span: Span::default(),
    })
}

fn ce() -> impl Strategy<Value = Ce> {
    prop_oneof![
        3 => pattern(false).prop_map(Ce::Pattern),
        1 => pattern(true).prop_map(Ce::Pattern),
        1 => test_ce().prop_map(Ce::Test),
    ]
}

fn action() -> impl Strategy<Value = AstAction> {
    prop_oneof![
        (ident(), prop::collection::vec((ident(), expr()), 0..3)).prop_map(|(class, sets)| {
            AstAction::Make {
                class,
                sets,
                span: Span::default(),
            }
        }),
        (1u8..5).prop_map(|ce| AstAction::Remove {
            ce,
            span: Span::default()
        }),
        (1u8..5, prop::collection::vec((ident(), expr()), 0..2)).prop_map(|(ce, sets)| {
            AstAction::Modify {
                ce,
                sets,
                span: Span::default(),
            }
        }),
        (ident(), expr()).prop_map(|(var, expr)| AstAction::Bind {
            var,
            expr,
            span: Span::default()
        }),
        prop::collection::vec(expr(), 0..3).prop_map(|exprs| AstAction::Write {
            exprs,
            span: Span::default()
        }),
        Just(AstAction::Halt {
            span: Span::default()
        }),
    ]
}

fn rule() -> impl Strategy<Value = AstRule> {
    (
        ident(),
        // first CE must be a pattern (rule LHS cannot start with a test,
        // and the printer/parser pair should preserve that invariant)
        pattern(false),
        prop::collection::vec(ce(), 0..3),
        prop::collection::vec(action(), 0..4),
    )
        .prop_map(|(name, first, rest, actions)| {
            let mut ces = vec![Ce::Pattern(first)];
            ces.extend(rest);
            AstRule {
                name,
                ces,
                actions,
                span: Span::default(),
            }
        })
}

fn meta_pat() -> impl Strategy<Value = MetaPat> {
    prop_oneof![
        Just(MetaPat::Wild),
        pattern(false).prop_map(MetaPat::Pattern),
    ]
}

fn meta() -> impl Strategy<Value = AstMeta> {
    (
        ident(),
        (ident(), prop::collection::vec(meta_pat(), 0..3)),
        prop::collection::vec(test_ce(), 0..2),
        prop::collection::vec(1u8..4, 1..3),
    )
        .prop_map(|(name, (rule, pats), tests, redacts)| {
            let mut ces = vec![MetaCeAst::Inst {
                rule,
                pats,
                span: Span::default(),
            }];
            ces.extend(tests.into_iter().map(MetaCeAst::Test));
            AstMeta {
                name,
                ces,
                redacts,
                span: Span::default(),
            }
        })
}

fn decl() -> impl Strategy<Value = Decl> {
    prop_oneof![
        (ident(), prop::collection::vec(ident(), 0..4)).prop_map(|(name, attrs)| {
            Decl::Literalize {
                name,
                attrs,
                span: Span::default(),
            }
        }),
        rule().prop_map(Decl::Rule),
        meta().prop_map(Decl::Meta),
        prop::collection::vec(pattern(false), 1..3).prop_map(|facts| Decl::WmFacts {
            facts,
            span: Span::default()
        }),
    ]
}

fn program() -> impl Strategy<Value = SrcProgram> {
    prop::collection::vec(decl(), 1..5).prop_map(|decls| SrcProgram { decls })
}

// ---------- normalization (strip spans) ----------

fn strip(mut p: SrcProgram) -> SrcProgram {
    fn fix_pat(pat: &mut PatternCe) {
        pat.span = Span::default();
    }
    fn fix_test(t: &mut AstTest) {
        t.span = Span::default();
    }
    for d in &mut p.decls {
        match d {
            Decl::Literalize { span, .. } => *span = Span::default(),
            Decl::WmFacts { span, facts } => {
                *span = Span::default();
                facts.iter_mut().for_each(fix_pat);
            }
            Decl::Rule(r) => {
                r.span = Span::default();
                for ce in &mut r.ces {
                    match ce {
                        Ce::Pattern(pat) => fix_pat(pat),
                        Ce::Test(t) => fix_test(t),
                    }
                }
                for a in &mut r.actions {
                    match a {
                        AstAction::Make { span, .. }
                        | AstAction::Remove { span, .. }
                        | AstAction::Modify { span, .. }
                        | AstAction::Bind { span, .. }
                        | AstAction::Write { span, .. }
                        | AstAction::Halt { span } => *span = Span::default(),
                    }
                }
            }
            Decl::Meta(m) => {
                m.span = Span::default();
                for ce in &mut m.ces {
                    match ce {
                        MetaCeAst::Inst { span, pats, .. } => {
                            *span = Span::default();
                            for pat in pats {
                                if let MetaPat::Pattern(p) = pat {
                                    fix_pat(p);
                                }
                            }
                        }
                        MetaCeAst::Test(t) => fix_test(t),
                    }
                }
            }
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_then_parse_is_identity(ast in program()) {
        let printed = print_program(&ast);
        let reparsed = parulel_lang::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(
            strip(ast),
            strip(reparsed),
            "--- printed ---\n{}",
            printed
        );
    }
}
