//! Robustness properties: the lexer/parser/compiler never panic — any
//! byte soup either parses or returns a located `LangError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn lexer_total_on_arbitrary_strings(src in ".{0,200}") {
        let _ = parulel_lang::lexer::lex(&src); // must not panic
    }

    #[test]
    fn parser_total_on_arbitrary_strings(src in ".{0,200}") {
        let _ = parulel_lang::parse(&src); // must not panic
    }

    #[test]
    fn compiler_total_on_paren_soup(
        src in r#"[() a-z0-9<>^{}\-=;"]{0,160}"#
    ) {
        // biased toward token-shaped garbage to reach deeper phases
        let _ = parulel_lang::compile_with_wm(&src); // must not panic
    }

    #[test]
    fn every_parse_error_locates_within_the_source(src in "[ -~\n]{0,200}") {
        // Printable-ASCII soup: whenever the front end rejects it, the
        // diagnostic must carry a usable 1-based line/column inside (or
        // one past) the input — a frame the serve daemon forwards
        // verbatim to remote clients, who have nothing else to go on.
        if let Err(e) = parulel_lang::parse(&src) {
            let lines = src.lines().count().max(1) as u32;
            prop_assert!(
                e.span.line >= 1 && e.span.line <= lines + 1,
                "line {} outside 1..={} for {src:?}",
                e.span.line,
                lines + 1
            );
            prop_assert!(e.span.col >= 1, "col 0 in error for {src:?}");
        }
        if let Err(e) = parulel_lang::compile_with_wm(&src) {
            prop_assert!(e.span.line >= 1 && e.span.col >= 1, "{src:?} -> {e}");
        }
    }

    #[test]
    fn compiler_total_on_mangled_programs(
        head in prop::sample::select(vec![
            "(literalize a x y)",
            "(literalize a x y) (p r (a ^x <v>) -->",
            "(p r (a ^x <v>) --> (remove 1))",
            "(mp m (inst r) --> (redact 1))",
            "(wm (a ^x 1))",
        ]),
        tail in r#"[() a-z0-9<>^{}\-=]{0,60}"#,
    ) {
        let src = format!("{head} {tail}");
        let _ = parulel_lang::compile_with_wm(&src); // must not panic
    }
}

#[test]
fn errors_carry_positions_on_deep_garbage() {
    for src in [
        "((((((((((",
        "(p (p (p",
        "(literalize literalize literalize)",
        "(p r (a ^ ^ ^) --> )",
        "(wm (wm (wm)))",
        "\u{0}\u{1}\u{2}",
        "(p r (a ^x <<<<<>>>>>) --> (halt))",
    ] {
        if let Err(e) = parulel_lang::compile_with_wm(src) {
            assert!(e.span.line >= 1, "{src:?} -> {e}");
        }
    }
}
