//! # parulel-server
//!
//! The rule-serving daemon behind `parulel serve`: many independent
//! engine **sessions** multiplexed over a line-delimited JSON protocol.
//!
//! The ROADMAP's north star is a rule engine that serves streams of
//! facts, not one-shot batch runs — the shape PARULEL's incremental
//! match and the kernel's `inject` path were built for. This crate adds
//! the serving layer:
//!
//! * [`protocol`] — the frame format: request/response shapes, stable
//!   error kinds, snapshot hex transport, WM fingerprints.
//! * [`session`] — one served session: a private [`parulel_engine::Engine`]
//!   plus a *bounded* inject queue (backpressure is an explicit error
//!   frame, not unbounded buffering).
//! * [`server`] — the synchronous core: admission control
//!   (`max_sessions`), per-session budgets mapped onto the kernel's
//!   `EngineError` machinery, and graceful degradation — a budget trip,
//!   RHS failure, or panic kills one session with a structured error
//!   frame, never the daemon.
//! * [`sched`] — the sharded session scheduler: sessions hash across N
//!   shared-nothing worker threads, each owning a whole [`Server`]; long
//!   `run` frames execute in cooperative step-quantum slices so neighbor
//!   sessions never wait behind a closure.
//! * [`dispatch`] — the readiness-driven event loop (`poll(2)` + a
//!   self-pipe): one dispatcher thread parses frames off every
//!   connection, routes them to shard inboxes, and writes responses
//!   back in per-connection request order.
//! * [`transport`] — stdin/stdout line pump plus the legacy
//!   thread-per-connection TCP/Unix transports over a `Mutex<Server>`
//!   (kept as the single-lock baseline BENCH_serve compares against),
//!   with graceful SIGTERM/SIGINT shutdown for the socket transports.
//! * [`wal`] — the durability layer: a per-session write-ahead log of
//!   accepted mutating frames (length-prefixed, CRC-checksummed,
//!   log-before-apply) with configurable fsync policy and atomic
//!   snapshot compaction.
//! * [`recovery`] — daemon-start recovery: scan the WAL directory, load
//!   each session's latest snapshot, replay the frame tail through the
//!   same deterministic core, truncate torn trailing records.
//!
//! ## Protocol verbs
//!
//! `open` (program + policy + matcher + budgets), `inject` (batched WME
//! deltas), `step`, `run`/`run-to-fixpoint`, `query` (per-class WM
//! scan), `snapshot`/`restore` (snapshot v2 over hex), `metrics`
//! (per-session counters, optionally the full parulel-metrics/v1
//! report; without a session, server totals), `trace` (the session's
//! structured event ring as JSONL), `close`, `ping`, `shutdown`. See
//! `DESIGN.md` for the full frame reference.

#![warn(missing_docs)]

pub mod dispatch;
pub mod protocol;
pub mod recovery;
pub mod sched;
pub mod server;
pub mod session;
pub mod transport;
pub mod wal;

pub use dispatch::{serve_sched_tcp, serve_sched_unix, spawn_sched_tcp, EventLoopOpts};
pub use protocol::{fingerprint_hex, wm_fingerprint, Failure};
pub use recovery::{recover, recover_shard, RecoveryReport};
pub use sched::{shard_of, Sched};
pub use server::{Handled, Server, ServerConfig};
pub use session::Session;
pub use transport::{
    serve_lines, serve_stdio, serve_stdio_with, serve_tcp, serve_tcp_with, serve_unix,
    serve_unix_with, set_read_poll_interval, spawn_tcp,
};
pub use wal::{SyncPolicy, WalConfig};
