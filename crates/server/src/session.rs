//! One served session: a long-lived [`Engine`] plus its bounded inject
//! queue and lifetime counters.
//!
//! A session is the unit of isolation. Each owns a private engine
//! (program, working memory, matcher, refraction, budgets, trace ring) —
//! sessions share nothing, so one session's budget trip, RHS failure, or
//! panic cannot corrupt another. Injected deltas are *queued*, not
//! applied: the queue is bounded (backpressure is an explicit protocol
//! error, not unbounded buffering), and it drains — in FIFO order,
//! through the kernel's incremental [`Engine::inject`] path — at the next
//! `step` or `run`, which is the only point the engine advances anyway.

use crate::protocol::{self, Failure};
use parulel_core::Delta;
use parulel_engine::{Engine, EngineError};
use std::collections::VecDeque;

/// A served session. See the [module docs](self).
pub struct Session {
    /// The session's private engine.
    pub engine: Engine,
    /// Queued, not-yet-applied injects (FIFO).
    queue: VecDeque<Delta>,
    /// Sum of `len()` over queued deltas (the backpressure meter).
    depth: usize,
    /// Queue capacity in WME changes; `inject` frames that would exceed
    /// it are refused whole.
    cap: usize,
    /// Lifetime WMEs asserted through `inject` (after draining).
    pub injected_adds: u64,
    /// Lifetime WMEs retracted through `inject` (after draining).
    pub injected_removes: u64,
    /// Rendered inject frames mirroring the queue, cleared on drain.
    /// Only maintained when durability is on: a WAL compaction record
    /// carries them so queued-but-undrained injects survive log
    /// truncation.
    pending_lines: Vec<String>,
    /// Rendered `reload` frames accepted over the session's lifetime, in
    /// order. Only maintained when durability is on: an engine snapshot
    /// captures *state* but not the program, so a compaction record
    /// replays `open`, then these, then the snapshot restore — keeping
    /// the interning order (and thus every symbol id live WMEs refer to)
    /// identical to the original run.
    reload_lines: Vec<String>,
}

impl Session {
    /// Wraps a freshly built engine with an empty queue of capacity
    /// `cap` changes.
    pub fn new(engine: Engine, cap: usize) -> Session {
        Session {
            engine,
            queue: VecDeque::new(),
            depth: 0,
            cap,
            injected_adds: 0,
            injected_removes: 0,
            pending_lines: Vec::new(),
            reload_lines: Vec::new(),
        }
    }

    /// Pending change count (the queue's backpressure meter).
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    /// Enqueues one inject delta, refusing the whole frame if it would
    /// overflow the bounded queue. Returns the number of changes queued.
    pub fn enqueue(&mut self, delta: Delta) -> Result<usize, Failure> {
        let n = delta.len();
        if self.depth + n > self.cap {
            return Err(Failure::new(
                protocol::kind::BACKPRESSURE,
                format!(
                    "inject queue full: {} queued + {} new > cap {} (drain with step/run)",
                    self.depth, n, self.cap
                ),
            ));
        }
        self.depth += n;
        self.queue.push_back(delta);
        Ok(n)
    }

    /// Records the rendered inject frame backing the most recent
    /// [`Session::enqueue`] (durability bookkeeping; see
    /// [`Session::pending_lines`]).
    pub fn note_pending(&mut self, line: String) {
        self.pending_lines.push(line);
    }

    /// The rendered inject frames still queued (for WAL compaction
    /// records).
    pub fn pending_lines(&self) -> &[String] {
        &self.pending_lines
    }

    /// Records an accepted `reload` frame (durability bookkeeping; see
    /// [`Session::reload_lines`]).
    pub fn note_reload(&mut self, line: String) {
        self.reload_lines.push(line);
    }

    /// Every accepted `reload` frame, in order (for WAL compaction
    /// records).
    pub fn reload_lines(&self) -> &[String] {
        &self.reload_lines
    }

    /// Applies every queued delta through the kernel's incremental
    /// inject path, FIFO. Returns the number of changes drained.
    pub fn drain(&mut self) -> usize {
        let drained = self.depth;
        while let Some(delta) = self.queue.pop_front() {
            let (removed, added) = self.engine.inject(&delta);
            self.injected_adds += added.len() as u64;
            self.injected_removes += removed.len() as u64;
        }
        self.depth = 0;
        self.pending_lines.clear();
        drained
    }

    /// The session's working-memory fingerprint (see
    /// [`protocol::fingerprint_hex`]).
    pub fn fingerprint(&self) -> String {
        protocol::fingerprint_hex(self.engine.wm())
    }
}

/// Maps an [`EngineError`] onto the structured `engine` failure frame
/// that kills this session (and only this session).
pub fn engine_failure(err: &EngineError) -> Failure {
    let mut failure = Failure::new(protocol::kind::ENGINE, err.to_string());
    failure.engine = Some((err.kind(), err.cycle().unwrap_or(0)));
    failure.closed = true;
    failure
}
