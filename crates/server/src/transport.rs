//! Line pumps: stdio, TCP, and Unix-socket transports over one shared
//! [`Server`].
//!
//! Every transport is the same loop — read a line, hand it to
//! [`Server::handle_line`], write the one-line response — so the
//! protocol behaves identically everywhere and the synchronous core
//! stays the single tested implementation. Socket transports serve each
//! connection on its own thread against a `Mutex`-shared server: frames
//! from concurrent clients interleave at frame granularity, which is
//! exactly the protocol's unit of atomicity.
//!
//! ## Graceful shutdown
//!
//! The socket transports install SIGTERM/SIGINT handlers that only set
//! an atomic flag; the accept loop (which already wakes every 10ms) and
//! the per-connection pumps (which read with a short timeout) poll it.
//! On a signal the server's [`Server::persist_all`] runs — every live
//! session's WAL is compacted to a snapshot record and fsynced — before
//! the process exits, so a politely-killed daemon recovers exactly like
//! a `kill -9`'d one, just without replay. The stdio transport does
//! *not* install handlers: its natural shutdown is EOF, and Ctrl-C
//! should keep killing an interactive pipe immediately.

use crate::server::{Server, ServerConfig};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Set by the SIGTERM/SIGINT handler; polled by accept loops and pumps.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// A pipe write-end the signal handler pokes so a `poll(2)`-based
/// dispatcher wakes immediately instead of waiting out its timeout.
/// `-1` when no dispatcher is running.
static SIGNAL_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

/// True once SIGTERM or SIGINT has been received (only ever true after
/// [`install_signal_handlers`] ran).
pub fn signal_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Registers `fd` (a self-pipe write end) to be poked on
/// SIGTERM/SIGINT. Pass `-1` to deregister (before closing the pipe).
pub(crate) fn register_signal_wake(fd: i32) {
    SIGNAL_WAKE_FD.store(fd, Ordering::SeqCst);
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: an atomic store and (when a dispatcher is
    // registered) one write(2) — both on the POSIX safe list.
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    let fd = SIGNAL_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        extern "C" {
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        }
        let byte = b"S";
        unsafe {
            let _ = write(fd, byte.as_ptr(), 1);
        }
    }
}

/// Installs flag-setting handlers for SIGTERM and SIGINT. Uses libc's
/// `signal(2)` directly — std already links it, and glibc's `signal`
/// gives BSD semantics (the handler stays installed). Idempotent.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// How long a socket read blocks before the pump rechecks the shutdown
/// flags, in milliseconds. Bounds graceful-shutdown latency for idle
/// connections on the legacy thread-per-connection transports (the
/// scheduler's dispatcher has no per-connection timeouts at all — it
/// sleeps in `poll(2)` and is woken by the signal handler's self-pipe).
static READ_POLL_MS: AtomicU64 = AtomicU64::new(250);

/// Overrides the legacy transports' read-poll interval (tests shrink it
/// to keep shutdown-latency assertions fast; operators can stretch it —
/// each wake is now just two atomic loads, never a server lock).
pub fn set_read_poll_interval(interval: Duration) {
    READ_POLL_MS.store(interval.as_millis().max(1) as u64, Ordering::SeqCst);
}

fn read_poll_interval() -> Duration {
    Duration::from_millis(READ_POLL_MS.load(Ordering::SeqCst))
}

/// Pumps one line-delimited stream through `server` until EOF or
/// shutdown. The stdio transport, and the building block the socket
/// transports run per connection.
///
/// Tolerates timed-out reads (sockets with a read timeout use them to
/// poll for shutdown): a timeout mid-line keeps the partial line and
/// resumes reading it.
pub fn serve_lines<R: BufRead, W: Write>(
    server: &Arc<Mutex<Server>>,
    mut input: R,
    output: &mut W,
) -> io::Result<()> {
    // The shared shutdown signal: timed-out reads check it lock-free,
    // so an idle connection's periodic wake never contends on the
    // server mutex (the old behavior locked the whole server 4×/s per
    // idle connection just to read one flag).
    let down = server.lock().expect("server lock poisoned").shutdown_signal();
    let mut line = String::new();
    loop {
        match input.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let mut locked = server.lock().expect("server lock poisoned");
                let response = locked.handle_line(&line);
                let done = locked.shutting_down();
                drop(locked);
                line.clear();
                if let Some(response) = response {
                    output.write_all(response.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                }
                if done {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if down.load(Ordering::SeqCst) || signal_requested() {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serves the process's stdin/stdout until EOF or a `shutdown` frame.
pub fn serve_stdio(config: ServerConfig) -> io::Result<()> {
    serve_stdio_with(Arc::new(Mutex::new(Server::new(config))))
}

/// [`serve_stdio`] over a prebuilt (possibly recovered) server.
pub fn serve_stdio_with(server: Arc<Mutex<Server>>) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    serve_lines(&server, stdin.lock(), &mut stdout)
}

/// Binds `addr` (e.g. `127.0.0.1:7466` or `127.0.0.1:0`) and serves TCP
/// connections until a `shutdown` frame or SIGTERM/SIGINT arrives.
/// Blocks the caller.
pub fn serve_tcp(config: ServerConfig, addr: &str) -> io::Result<SocketAddr> {
    serve_tcp_with(Arc::new(Mutex::new(Server::new(config))), addr)
}

/// [`serve_tcp`] over a prebuilt (possibly recovered) server. Installs
/// the graceful-shutdown signal handlers.
pub fn serve_tcp_with(server: Arc<Mutex<Server>>, addr: &str) -> io::Result<SocketAddr> {
    install_signal_handlers();
    let (bound, handle) = spawn_tcp(server, addr)?;
    handle.join().expect("tcp accept thread panicked");
    Ok(bound)
}

/// Binds `addr` and serves TCP connections on a background accept
/// thread. Returns the bound address (resolving port 0) and the accept
/// thread's handle, which finishes once a `shutdown` frame is served or
/// a handled signal arrives.
pub fn spawn_tcp(
    server: Arc<Mutex<Server>>,
    addr: &str,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Non-blocking accept so the loop can notice shutdown between
    // connections (the daemon has no other wake-up source).
    listener.set_nonblocking(true)?;
    let handle = thread::spawn(move || {
        let down = server.lock().expect("server lock poisoned").shutdown_signal();
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(&server);
                    connections.push(thread::spawn(move || serve_tcp_conn(server, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if poll_shutdown(&server, &down) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        for conn in connections {
            let _ = conn.join();
        }
    });
    Ok((bound, handle))
}

/// One accept-loop tick: reacts to a handled signal by persisting every
/// session's WAL and marking the server down; reports whether the loop
/// should exit.
fn poll_shutdown(server: &Arc<Mutex<Server>>, down: &AtomicBool) -> bool {
    // Steady state is lock-free: the accept loop only takes the server
    // lock once a signal actually arrives.
    if signal_requested() && !down.load(Ordering::SeqCst) {
        let persisted = server
            .lock()
            .expect("server lock poisoned")
            .graceful_shutdown();
        if persisted > 0 {
            eprintln!("parulel serve: signal received; persisted {persisted} session(s)");
        }
    }
    down.load(Ordering::SeqCst)
}

fn serve_tcp_conn(server: Arc<Mutex<Server>>, stream: TcpStream) {
    // One-line request/response frames: Nagle's algorithm only adds
    // delayed-ACK stalls here.
    let _ = stream.set_nodelay(true);
    // Bounded reads so idle connections notice shutdown.
    let _ = stream.set_read_timeout(Some(read_poll_interval()));
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = serve_lines(&server, reader, &mut writer);
}

/// Binds a Unix socket at `path` (removing a stale socket file first)
/// and serves connections until a `shutdown` frame or SIGTERM/SIGINT
/// arrives.
pub fn serve_unix(config: ServerConfig, path: &str) -> io::Result<()> {
    serve_unix_with(Arc::new(Mutex::new(Server::new(config))), path)
}

/// [`serve_unix`] over a prebuilt (possibly recovered) server. Installs
/// the graceful-shutdown signal handlers.
pub fn serve_unix_with(server: Arc<Mutex<Server>>, path: &str) -> io::Result<()> {
    install_signal_handlers();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let down = server.lock().expect("server lock poisoned").shutdown_signal();
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                connections.push(thread::spawn(move || serve_unix_conn(server, stream)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if poll_shutdown(&server, &down) {
                    break;
                }
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for conn in connections {
        let _ = conn.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn serve_unix_conn(server: Arc<Mutex<Server>>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(read_poll_interval()));
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = serve_lines(&server, reader, &mut writer);
}
