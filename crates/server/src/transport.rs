//! Line pumps: stdio, TCP, and Unix-socket transports over one shared
//! [`Server`].
//!
//! Every transport is the same loop — read a line, hand it to
//! [`Server::handle_line`], write the one-line response — so the
//! protocol behaves identically everywhere and the synchronous core
//! stays the single tested implementation. Socket transports serve each
//! connection on its own thread against a `Mutex`-shared server: frames
//! from concurrent clients interleave at frame granularity, which is
//! exactly the protocol's unit of atomicity.

use crate::server::{Server, ServerConfig};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Pumps one line-delimited stream through `server` until EOF or
/// shutdown. The stdio transport, and the building block the socket
/// transports run per connection.
pub fn serve_lines<R: BufRead, W: Write>(
    server: &Arc<Mutex<Server>>,
    input: R,
    output: &mut W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let mut locked = server.lock().expect("server lock poisoned");
        let response = locked.handle_line(&line);
        let done = locked.shutting_down();
        drop(locked);
        if let Some(response) = response {
            output.write_all(response.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
        if done {
            break;
        }
    }
    Ok(())
}

/// Serves the process's stdin/stdout until EOF or a `shutdown` frame.
pub fn serve_stdio(config: ServerConfig) -> io::Result<()> {
    let server = Arc::new(Mutex::new(Server::new(config)));
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    serve_lines(&server, stdin.lock(), &mut stdout)
}

/// Binds `addr` (e.g. `127.0.0.1:7466` or `127.0.0.1:0`) and serves TCP
/// connections until a `shutdown` frame arrives. Blocks the caller.
pub fn serve_tcp(config: ServerConfig, addr: &str) -> io::Result<SocketAddr> {
    let server = Arc::new(Mutex::new(Server::new(config)));
    let (bound, handle) = spawn_tcp(server, addr)?;
    handle.join().expect("tcp accept thread panicked");
    Ok(bound)
}

/// Binds `addr` and serves TCP connections on a background accept
/// thread. Returns the bound address (resolving port 0) and the accept
/// thread's handle, which finishes once a `shutdown` frame is served.
pub fn spawn_tcp(
    server: Arc<Mutex<Server>>,
    addr: &str,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Non-blocking accept so the loop can notice shutdown between
    // connections (the daemon has no other wake-up source).
    listener.set_nonblocking(true)?;
    let handle = thread::spawn(move || {
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(&server);
                    connections.push(thread::spawn(move || serve_tcp_conn(server, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if server.lock().expect("server lock poisoned").shutting_down() {
                        break;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        for conn in connections {
            let _ = conn.join();
        }
    });
    Ok((bound, handle))
}

fn serve_tcp_conn(server: Arc<Mutex<Server>>, stream: TcpStream) {
    // One-line request/response frames: Nagle's algorithm only adds
    // delayed-ACK stalls here.
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = serve_lines(&server, reader, &mut writer);
}

/// Binds a Unix socket at `path` (removing a stale socket file first)
/// and serves connections until a `shutdown` frame arrives.
pub fn serve_unix(config: ServerConfig, path: &str) -> io::Result<()> {
    let server = Arc::new(Mutex::new(Server::new(config)));
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                connections.push(thread::spawn(move || serve_unix_conn(server, stream)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if server.lock().expect("server lock poisoned").shutting_down() {
                    break;
                }
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for conn in connections {
        let _ = conn.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn serve_unix_conn(server: Arc<Mutex<Server>>, stream: UnixStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = serve_lines(&server, reader, &mut writer);
}
