//! The wire protocol: line-delimited JSON frames.
//!
//! Every request is one JSON object on one line; every request produces
//! exactly one JSON object response on one line. The first field of a
//! response is always `"ok"`; error responses carry a structured
//! `"error"` object with a stable `kind` tag so clients can dispatch
//! without parsing prose:
//!
//! ```text
//! {"ok":true,"op":"open","session":"s1","rules":2,"wm":40}
//! {"ok":false,"op":"inject","session":"s1",
//!  "error":{"kind":"backpressure","msg":"inject queue full (cap 1024)"}}
//! ```
//!
//! JSON framing reuses the engine's hand-rolled [`Json`] tree (the build
//! is offline; there is no serde anywhere in the workspace). Helpers
//! here are pure: frame assembly, hex transport encoding for snapshot
//! bytes, value conversion, and the FNV-1a working-memory fingerprint
//! the determinism suite established.

use parulel_core::{Value, WorkingMemory};
use parulel_engine::Json;

/// Stable error kinds carried in `error.kind`.
///
/// * `parse` — the frame is not a complete JSON object.
/// * `protocol` — well-formed JSON, but not a valid request (unknown
///   verb, missing/ill-typed field, unknown class, arity mismatch).
/// * `unknown-session` — the named session does not exist (never opened,
///   already closed, or killed by an engine failure).
/// * `session-exists` — `open` with a name already in use.
/// * `admission` — `open` refused: the server is at `max_sessions`.
/// * `backpressure` — `inject` refused: the session's bounded queue is
///   full; drain it with `step`/`run` and retry.
/// * `compile` — the `open` program failed to compile (message carries
///   the `line:col` from the language front end).
/// * `engine` — a budget trip, RHS failure, or panic inside the cycle
///   kernel; the frame also carries `engine_kind`/`cycle` and
///   `closed:true` (the session is gone, the daemon is not).
/// * `snapshot` — bad snapshot bytes on `restore`.
/// * `reload` — a `reload` replacement program was refused (class table
///   mismatch); the session keeps running its previous program.
/// * `wal` — the durability layer could not append or fsync a session's
///   write-ahead log; the frame was NOT applied (log-before-apply).
pub mod kind {
    /// See the module docs.
    pub const PARSE: &str = "parse";
    /// See the module docs.
    pub const PROTOCOL: &str = "protocol";
    /// See the module docs.
    pub const UNKNOWN_SESSION: &str = "unknown-session";
    /// See the module docs.
    pub const SESSION_EXISTS: &str = "session-exists";
    /// See the module docs.
    pub const ADMISSION: &str = "admission";
    /// See the module docs.
    pub const BACKPRESSURE: &str = "backpressure";
    /// See the module docs.
    pub const COMPILE: &str = "compile";
    /// See the module docs.
    pub const ENGINE: &str = "engine";
    /// See the module docs.
    pub const SNAPSHOT: &str = "snapshot";
    /// See the module docs.
    pub const RELOAD: &str = "reload";
    /// See the module docs.
    pub const WAL: &str = "wal";
}

/// A structured failure, assembled into an `{"ok":false,…}` frame.
#[derive(Debug, Clone)]
pub struct Failure {
    /// One of the [`kind`] constants.
    pub kind: &'static str,
    /// Human-readable detail.
    pub msg: String,
    /// For `engine` failures: the [`EngineError::kind`]
    /// (`parulel_engine::EngineError::kind`) tag and the cycle it
    /// tripped on.
    pub engine: Option<(&'static str, u64)>,
    /// True when the failure killed the session (graceful degradation:
    /// one session dies, the daemon keeps serving the rest).
    pub closed: bool,
}

impl Failure {
    /// A plain failure with no engine context.
    pub fn new(kind: &'static str, msg: impl Into<String>) -> Failure {
        Failure {
            kind,
            msg: msg.into(),
            engine: None,
            closed: false,
        }
    }

    /// Renders the `{"ok":false,…}` frame.
    pub fn to_frame(&self, op: Option<&str>, session: Option<&str>) -> Json {
        let mut frame = Json::obj().set("ok", false);
        if let Some(op) = op {
            frame = frame.set("op", op);
        }
        if let Some(s) = session {
            frame = frame.set("session", s);
        }
        let mut err = Json::obj().set("kind", self.kind).set("msg", self.msg.as_str());
        if let Some((engine_kind, cycle)) = self.engine {
            err = err.set("engine_kind", engine_kind).set("cycle", cycle);
        }
        frame = frame.set("error", err);
        if self.closed {
            frame = frame.set("closed", true);
        }
        frame
    }
}

/// Starts an `{"ok":true,"op":…}` response frame.
pub fn ok_frame(op: &str) -> Json {
    Json::obj().set("ok", true).set("op", op)
}

/// Required string field of a request frame.
pub fn req_str<'a>(frame: &'a Json, key: &str) -> Result<&'a str, Failure> {
    frame
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| Failure::new(kind::PROTOCOL, format!("missing string field {key:?}")))
}

/// Optional non-negative integer field of a request frame.
pub fn opt_u64(frame: &Json, key: &str) -> Result<Option<u64>, Failure> {
    match frame.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n == n.trunc() => Ok(Some(n as u64)),
            _ => Err(Failure::new(
                kind::PROTOCOL,
                format!("field {key:?} must be a non-negative integer"),
            )),
        },
    }
}

/// A working-memory field value as JSON: ints and floats as numbers,
/// symbols as strings.
pub fn value_to_json(wm_value: &Value, interner: &parulel_core::Interner) -> Json {
    match wm_value {
        Value::Int(i) => Json::from(*i),
        Value::Float(x) => Json::from(*x),
        Value::Sym(s) => Json::from(&*interner.resolve(*s)),
    }
}

/// A JSON field value as a working-memory value: whole numbers become
/// ints, fractional numbers floats, strings symbols.
pub fn json_to_value(v: &Json, interner: &parulel_core::Interner) -> Result<Value, Failure> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Ok(Value::Int(*n as i64)),
        Json::Num(n) => Ok(Value::Float(*n)),
        Json::Str(s) => Ok(Value::Sym(interner.intern(s))),
        other => Err(Failure::new(
            kind::PROTOCOL,
            format!("field value must be a number or string, got {other:?}"),
        )),
    }
}

/// Lower-case hex encoding (snapshot bytes are binary; the frame channel
/// is text).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, Failure> {
    if !s.len().is_multiple_of(2) {
        return Err(Failure::new(kind::SNAPSHOT, "odd-length hex payload"));
    }
    let digit = |c: char| {
        c.to_digit(16)
            .ok_or_else(|| Failure::new(kind::SNAPSHOT, format!("bad hex digit {c:?}")))
    };
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::with_capacity(chars.len() / 2);
    for pair in chars.chunks(2) {
        out.push(((digit(pair[0])? as u8) << 4) | digit(pair[1])? as u8);
    }
    Ok(out)
}

/// FNV-1a over a canonical rendering of working memory: the same
/// fingerprint the determinism suite pins engine runs with. Two sessions
/// with equal fingerprints hold identical facts (up to hash collision).
pub fn wm_fingerprint(wm: &WorkingMemory) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{:?}", wm.canonical_facts()).bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// The fingerprint as the 16-digit hex string frames carry.
pub fn fingerprint_hex(wm: &WorkingMemory) -> String {
    format!("{:016x}", wm_fingerprint(wm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn failure_frame_shape() {
        let f = Failure::new(kind::BACKPRESSURE, "queue full");
        let frame = f.to_frame(Some("inject"), Some("s1"));
        assert_eq!(
            frame.render(),
            r#"{"ok":false,"op":"inject","session":"s1","error":{"kind":"backpressure","msg":"queue full"}}"#
        );
        let mut f = Failure::new(kind::ENGINE, "wm budget exceeded");
        f.engine = Some(("wm", 3));
        f.closed = true;
        let frame = f.to_frame(Some("run"), Some("s2"));
        assert!(frame.render().contains(r#""engine_kind":"wm","cycle":3"#));
        assert!(frame.render().ends_with(r#""closed":true}"#));
    }
}
